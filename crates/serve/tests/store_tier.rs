//! Property tests for the persistent result store.
//!
//! The disk tier must agree with a trivially-correct in-memory reference
//! model under arbitrary append/lookup interleavings, including across a
//! close-and-reopen cycle (the restart path that disk-warm cache hits
//! depend on).

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use wsn_serve::cache::ShardedCache;
use wsn_serve::store::Store;

/// A unique scratch directory for one proptest case.
fn scratch() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wsn-store-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Keys are drawn from a small pool so overwrites actually happen; body
/// payloads are arbitrary u16s rendered into JSON by the tests, so "last
/// write wins" is distinguishable.
fn ops() -> impl Strategy<Value = Vec<(u8, u16)>> {
    prop::collection::vec((0u8..8, any::<u16>()), 1..48)
}

/// A key shaped like the live cache keys: a config stem plus one of the
/// engine/timeline partition suffixes the protocol appends.
fn partitioned_key(stem: u8, partition: u8) -> String {
    let suffix = match partition % 4 {
        0 => "",
        1 => "|e:fast",
        2 => "|e:analytic",
        _ => "|tl:0011223344556677",
    };
    format!("cfg-{stem}{suffix}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn store_agrees_with_a_hashmap_reference_model(ops in ops()) {
        let dir = scratch();
        let store = Store::open(&dir).expect("open");
        let mut model: HashMap<String, String> = HashMap::new();

        for (i, (key_idx, payload)) in ops.iter().enumerate() {
            let key = format!("key-{key_idx}");
            let body = format!("{{\"i\":{i},\"payload\":{payload}}}");
            store.append(&key, &body).expect("append");
            model.insert(key.clone(), body.clone());
            prop_assert_eq!(store.get(&key), Some(body));
        }

        // Every key the model knows (and one it does not) agrees.
        for (key, body) in &model {
            prop_assert_eq!(store.get(key), Some(body.clone()));
        }
        prop_assert_eq!(store.get("key-never-written"), None);
        prop_assert_eq!(store.stats().appends, ops.len() as u64);

        // Reopening from disk replays the exact same mapping.
        drop(store);
        let reopened = Store::open(&dir).expect("reopen");
        for (key, body) in &model {
            prop_assert_eq!(reopened.get(key), Some(body.clone()));
        }
        // The log is append-only: every write survives as a record, and
        // replay resolves duplicates to the newest.
        prop_assert_eq!(reopened.stats().records, ops.len() as u64);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_and_disk_tiers_agree_for_random_partitioned_keys(
        ops in prop::collection::vec((0u8..6, 0u8..4, any::<u16>()), 1..48),
    ) {
        // The two tiers are fed identical writes under keys spanning the
        // engine/timeline partitions; every lookup must agree — and keep
        // agreeing from disk alone after the memory tier is flushed
        // (the restart-warm contract).
        let dir = scratch();
        let store = Store::open(&dir).expect("open");
        let mem = ShardedCache::new(4);
        let mut written: HashMap<String, String> = HashMap::new();

        for (stem, partition, payload) in &ops {
            let key = partitioned_key(*stem, *partition);
            let body = format!("{{\"payload\":{payload}}}");
            mem.insert(key.clone(), Arc::new(body.clone()));
            store.append(&key, &body).expect("append");
            written.insert(key, body);
        }
        for (key, body) in &written {
            let from_mem = mem.get(key);
            prop_assert_eq!(from_mem.as_deref().map(String::as_str), Some(body.as_str()));
            let from_disk = store.get(key);
            prop_assert_eq!(from_disk.as_deref(), Some(body.as_str()));
        }
        let missing = "cfg-99|e:fast";
        prop_assert!(mem.get(missing).is_none());
        prop_assert!(store.get(missing).is_none());

        mem.flush();
        for (key, body) in &written {
            prop_assert!(mem.get(key).is_none());
            let from_disk = store.get(key);
            prop_assert_eq!(from_disk.as_deref(), Some(body.as_str()));
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_segments_roll_without_losing_or_reordering_writes(ops in ops()) {
        let dir = scratch();
        // A 64-byte roll threshold forces a new segment nearly every
        // append, exercising the multi-segment replay path hard.
        let store = Store::open_with_roll(&dir, 64).expect("open");
        let mut model: HashMap<String, String> = HashMap::new();

        for (key_idx, payload) in &ops {
            let key = format!("key-{key_idx}");
            let body = format!("{{\"payload\":{payload}}}");
            store.append(&key, &body).expect("append");
            model.insert(key, body);
        }
        let segments = store.stats().segments;
        prop_assert!(segments >= 1);

        drop(store);
        let reopened = Store::open_with_roll(&dir, 64).expect("reopen");
        for (key, body) in &model {
            prop_assert_eq!(reopened.get(key), Some(body.clone()));
        }
        prop_assert_eq!(reopened.stats().segments, segments);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
