//! Extension 3: closed-loop adaptive tuning on a time-varying channel.
//!
//! Sec. III-A observes unstable RSSI and concludes that parameter tuning
//! must adapt to dynamic link quality; Sec. IV-B proposes payload
//! adaptation explicitly. This experiment drives a link through shadowing
//! phases (clear → shadowed → deep fade → clear) and compares:
//!
//! * **static** — the configuration tuned once for the clear channel;
//! * **adaptive** — an [`AdaptiveTuner`] that re-reads the empirical
//!   models whenever its EWMA SNR estimate moves past the hysteresis band.
//!
//! [`AdaptiveTuner`]: wsn_models::adapt::AdaptiveTuner

use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_models::adapt::{AdaptiveTuner, SnrEstimator, TuneObjective};
use wsn_params::config::StackConfig;
use wsn_radio::channel::ChannelConfig;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The shadowing phases: extra path loss in dB and a label.
pub const PHASES: [(f64, &str); 6] = [
    (0.0, "clear"),
    (12.0, "shadowed"),
    (22.0, "deep-fade"),
    (22.0, "deep-fade-2"),
    (12.0, "recovering"),
    (0.0, "clear-again"),
];

fn base_config() -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(31)
        .payload_bytes(114)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(100)
        .build()
        .expect("valid constants")
}

fn channel_with_extra_loss(extra_db: f64) -> ChannelConfig {
    let mut channel = ChannelConfig::paper_hallway();
    channel.pathloss.reference_loss_db += extra_db;
    channel
}

/// Per-phase outcome of one policy.
#[derive(Debug, Clone, Copy)]
pub struct PhaseOutcome {
    /// Mean SNR the phase actually saw, dB.
    pub snr_db: f64,
    /// Payload used during the phase, bytes.
    pub payload: u16,
    /// Delivered payload bits.
    pub delivered_bits: f64,
    /// Transmit energy spent, J.
    pub tx_energy_j: f64,
}

fn run_phase(config: StackConfig, extra_db: f64, packets: u64, seed: u64) -> PhaseOutcome {
    let outcome = LinkSimulation::new(
        config,
        SimOptions {
            record_packets: false,
            ..SimOptions::quick(packets)
        }
        .with_seed(seed)
        .with_channel(channel_with_extra_loss(extra_db)),
    )
    .run();
    let m = outcome.metrics();
    PhaseOutcome {
        snr_db: m.mean_snr_db,
        payload: config.payload.bytes(),
        delivered_bits: m.delivered as f64 * config.payload.bits() as f64,
        tx_energy_j: m.energy.tx_j,
    }
}

/// Runs the adaptive-tuning extension experiment.
pub fn run(scale: Scale) -> Report {
    let packets = scale.packets().max(100);
    let static_cfg = base_config();

    let mut table = Table::new(vec![
        "phase",
        "snr_db",
        "static_lD",
        "adaptive_lD",
        "static_kbit",
        "adaptive_kbit",
        "static_uJ_per_bit",
        "adaptive_uJ_per_bit",
    ]);

    let mut tuner = AdaptiveTuner::new(TuneObjective::Energy, 2.0);
    let mut estimator = SnrEstimator::new(0.7);
    let mut adaptive_cfg = static_cfg;
    let probe_packets = (packets / 5).max(20);

    let mut static_total = (0.0f64, 0.0f64); // (bits, J)
    let mut adaptive_total = (0.0f64, 0.0f64);

    for (i, &(extra_db, label)) in PHASES.iter().enumerate() {
        // The static policy runs the whole phase (probe-equivalent window
        // included) with the clear-channel tuning.
        let s = run_phase(static_cfg, extra_db, packets + probe_packets, 50 + i as u64);

        // Adaptive: spend a short probe window estimating the phase, act,
        // then run the remainder with the retuned configuration. The probe
        // traffic counts towards the adaptive totals — estimation is not
        // free.
        let probe = run_phase(adaptive_cfg, extra_db, probe_packets, 80 + i as u64);
        let estimate = estimator.update(probe.snr_db);
        if let Some(next) = tuner.retune(estimate, &adaptive_cfg) {
            adaptive_cfg = next;
        }
        let a = run_phase(adaptive_cfg, extra_db, packets, 90 + i as u64);

        static_total.0 += s.delivered_bits;
        static_total.1 += s.tx_energy_j;
        adaptive_total.0 += probe.delivered_bits + a.delivered_bits;
        adaptive_total.1 += probe.tx_energy_j + a.tx_energy_j;

        let per_bit = |bits: f64, joules: f64| {
            if bits > 0.0 {
                joules * 1e6 / bits
            } else {
                f64::INFINITY
            }
        };
        table.push_row(vec![
            label.to_string(),
            fnum(a.snr_db),
            format!("{}", s.payload),
            format!("{}", a.payload),
            fnum(s.delivered_bits / 1e3),
            fnum((probe.delivered_bits + a.delivered_bits) / 1e3),
            fnum(per_bit(s.delivered_bits, s.tx_energy_j)),
            fnum(per_bit(
                probe.delivered_bits + a.delivered_bits,
                probe.tx_energy_j + a.tx_energy_j,
            )),
        ]);
    }

    let mut summary = Table::new(vec!["policy", "delivered_kbit", "uJ_per_delivered_bit"]);
    summary.push_row(vec![
        "static (tuned for clear)".to_string(),
        fnum(static_total.0 / 1e3),
        fnum(static_total.1 * 1e6 / static_total.0.max(1.0)),
    ]);
    summary.push_row(vec![
        "adaptive (EWMA + hysteresis)".to_string(),
        fnum(adaptive_total.0 / 1e3),
        fnum(adaptive_total.1 * 1e6 / adaptive_total.0.max(1.0)),
    ]);

    let mut report = Report::new(
        "ext03",
        "Extension: closed-loop adaptive tuning on a time-varying link",
    );
    report.push(
        "Per-phase comparison (energy objective, payload + retx adaptation)",
        table,
        vec![
            "The adaptive column shrinks the payload and raises the retry budget as the link sinks into the grey zone, then restores the maximum payload on recovery.".into(),
        ],
    );
    report.push(
        "Whole-trace totals",
        summary,
        vec!["Adaptation spends fewer µJ per delivered bit across the fade than the static clear-channel tuning.".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_payload_tracks_the_fade() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let ld_at = |i: usize| -> u16 { rows[i][3].parse().unwrap() };
        // Deep fade (row 2) must use a smaller payload than the clear
        // phases; note the tuner reacts one phase late (it observes, then
        // acts), so compare against the final recovered phase.
        assert!(ld_at(2) <= 114);
        let min_ld = (0..rows.len()).map(ld_at).min().unwrap();
        assert!(min_ld < 114, "tuner never adapted: min lD = {min_ld}");
    }

    #[test]
    fn adaptive_energy_per_bit_beats_static_overall() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let static_uj: f64 = rows[0][2].parse().unwrap();
        let adaptive_uj: f64 = rows[1][2].parse().unwrap();
        assert!(
            adaptive_uj < static_uj * 1.02,
            "adaptive {adaptive_uj} vs static {static_uj}"
        );
    }

    #[test]
    fn both_policies_deliver_in_every_phase() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let s: f64 = row[4].parse().unwrap();
            let a: f64 = row[5].parse().unwrap();
            assert!(s > 0.0 && a > 0.0, "a phase delivered nothing: {row:?}");
        }
    }
}
