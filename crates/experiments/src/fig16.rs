//! Fig. 16 — packet loss rate vs SNR under the four MAC configurations.
//!
//! Same sweep as Fig. 10 but reporting the total packet loss rate. The
//! paper's key observation: retransmissions do **not** clearly reduce the
//! total loss under high arrival rates, because radio-loss reduction is
//! paid for with queue overflow.

use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::fig10::{MAC_CONFIGS, WORKLOADS};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// Runs the Fig. 16 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &(_, qmax, tries) in &MAC_CONFIGS {
        for &(tpkt, payload) in &WORKLOADS {
            for &p in &GRID_POWERS {
                configs.push(
                    StackConfig::builder()
                        .distance_m(35.0)
                        .power_level(p)
                        .payload_bytes(payload)
                        .max_tries(tries)
                        .retry_delay_ms(30)
                        .queue_cap(qmax)
                        .packet_interval_ms(tpkt)
                        .build()
                        .expect("grid values are valid"),
                );
            }
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);

    let mut report = Report::new(
        "fig16",
        "Fig. 16: packet loss rate under four MAC configurations",
    );
    for &(label, qmax, tries) in &MAC_CONFIGS {
        let mut headers = vec!["Ptx".to_string(), "snr_db".to_string()];
        headers.extend(WORKLOADS.iter().map(|(t, l)| format!("plr_T{t}_lD{l}")));
        let mut table = Table::new(headers);
        for &p in &GRID_POWERS {
            let mut row = vec![format!("{p}")];
            for &(tpkt, payload) in &WORKLOADS {
                let r = results
                    .iter()
                    .find(|r| {
                        r.config.power.level() == p
                            && r.config.queue_cap.get() == qmax
                            && r.config.max_tries.get() == tries
                            && r.config.packet_interval.millis() == tpkt
                            && r.config.payload.bytes() == payload
                    })
                    .expect("config simulated");
                if row.len() == 1 {
                    row.push(fnum(r.metrics.mean_snr_db));
                }
                row.push(fnum(r.metrics.plr_total()));
            }
            table.push_row(row);
        }
        table.rows.sort_by(|a, b| {
            a[1].parse::<f64>()
                .unwrap()
                .partial_cmp(&b[1].parse::<f64>().unwrap())
                .unwrap()
        });
        report.push(
            label,
            table,
            vec!["High SNR suppresses loss everywhere; around 19 dB the loss-power trade-off flattens.".into()],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_with_snr() {
        let report = run(Scale::Quick);
        for section in &report.sections {
            let rows = &section.table.rows;
            let low: f64 = rows[0][2].parse().unwrap();
            let high: f64 = rows[rows.len() - 1][2].parse().unwrap();
            assert!(
                low >= high - 0.02,
                "{}: low-SNR loss {low} < high-SNR loss {high}",
                section.heading
            );
        }
    }

    #[test]
    fn retransmissions_do_not_clearly_reduce_total_loss_under_load() {
        let report = run(Scale::Quick);
        // Heaviest workload (Tpkt=10, column 2), grey zone (first row):
        // (d) retx+queue is not dramatically better than (c) no-retx.
        let c: f64 = report.sections[2].table.rows[0][2].parse().unwrap();
        let d: f64 = report.sections[3].table.rows[0][2].parse().unwrap();
        assert!(
            d > c - 0.15,
            "retransmissions 'solved' loss under overload: c={c} d={d}"
        );
    }

    #[test]
    fn high_snr_loss_is_small_for_light_load() {
        let report = run(Scale::Quick);
        // Config (d), lightest workload column (Tpkt=100 → column 4).
        let rows = &report.sections[3].table.rows;
        let loss: f64 = rows[rows.len() - 1][4].parse().unwrap();
        assert!(loss < 0.05, "loss={loss}");
    }
}
