//! Extension 14: budgeted exploration vs. the exhaustive analytic scan.
//!
//! The serve layer's `explore` op answers constrained searches under a
//! hard evaluation budget ([`wsn_models::explore::explore_grid`]:
//! coprime-stride sweep → successive halving → hill climb) instead of
//! scanning all 8064 per-distance candidates the way `tune` does. This
//! experiment publishes the price of that shortcut: the winner's
//! objective regret against the exhaustive analytic scan of the 35 m
//! grid slice at budgets of 1/4 and 1/16 of the grid, next to the
//! evaluations saved. The shipped claim (pinned by the tests) is ≤ 5 %
//! energy regret at a quarter of the grid.

use std::sync::Arc;

use wsn_analytic::table::AnalyticTable;
use wsn_analytic::AnalyticLinkSimulation;
use wsn_link_sim::simulation::SimOptions;
use wsn_link_sim::traffic::TrafficModel;
use wsn_models::explore::explore_grid;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::ChannelConfig;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The shipped claim: worst-case energy regret at a quarter-grid budget.
pub const QUARTER_BUDGET_REGRET: f64 = 0.05;

/// The studied slice: every non-distance axis of the paper grid at 35 m
/// (the distance where the configuration space matters most).
fn slice() -> ParamGrid {
    ParamGrid {
        distances_m: vec![35.0],
        ..ParamGrid::paper()
    }
}

/// A memoized analytic evaluator over the hallway channel, mirroring the
/// serve layer's analytic backend (periodic traffic at each candidate's
/// own operating point).
struct Evaluator {
    budgets: Arc<LinkBudgetTable>,
    table: Arc<AnalyticTable>,
    packets: u64,
}

impl Evaluator {
    fn new(scale: Scale) -> Self {
        let channel = ChannelConfig::paper_hallway();
        Evaluator {
            budgets: Arc::new(LinkBudgetTable::new(channel)),
            table: Arc::new(AnalyticTable::new(channel)),
            packets: scale.packets(),
        }
    }

    /// Energy per information bit of one candidate, µJ/bit.
    fn energy(&self, config: StackConfig) -> f64 {
        let options = SimOptions {
            packets: self.packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(0)
        };
        AnalyticLinkSimulation::new(config, options)
            .with_budget_table(Arc::clone(&self.budgets))
            .with_cache(Arc::clone(&self.table))
            .run()
            .into_metrics()
            .u_eng_uj_per_bit
    }
}

/// One budget row of the study.
struct BudgetRun {
    budget: u64,
    evaluations: u64,
    found: f64,
}

fn run_budget(eval: &Evaluator, grid: &ParamGrid, budget: u64) -> BudgetRun {
    let outcome = explore_grid(grid, budget, |_, config| {
        let energy = eval.energy(*config);
        Ok::<_, std::convert::Infallible>(Some(energy))
    })
    .expect("infallible evaluator")
    .expect("feasible grid");
    BudgetRun {
        budget,
        evaluations: outcome.evaluations,
        found: outcome.best_value,
    }
}

/// The exhaustive truth: minimum finite energy over the whole slice.
fn exhaustive_best(eval: &Evaluator, grid: &ParamGrid) -> f64 {
    grid.iter()
        .map(|config| eval.energy(config))
        .filter(|e| e.is_finite())
        .fold(f64::INFINITY, f64::min)
}

/// Runs the budgeted-exploration study.
pub fn run(scale: Scale) -> Report {
    let grid = slice();
    let n = grid.len() as u64;
    let eval = Evaluator::new(scale);
    let best = exhaustive_best(&eval, &grid);

    let mut table = Table::new(vec![
        "budget",
        "grid",
        "evaluations",
        "evals_saved",
        "best_uj_bit",
        "found_uj_bit",
        "regret_pct",
    ]);
    let mut worst_quarter_regret = 0.0f64;
    for budget in [n / 4, n / 16] {
        let run = run_budget(&eval, &grid, budget);
        let regret = (run.found - best) / best;
        if budget == n / 4 {
            worst_quarter_regret = worst_quarter_regret.max(regret);
        }
        table.push_row(vec![
            format!("{}", run.budget),
            format!("{n}"),
            format!("{}", run.evaluations),
            format!("{}", n - run.evaluations),
            fnum(best),
            fnum(run.found),
            fnum(regret * 100.0),
        ]);
    }

    let mut report = Report::new(
        "ext14",
        "Extension: budgeted exploration vs. exhaustive analytic scan (35 m slice)",
    );
    report.push(
        "Energy-objective regret and evaluations saved per budget",
        table,
        vec![
            format!(
                "Exhaustive truth: {n} analytic evaluations; the minimum energy \
                 on the slice is {best:.4} µJ/bit."
            ),
            format!(
                "Quarter-grid regret: {:.2} % (shipped claim ≤ {:.0} %).",
                worst_quarter_regret * 100.0,
                QUARTER_BUDGET_REGRET * 100.0
            ),
            "The same search backs the serve layer's `explore` op, where the \
             budget also caps the worst-case latency a request can buy — see \
             docs/SERVE.md."
                .into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_budget_meets_the_shipped_regret_claim() {
        let grid = slice();
        let n = grid.len() as u64;
        let eval = Evaluator::new(Scale::Bench);
        let best = exhaustive_best(&eval, &grid);
        let run = run_budget(&eval, &grid, n / 4);
        assert!(run.evaluations <= n / 4, "{} > {}", run.evaluations, n / 4);
        let regret = (run.found - best) / best;
        assert!(
            regret <= QUARTER_BUDGET_REGRET,
            "regret {regret} exceeds the shipped claim"
        );
    }

    #[test]
    fn report_has_one_row_per_budget() {
        let report = run(Scale::Bench);
        assert_eq!(report.sections[0].table.rows.len(), 2);
    }
}
