//! Extension 2 (paper Sec. VIII-D): duty-cycled MAC — low-power listening.
//!
//! The paper measured an always-on MAC and notes that "MAC parameters
//! related to periodic wake-ups also have a great impact on the
//! performance". This experiment explores that dimension with the BoX-MAC
//! style LPL model: the wake interval becomes an eighth tuning knob with
//! its own energy–latency trade-off and a closed-form optimum.

use wsn_models::lpl::{LplConfig, LplModel};
use wsn_params::types::{PayloadSize, PowerLevel};
use wsn_sim_engine::time::SimDuration;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Wake intervals swept, milliseconds.
pub const WAKE_INTERVALS_MS: [u64; 6] = [64, 128, 256, 512, 1024, 2048];

/// Packet rates swept, packets per second.
pub const RATES_PPS: [f64; 4] = [0.1, 0.5, 2.0, 10.0];

/// Runs the LPL extension experiment (model-only; scale unused).
pub fn run(_scale: Scale) -> Report {
    let model = LplModel::new(PowerLevel::MAX, PayloadSize::new(50).expect("valid"));
    let check = SimDuration::from_millis(11);

    let mut headers = vec!["wake_ms".to_string(), "latency_ms".to_string()];
    headers.extend(RATES_PPS.iter().map(|r| format!("mW_at_{r}pps")));
    let mut table = Table::new(headers);
    for &wake_ms in &WAKE_INTERVALS_MS {
        let lpl = LplConfig::new(SimDuration::from_millis(wake_ms), check);
        let mut row = vec![
            format!("{wake_ms}"),
            fnum(model.added_latency_s(&lpl) * 1e3),
        ];
        for &rate in &RATES_PPS {
            row.push(fnum(model.power_budget(&lpl, rate).total_w() * 1e3));
        }
        table.push_row(row);
    }

    let mut optima = Table::new(vec![
        "rate_pps",
        "optimal_wake_ms",
        "power_at_opt_mW",
        "always_on_mW",
        "saving_factor",
    ]);
    for &rate in &RATES_PPS {
        let w = model.optimal_wake_interval(check, rate, SimDuration::from_secs(4));
        let lpl = LplConfig::new(w, check);
        let p_opt = model.power_budget(&lpl, rate).total_w();
        let p_on = model.always_on_power_w(rate);
        optima.push_row(vec![
            fnum(rate),
            fnum(w.as_millis_f64()),
            fnum(p_opt * 1e3),
            fnum(p_on * 1e3),
            fnum(p_on / p_opt),
        ]);
    }

    let mut report = Report::new(
        "ext02",
        "Extension: duty-cycled MAC (LPL periodic wake-ups, Sec. VIII-D)",
    );
    report.push(
        "Two-node power (mW) vs wake interval and traffic rate",
        table,
        vec![
            "Each column is U-shaped in the wake interval: short intervals waste receiver listening, long intervals waste sender preambles.".into(),
            "Mean added latency is wake/2 — the energy-latency trade-off knob.".into(),
        ],
    );
    report.push(
        "Energy-optimal wake interval per rate (closed form w* = sqrt(2·P_rx·t_check/(rate·P_tx)))",
        optima,
        vec![
            "The optimal interval shrinks with the traffic rate; savings over always-on listening reach an order of magnitude at low rates.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_column_is_u_shaped_at_moderate_rate() {
        let report = run(Scale::Quick);
        // Column for 2 pps is index 4 (wake, latency, 0.1, 0.5, 2.0, 10).
        let col: Vec<f64> = report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[4].parse().unwrap())
            .collect();
        let min_idx = col
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < col.len() - 1,
            "min at edge: {col:?}"
        );
    }

    #[test]
    fn optimal_interval_shrinks_with_rate() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let slow: f64 = rows[0][1].parse().unwrap();
        let fast: f64 = rows[3][1].parse().unwrap();
        assert!(slow > fast, "{slow} !> {fast}");
    }

    #[test]
    fn lpl_saves_an_order_of_magnitude_at_low_rate() {
        let report = run(Scale::Quick);
        let saving: f64 = report.sections[1].table.rows[0][4].parse().unwrap();
        assert!(saving > 10.0, "saving={saving}");
    }
}
