//! Campaign throughput measurement (`repro bench`).
//!
//! Times [`Campaign::run_streamed`] over the same 32-configuration
//! `Scale::Bench` grid the `campaign_throughput` criterion bench uses, at
//! several worker-thread counts, and reports configurations per second.
//! The JSON form of [`BenchReport`] is the repository's machine-readable
//! perf trajectory (`BENCH_campaign.json`).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use wsn_link_sim::network::{NetOptions, NetworkSimulation};
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_params::scenario::Scenario;

use wsn_sim_engine::mode::EngineMode;

use crate::campaign::{Campaign, ConfigResult, Scale};
use crate::stream::SinkFn;

/// The benchmark grid: 4 distances × 4 powers × 2 retry budgets, matching
/// `benches/campaign.rs` so `repro bench` and criterion measure the same
/// workload.
pub fn bench_grid() -> ParamGrid {
    ParamGrid {
        distances_m: vec![10.0, 20.0, 30.0, 35.0],
        power_levels: vec![3, 7, 11, 31],
        max_tries: vec![1, 3],
        retry_delays_ms: vec![0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![50],
        payloads: vec![50],
    }
}

/// Throughput at one worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadThroughput {
    /// Engine mode the row was measured under (`"golden"`, `"fast"`, or
    /// `"analytic"`).
    pub mode: String,
    /// Campaign worker threads.
    pub threads: usize,
    /// Grid configurations simulated per wall-clock second (best batch).
    pub configs_per_sec: f64,
    /// Wall-clock seconds of the best timed batch.
    pub elapsed_s: f64,
    /// Full-grid iterations per timed batch.
    pub iters: usize,
}

/// Throughput of the multi-link network simulator at one scenario size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioThroughput {
    /// Links in the scenario.
    pub links: usize,
    /// Full scenario runs per wall-clock second (best batch).
    pub runs_per_sec: f64,
    /// Wall-clock seconds of the best timed batch.
    pub elapsed_s: f64,
    /// Scenario runs per timed batch.
    pub iters: usize,
}

/// Throughput of the sparse-medium network simulator at one
/// `(engine, link count)` point of the dynamic-topology density ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityThroughput {
    /// Engine mode the row was measured under (`"golden"` or `"fast"`).
    pub mode: String,
    /// Node placement, e.g. `"grid-25m"` (25 m constant-density cells).
    pub placement: String,
    /// Links in the scenario.
    pub links: usize,
    /// Full scenario runs per wall-clock second (best batch).
    pub runs_per_sec: f64,
    /// Wall-clock seconds of the best timed batch.
    pub elapsed_s: f64,
    /// Scenario runs per timed batch.
    pub iters: usize,
}

/// One `repro bench` measurement: the workload identity plus per-thread
/// throughput numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Benchmark id (always `"campaign_throughput"`).
    pub bench: String,
    /// Measurement scale name.
    pub scale: String,
    /// Configurations in the benchmark grid.
    pub grid_configs: usize,
    /// Packets simulated per configuration.
    pub packets_per_config: u64,
    /// Throughput per thread count, in the order measured.
    pub results: Vec<ThreadThroughput>,
    /// Warm single-configuration latency of one analytic prediction
    /// (memo-table hit), nanoseconds — the serve `predict`/`tune`
    /// pre-scan cost per candidate.
    pub analytic_predict_ns: f64,
    /// Multi-link shared-channel throughput per scenario size.
    pub scenarios: Vec<ScenarioThroughput>,
    /// Sparse-medium density ladder (grid placement, −85 dBm pruning):
    /// throughput per `(engine, link count)`.
    pub density: Vec<DensityThroughput>,
}

impl BenchReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} — {} configs × {} packets\n",
            self.bench, self.grid_configs, self.packets_per_config
        );
        for r in &self.results {
            out.push_str(&format!(
                "  {:<6} {:>2} thread{}: {:>9.0} configs/sec  ({} iters, {:.3}s)\n",
                r.mode,
                r.threads,
                if r.threads == 1 { " " } else { "s" },
                r.configs_per_sec,
                r.iters,
                r.elapsed_s,
            ));
        }
        out.push_str(&format!(
            "  analytic predict (warm): {:>7.0} ns\n",
            self.analytic_predict_ns
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "  {:>2}-link scenario: {:>7.0} runs/sec  ({} iters, {:.3}s)\n",
                s.links, s.runs_per_sec, s.iters, s.elapsed_s,
            ));
        }
        for d in &self.density {
            out.push_str(&format!(
                "  {:<6} {:>4}-link {}: {:>8.2} runs/sec  ({} iters, {:.3}s)\n",
                d.mode, d.links, d.placement, d.runs_per_sec, d.iters, d.elapsed_s,
            ));
        }
        out
    }
}

/// Measures multi-link network throughput at each of `link_counts`:
/// parallel 20 m links, 2 m spacing, `Scale::Bench` packets per link.
pub fn scenario_throughput(
    link_counts: &[usize],
    reps: usize,
    min_batch_s: f64,
) -> Vec<ScenarioThroughput> {
    let config = StackConfig::builder()
        .distance_m(20.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let mut out = Vec::with_capacity(link_counts.len());
    for &links in link_counts {
        let scenario = Scenario::parallel(&vec![config; links], 2.0);
        let run_once = || {
            let options = NetOptions {
                seed: 0x5EED,
                ..NetOptions::quick(Scale::Bench.packets())
            };
            let outcome = NetworkSimulation::new(scenario.clone(), options).run();
            std::hint::black_box(outcome.goodput_bps());
        };

        // Warmup, doubling as the batch-size calibration.
        run_once();
        let t0 = Instant::now();
        run_once();
        let per_run = t0.elapsed().as_secs_f64().max(1e-6);
        let iters = (min_batch_s / per_run).ceil().max(1.0) as usize;

        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                run_once();
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        out.push(ScenarioThroughput {
            links,
            runs_per_sec: iters as f64 / best,
            elapsed_s: best,
            iters,
        });
    }
    out
}

/// Measures the sparse-medium density ladder: constant-density grids
/// (25 m cells) at each of `link_counts`, −85 dBm interference pruning,
/// under both sampling engines. The fast-engine run-time ratio between
/// the 256- and 16-link rows is the repository's evidence that per-link
/// cost stays bounded by the neighborhood (a dense N×N medium scales the
/// ratio with N, not with density).
///
/// The workload is a low-power dense deployment — 10 m links at PA
/// level 5 (−20 dBm) — where the −85 dBm floor corresponds to a ~31 m
/// audible radius (hallway fit, `n = 2.19`), i.e. a genuinely bounded
/// neighborhood on 25 m cells. At PA 31 the same floor reaches ~260 m
/// and nothing on a 256-link grid is prunable, which benchmarks the
/// channel, not the store.
pub fn density_throughput(
    link_counts: &[usize],
    reps: usize,
    min_batch_s: f64,
) -> Vec<DensityThroughput> {
    let config = StackConfig::builder()
        .distance_m(10.0)
        .power_level(5)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let mut out = Vec::with_capacity(2 * link_counts.len());
    for engine in [EngineMode::Golden, EngineMode::Fast] {
        for &links in link_counts {
            let scenario = Scenario::grid(config, links, 25.0);
            let run_once = || {
                let options = NetOptions {
                    seed: 0x5EED,
                    engine,
                    ..NetOptions::quick(Scale::Bench.packets())
                }
                .with_prune_floor_dbm(-85.0);
                let outcome = NetworkSimulation::new(scenario.clone(), options).run();
                std::hint::black_box(outcome.goodput_bps());
            };

            // Warmup, doubling as the batch-size calibration.
            run_once();
            let t0 = Instant::now();
            run_once();
            let per_run = t0.elapsed().as_secs_f64().max(1e-6);
            let iters = (min_batch_s / per_run).ceil().max(1.0) as usize;

            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                for _ in 0..iters {
                    run_once();
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            out.push(DensityThroughput {
                mode: engine.name().to_string(),
                placement: "grid-25m".to_string(),
                links,
                runs_per_sec: iters as f64 / best,
                elapsed_s: best,
                iters,
            });
        }
    }
    out
}

/// Measures campaign throughput at each of `thread_counts`.
///
/// Per thread count: a warmup pass, then `reps` timed batches, each sized
/// so one batch runs ≥ `min_batch_s`; the fastest batch is reported (the
/// standard minimum-of-k estimator for the noise-free cost).
pub fn campaign_throughput(thread_counts: &[usize], reps: usize, min_batch_s: f64) -> BenchReport {
    let configs: Vec<StackConfig> = bench_grid().iter().collect();
    let mut results = Vec::with_capacity(EngineMode::ALL.len() * thread_counts.len());
    for engine in EngineMode::ALL {
        for &threads in thread_counts {
            let campaign = Campaign {
                threads,
                ..Campaign::new(Scale::Bench)
            }
            .with_engine(engine);
            let run_grid = || {
                let mut sink = SinkFn::new(|_i: usize, r: &ConfigResult| {
                    std::hint::black_box(r.metrics.goodput_bps);
                });
                campaign.run_streamed(&configs, &mut sink);
            };

            // Warmup, doubling as the batch-size calibration.
            run_grid();
            let t0 = Instant::now();
            run_grid();
            let per_grid = t0.elapsed().as_secs_f64().max(1e-6);
            let iters = (min_batch_s / per_grid).ceil().max(1.0) as usize;

            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                for _ in 0..iters {
                    run_grid();
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            results.push(ThreadThroughput {
                mode: engine.name().to_string(),
                threads,
                configs_per_sec: (iters * configs.len()) as f64 / best,
                elapsed_s: best,
                iters,
            });
        }
    }
    BenchReport {
        bench: "campaign_throughput".into(),
        scale: "bench".into(),
        grid_configs: configs.len(),
        packets_per_config: Scale::Bench.packets(),
        results,
        analytic_predict_ns: analytic_predict_latency_ns(reps, min_batch_s),
        scenarios: scenario_throughput(&[2, 8], reps, min_batch_s),
        density: density_throughput(&[16, 64, 256], reps, min_batch_s),
    }
}

/// Warm per-prediction latency of the analytic engine, nanoseconds: one
/// configuration asked for over and over against a populated memo table —
/// the steady-state cost serve's analytic `predict` (and each `tune`
/// pre-scan candidate after the first sweep) pays.
pub fn analytic_predict_latency_ns(reps: usize, min_batch_s: f64) -> f64 {
    let campaign = Campaign::new(Scale::Bench).with_engine(EngineMode::Analytic);
    let config = bench_grid().iter().next().expect("non-empty grid");
    let run_once = || {
        let result = campaign.run_one(config, 0);
        std::hint::black_box(result.metrics.goodput_bps);
    };

    // Warmup populates the memo; calibration sizes the batch.
    run_once();
    let t0 = Instant::now();
    run_once();
    let per_run = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = (min_batch_s / per_run).ceil().max(1000.0) as usize;

    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            run_once();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e9 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_grid_matches_criterion_workload() {
        assert_eq!(bench_grid().len(), 32);
    }

    #[test]
    fn report_measures_and_renders() {
        // Tiny batches: correctness of the plumbing, not the numbers.
        let report = campaign_throughput(&[1, 2], 1, 0.0);
        // One row per (mode, thread count): golden rows first, then fast,
        // then analytic.
        assert_eq!(report.results.len(), 6);
        assert!(report.results.iter().all(|r| r.configs_per_sec > 0.0));
        assert_eq!(report.results[0].mode, "golden");
        assert_eq!(report.results[2].mode, "fast");
        assert_eq!(report.results[4].mode, "analytic");
        assert_eq!(report.results[0].threads, 1);
        assert_eq!(report.results[5].threads, 2);
        assert!(report.analytic_predict_ns > 0.0);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.scenarios[0].links, 2);
        assert_eq!(report.scenarios[1].links, 8);
        assert!(report.scenarios.iter().all(|s| s.runs_per_sec > 0.0));
        // Density ladder: golden rows then fast rows, 16/64/256 each.
        assert_eq!(report.density.len(), 6);
        assert_eq!(report.density[0].mode, "golden");
        assert_eq!(report.density[3].mode, "fast");
        assert_eq!(report.density[0].links, 16);
        assert_eq!(report.density[5].links, 256);
        assert!(report.density.iter().all(|d| d.runs_per_sec > 0.0));
        assert!(report.density.iter().all(|d| d.placement == "grid-25m"));
        let text = report.render();
        assert!(text.contains("campaign_throughput"));
        assert!(text.contains("configs/sec"));
        assert!(text.contains("-link scenario"));
        assert!(text.contains("grid-25m"));
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
