//! Table IV — single-parameter adjustment vs multi-layer joint adjustment
//! on the case-study link (also the data behind Fig. 1).
//!
//! The scenario (Sec. VIII-C): an indoor sensor must bulk-transfer data
//! over a shadowed 35 m link where even maximum power only reaches ≈6 dB
//! SNR. Four literature baselines each tune one knob; the joint optimizer
//! tunes power, payload and retransmissions together via the
//! epsilon-constraint method, and both wins more goodput *and* spends less
//! energy per delivered bit.

use wsn_link_sim::traffic::TrafficModel;
use wsn_models::baselines::Baseline;
use wsn_models::optimize::Optimizer;
use wsn_models::predict::{LinkBudget, Predictor};
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::case_study_channel;

/// One row of the case-study comparison.
#[derive(Debug, Clone)]
pub struct CaseRow {
    /// Method label (`[11]-Tuning power`, …, `Joint (this work)`).
    pub label: String,
    /// The tuned configuration.
    pub config: StackConfig,
    /// Simulated goodput under a backlogged sender, kb/s.
    pub sim_goodput_kbps: f64,
    /// Simulated energy per delivered information bit, µJ/bit.
    pub sim_u_eng: f64,
    /// Model-predicted maximum goodput, kb/s.
    pub pred_goodput_kbps: f64,
    /// Model-predicted `U_eng`, µJ/bit.
    pub pred_u_eng: f64,
}

/// The case-study starting point: `Ptx = 23`, `lD = 114`, no
/// retransmissions.
pub fn base_config() -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(23)
        .payload_bytes(114)
        .max_tries(1)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()
        .expect("constants are valid")
}

/// The grid the joint optimizer searches: the Table I axes restricted to
/// the case-study distance and load.
pub fn joint_grid() -> ParamGrid {
    ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..ParamGrid::paper()
    }
}

/// Computes all comparison rows: base, four baselines, joint optimum.
pub fn case_study_rows(scale: Scale) -> Vec<CaseRow> {
    let base = base_config();
    let mut predictor = Predictor::paper();
    predictor.budget = LinkBudget::case_study();
    let optimizer = Optimizer { predictor };

    let mut entries: Vec<(String, StackConfig)> = vec![("No tuning".to_string(), base)];
    for b in Baseline::all() {
        entries.push((b.label().to_string(), b.apply(&base)));
    }
    let joint = optimizer
        .joint_energy_goodput(&joint_grid(), 1.2)
        .expect("the case-study grid has feasible points");
    entries.push(("Joint (this work)".to_string(), joint.config));

    let configs: Vec<StackConfig> = entries.iter().map(|(_, c)| *c).collect();
    let campaign = Campaign::new(scale)
        .with_channel(case_study_channel())
        .with_traffic(TrafficModel::Saturating);
    let results = campaign.run_configs(&configs);

    entries
        .into_iter()
        .zip(results)
        .map(|((label, config), result)| {
            let pred = predictor.evaluate(&config);
            CaseRow {
                label,
                config,
                sim_goodput_kbps: result.metrics.goodput_bps / 1e3,
                sim_u_eng: result.metrics.u_eng_uj_per_bit,
                pred_goodput_kbps: pred.max_goodput_bps / 1e3,
                pred_u_eng: pred.u_eng_uj_per_bit,
            }
        })
        .collect()
}

/// Runs the Table IV reproduction.
pub fn run(scale: Scale) -> Report {
    let rows = case_study_rows(scale);
    let mut table = Table::new(vec![
        "method",
        "Ptx",
        "lD_B",
        "NmaxTries",
        "sim_goodput_kbps",
        "sim_U_uJ_per_bit",
        "pred_goodput_kbps",
        "pred_U_uJ_per_bit",
    ]);
    for r in &rows {
        table.push_row(vec![
            r.label.clone(),
            format!("{}", r.config.power.level()),
            format!("{}", r.config.payload.bytes()),
            format!("{}", r.config.max_tries.get()),
            fnum(r.sim_goodput_kbps),
            fnum(r.sim_u_eng),
            fnum(r.pred_goodput_kbps),
            fnum(r.pred_u_eng),
        ]);
    }

    let mut report = Report::new(
        "table04",
        "Table IV: single-parameter vs multi-layer joint parameter adjustment",
    );
    report.push(
        "Case study on the shadowed 35 m link (bulk transfer)",
        table,
        vec![
            "Paper's joint row: Ptx=31, lD=68, N=3 → 22.28 kbps at 0.24 uJ/bit.".into(),
            "Joint tuning must dominate every single-parameter baseline on both axes.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_dominates_every_baseline() {
        let rows = case_study_rows(Scale::Quick);
        let joint = rows.last().unwrap();
        assert!(joint.label.contains("Joint"));
        for r in &rows[..rows.len() - 1] {
            assert!(
                joint.sim_goodput_kbps > r.sim_goodput_kbps * 0.95,
                "joint {} kbps vs {} {} kbps",
                joint.sim_goodput_kbps,
                r.label,
                r.sim_goodput_kbps
            );
            assert!(
                joint.sim_u_eng < r.sim_u_eng * 1.05,
                "joint {} uJ vs {} {} uJ",
                joint.sim_u_eng,
                r.label,
                r.sim_u_eng
            );
        }
    }

    #[test]
    fn joint_uses_multiple_knobs() {
        let rows = case_study_rows(Scale::Quick);
        let base = base_config();
        let joint = &rows.last().unwrap().config;
        let mut changed = 0;
        if joint.power != base.power {
            changed += 1;
        }
        if joint.payload != base.payload {
            changed += 1;
        }
        if joint.max_tries != base.max_tries {
            changed += 1;
        }
        assert!(changed >= 2, "joint tuning changed only {changed} knobs");
    }

    #[test]
    fn joint_shape_matches_paper() {
        // Paper: Ptx=31 (max), interior payload, retransmissions on.
        let rows = case_study_rows(Scale::Quick);
        let joint = &rows.last().unwrap().config;
        assert_eq!(joint.power.level(), 31);
        assert!(joint.payload.bytes() < 114 && joint.payload.bytes() > 20);
        assert!(joint.max_tries.get() > 1);
    }

    #[test]
    fn power_baseline_beats_no_tuning_on_goodput() {
        let rows = case_study_rows(Scale::Quick);
        let base = &rows[0];
        let power = rows.iter().find(|r| r.label.contains("[11]")).unwrap();
        assert!(power.sim_goodput_kbps > base.sim_goodput_kbps);
    }
}
