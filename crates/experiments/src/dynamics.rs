//! `repro timeline` — replay a topology timeline over a catalog scenario.
//!
//! The timeline is either a builtin id (see
//! [`all_timelines`](wsn_link_sim::catalog::all_timelines)) or a path to a
//! JSON file holding a [`ScenarioTimeline`] (the same externally-tagged
//! event array `serde_json` round-trips). The run replays the events over
//! the named scenario with per-epoch progress snapshots, renders the
//! epoch series as a report, and streams one structured `epoch` event per
//! snapshot through the observability layer (`--log PATH`).

use std::path::Path;

use wsn_link_sim::catalog::{all_scenarios, all_timelines, build_scenario, build_timeline};
use wsn_link_sim::network::{NetOptions, NetworkOutcome, NetworkSimulation};
use wsn_obs::log::EventLog;
use wsn_params::scenario::Scenario;
use wsn_params::timeline::ScenarioTimeline;
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::time::SimDuration;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Replay horizon, seconds: long enough for the builtin storm (leave at
/// 10 s, rejoin at 18 s) to show its full drop-and-recover arc.
const HORIZON_S: f64 = 30.0;

/// Snapshot period, seconds.
const EPOCH_S: f64 = 1.0;

/// The shared experiment seed (same as the scenario catalog runs).
const SEED: u64 = 0x5EED;

/// Failure classes of a timeline replay. The `repro` binary maps them to
/// its documented exit codes: unknown scenario/timeline ids are exit 2,
/// unreadable timeline files exit 3, malformed or invalid timelines
/// exit 1.
#[derive(Debug)]
pub enum TimelineError {
    /// The scenario id is not in the catalog.
    UnknownScenario(String),
    /// The timeline argument is neither a builtin id nor an existing file.
    UnknownTimeline(String),
    /// The timeline file exists but cannot be read.
    Io(String),
    /// The timeline parsed but is malformed (bad JSON, out-of-range link
    /// indices, invalid power levels, …).
    Invalid(String),
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::UnknownScenario(msg)
            | TimelineError::UnknownTimeline(msg)
            | TimelineError::Io(msg)
            | TimelineError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

/// Resolves the timeline argument: builtin id first, then a JSON file.
fn resolve_timeline(arg: &str, scenario: &Scenario) -> Result<ScenarioTimeline, TimelineError> {
    if let Some(timeline) = build_timeline(arg, scenario) {
        return Ok(timeline);
    }
    let path = Path::new(arg);
    if !path.exists() {
        let known: Vec<&str> = all_timelines().iter().map(|(n, _)| *n).collect();
        return Err(TimelineError::UnknownTimeline(format!(
            "unknown timeline '{arg}' (not a builtin id, and no such file); known ids: {}",
            known.join(", ")
        )));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| TimelineError::Io(format!("cannot read {}: {e}", path.display())))?;
    let timeline: ScenarioTimeline = serde_json::from_str(&text).map_err(|e| {
        TimelineError::Invalid(format!("{} is not a timeline: {e}", path.display()))
    })?;
    timeline
        .validate(scenario.len())
        .map_err(|e| TimelineError::Invalid(format!("{}: {e}", path.display())))?;
    Ok(timeline)
}

/// Sums one epoch snapshot's per-link counters.
fn totals(links: &[wsn_link_sim::network::EpochLink]) -> (u64, u64, u64, u64) {
    links.iter().fold((0, 0, 0, 0), |acc, l| {
        (
            acc.0 + l.generated,
            acc.1 + l.delivered,
            acc.2 + l.radio_lost,
            acc.3 + l.queue_dropped,
        )
    })
}

/// Runs `repro timeline <scenario> <timeline>`: replays the resolved
/// timeline over the catalog scenario with 1 s epoch snapshots over a
/// 30 s horizon and reports the per-epoch series.
///
/// # Errors
///
/// See [`TimelineError`] for the failure classes and their exit codes.
pub fn run_timeline(
    scenario_id: &str,
    timeline_arg: &str,
    scale: Scale,
    engine: EngineMode,
    log: &EventLog,
) -> Result<Report, TimelineError> {
    let scenario = build_scenario(scenario_id).ok_or_else(|| {
        let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
        TimelineError::UnknownScenario(format!(
            "unknown scenario '{scenario_id}'; known: {}",
            known.join(", ")
        ))
    })?;
    let timeline = resolve_timeline(timeline_arg, &scenario)?;
    let digest = timeline.digest();
    let payload_bits: f64 = scenario
        .links
        .iter()
        .map(|l| l.config.payload.bytes() as f64 * 8.0)
        .sum::<f64>()
        / scenario.len().max(1) as f64;

    // Enough per-link traffic to span the horizon (50 ms intervals need
    // 600 packets for 30 s), whatever the scale.
    let packets = scale.packets().max(650);
    let options = NetOptions {
        seed: SEED,
        horizon: Some(SimDuration::from_secs_f64(HORIZON_S)),
        epoch: Some(SimDuration::from_secs_f64(EPOCH_S)),
        engine,
        ..NetOptions::quick(packets)
    };
    log.info("timeline_run")
        .str("scenario", scenario_id)
        .str("timeline", timeline_arg)
        .str("engine", engine.name())
        .u64("events", timeline.len() as u64)
        .u64("digest", digest)
        .emit();
    let outcome = NetworkSimulation::new(scenario, options)
        .with_timeline(timeline)
        .run();

    let mut table = Table::new(vec![
        "t_s",
        "generated",
        "delivered",
        "radio_lost",
        "queue_dropped",
        "epoch_goodput_bps",
    ]);
    let mut prev = (0u64, 0u64, 0u64, 0u64);
    for snap in &outcome.epochs {
        let now = totals(&snap.links);
        let delivered_delta = now.1 - prev.1;
        let goodput = delivered_delta as f64 * payload_bits / EPOCH_S;
        table.push_row(vec![
            fnum(snap.t_s),
            format!("{}", now.0),
            format!("{}", now.1),
            format!("{}", now.2),
            format!("{}", now.3),
            fnum(goodput),
        ]);
        log.info("epoch")
            .f64("t_s", snap.t_s)
            .u64("generated", now.0)
            .u64("delivered", now.1)
            .u64("radio_lost", now.2)
            .u64("queue_dropped", now.3)
            .f64("epoch_goodput_bps", goodput)
            .emit();
        prev = now;
    }
    log.info("timeline_done")
        .u64("joins", outcome.topo.joins)
        .u64("leaves", outcome.topo.leaves)
        .u64("moves", outcome.topo.moves)
        .u64("power_changes", outcome.topo.power_changes)
        .u64("neighbor_updates", outcome.topo.neighbor_updates)
        .f64("plr_radio", outcome.plr_radio())
        .emit();

    let mut report = Report::new(
        "timeline",
        "Topology-timeline replay (per-epoch link metrics)",
    );
    report.push(
        &format!(
            "{scenario_id} + {timeline_arg} — {} engine, {HORIZON_S:.0} s horizon, {EPOCH_S:.0} s epochs",
            engine.name()
        ),
        table,
        vec![
            format!(
                "Timeline digest {digest:016x}: {} joins, {} leaves, {} moves, {} power changes; {} neighborhood edges touched.",
                outcome.topo.joins,
                outcome.topo.leaves,
                outcome.topo.moves,
                outcome.topo.power_changes,
                outcome.topo.neighbor_updates
            ),
            format!(
                "Whole-run radio loss {:.4}, aggregate goodput {:.0} bit/s.",
                outcome.plr_radio(),
                outcome.goodput_bps()
            ),
        ],
    );
    Ok(report)
}

/// Per-epoch aggregate delivered counts, exposed for the recovery-time
/// analysis shared with ext13.
pub fn delivered_per_epoch(outcome: &NetworkOutcome) -> Vec<u64> {
    let mut prev = 0u64;
    outcome
        .epochs
        .iter()
        .map(|snap| {
            let now: u64 = snap.links.iter().map(|l| l.delivered).sum();
            let delta = now - prev;
            prev = now;
            delta
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_storm_replays_over_parallel_4() {
        let log = EventLog::disabled();
        let report = run_timeline(
            "parallel-4",
            "storm20",
            Scale::Bench,
            EngineMode::Golden,
            &log,
        )
        .expect("builtin ids resolve");
        assert_eq!(report.sections[0].table.rows.len(), 30, "one row per epoch");
        assert!(report.sections[0].notes[0].contains("leaves"));
    }

    #[test]
    fn unknown_ids_are_distinct_errors() {
        let log = EventLog::disabled();
        match run_timeline("nope", "storm20", Scale::Bench, EngineMode::Golden, &log) {
            Err(TimelineError::UnknownScenario(msg)) => assert!(msg.contains("nope")),
            other => panic!("want UnknownScenario, got {other:?}"),
        }
        match run_timeline("single", "nope", Scale::Bench, EngineMode::Golden, &log) {
            Err(TimelineError::UnknownTimeline(msg)) => assert!(msg.contains("storm20")),
            other => panic!("want UnknownTimeline, got {other:?}"),
        }
    }

    #[test]
    fn timeline_file_round_trips_through_the_cli_path() {
        let scenario = build_scenario("parallel-4").unwrap();
        let timeline = build_timeline("storm20", &scenario).unwrap();
        let dir = std::env::temp_dir().join("wsn-dynamics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("storm.json");
        std::fs::write(&path, serde_json::to_string(&timeline).unwrap()).unwrap();

        let resolved = resolve_timeline(path.to_str().unwrap(), &scenario).unwrap();
        assert_eq!(resolved.digest(), timeline.digest());

        std::fs::write(&path, "{not json").unwrap();
        match resolve_timeline(path.to_str().unwrap(), &scenario) {
            Err(TimelineError::Invalid(_)) => {}
            other => panic!("want Invalid, got {other:?}"),
        }
    }
}
