//! Extension 1 (paper Sec. VIII-D): concurrent-transmission interference.
//!
//! The paper's deployment was interference-free; its discussion names
//! packet collisions as the first un-modeled factor. This experiment adds
//! a co-channel interferer and measures how the effective link degrades
//! with interferer airtime — for both a hidden interferer (collisions) and
//! a CCA-detectable one (deferral instead of collision).

use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::interference::InterferenceModel;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// Interferer airtimes swept.
pub const AIRTIMES: [f64; 5] = [0.0, 0.1, 0.2, 0.35, 0.5];

fn config() -> StackConfig {
    // A comfortably good link (≈26 dB) so that all degradation comes from
    // the interferer, not the baseline channel.
    StackConfig::builder()
        .distance_m(20.0)
        .power_level(23)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

fn run_with(interference: InterferenceModel, scale: Scale, seed: u64) -> (f64, f64, f64, f64) {
    let mut channel = ChannelConfig::paper_hallway();
    channel.interference = interference;
    let campaign = Campaign::new(scale)
        .with_channel(channel)
        .with_traffic(TrafficModel::Periodic)
        .with_seed(seed);
    let result = campaign.run_one(config(), 0);
    let m = result.metrics;
    (m.per, m.mean_tries, m.goodput_bps / 1e3, m.delay_mean_ms)
}

/// Runs the interference extension experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "ext01",
        "Extension: concurrent-transmission interference (Sec. VIII-D)",
    );

    // Hidden interferer: collisions raise PER.
    let mut hidden = Table::new(vec![
        "airtime",
        "per",
        "mean_tries",
        "goodput_kbps",
        "delay_ms",
    ]);
    for (i, &airtime) in AIRTIMES.iter().enumerate() {
        let mut model = InterferenceModel::zigbee_neighbor(airtime);
        model.cca_detectable = false; // hidden terminal
        let (per, tries, kbps, delay) = run_with(model, scale, 10 + i as u64);
        hidden.push_row(vec![
            fnum(airtime),
            fnum(per),
            fnum(tries),
            fnum(kbps),
            fnum(delay),
        ]);
    }
    report.push(
        "Hidden interferer (-70 dBm, not CCA-detectable): collisions",
        hidden,
        vec![
            "PER and retransmissions grow with interferer airtime: collisions push a clean link into grey-zone behaviour.".into(),
        ],
    );

    // CCA-detectable interferer: deferral instead of collisions.
    let mut polite = Table::new(vec![
        "airtime",
        "per",
        "mean_tries",
        "goodput_kbps",
        "delay_ms",
    ]);
    for (i, &airtime) in AIRTIMES.iter().enumerate() {
        let model = InterferenceModel::zigbee_neighbor(airtime);
        let (per, tries, kbps, delay) = run_with(model, scale, 20 + i as u64);
        polite.push_row(vec![
            fnum(airtime),
            fnum(per),
            fnum(tries),
            fnum(kbps),
            fnum(delay),
        ]);
    }
    report.push(
        "CCA-detectable interferer: carrier-sense deferral",
        polite,
        vec![
            "The sender defers on busy CCA (congestion backoff), trading delay for collisions — delay grows while loss stays lower than the hidden case at equal airtime.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(report: &Report, section: usize, row: usize, col: usize) -> f64 {
        report.sections[section].table.rows[row][col]
            .parse()
            .unwrap()
    }

    #[test]
    fn hidden_interference_raises_per_with_airtime() {
        let report = run(Scale::Quick);
        let per_clean = col(&report, 0, 0, 1);
        let per_busy = col(&report, 0, 4, 1);
        assert!(per_busy > per_clean + 0.1, "{per_clean} -> {per_busy}");
    }

    #[test]
    fn deferral_keeps_loss_below_collisions() {
        let report = run(Scale::Quick);
        // At 50 % airtime: the polite interferer costs less PER…
        let per_hidden = col(&report, 0, 4, 1);
        let per_polite = col(&report, 1, 4, 1);
        assert!(per_polite < per_hidden, "{per_polite} !< {per_hidden}");
        // …but more delay than its own clean baseline.
        let delay_clean = col(&report, 1, 0, 4);
        let delay_busy = col(&report, 1, 4, 4);
        assert!(delay_busy > delay_clean, "{delay_busy} !> {delay_clean}");
    }

    #[test]
    fn zero_airtime_matches_clean_link() {
        let report = run(Scale::Quick);
        let per = col(&report, 0, 0, 1);
        assert!(per < 0.1, "clean-link per={per}");
    }
}
