//! Self-verification: machine-checkable reproduction claims.
//!
//! `repro verify` runs every claim from EXPERIMENTS.md that can be
//! asserted quantitatively and prints PASS/FAIL with the measured value —
//! a one-command answer to "does this repository still reproduce the
//! paper?". The same checks are enforced by the test suite; this harness
//! exists so a *user* can audit the claims without reading test code.

use wsn_models::prelude::*;
use wsn_params::prelude::*;

use crate::campaign::Scale;
use crate::report::{Report, Table};
use crate::{ablation01, fig06, table04};

/// Outcome of one claim check.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Short claim id.
    pub id: &'static str,
    /// What the paper says.
    pub claim: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the reproduction holds.
    pub pass: bool,
}

fn check(id: &'static str, claim: &'static str, measured: String, pass: bool) -> ClaimResult {
    ClaimResult {
        id,
        claim,
        measured,
        pass,
    }
}

/// Runs all verifiable claims at the given scale.
pub fn run_claims(scale: Scale) -> Vec<ClaimResult> {
    let mut results = Vec::new();

    // 1. Path-loss fit (Fig. 3).
    {
        let report = crate::fig03::run(scale);
        let n: f64 = report.sections[1].table.rows[0][2]
            .parse()
            .unwrap_or(f64::NAN);
        results.push(check(
            "fig03-exponent",
            "path-loss exponent n = 2.19",
            format!("n = {n:.3}"),
            (n - 2.19).abs() < 0.15,
        ));
    }

    // 2. Eq. 3 re-fit (Fig. 6).
    {
        let (alpha, beta) = fig06::refit_constants(scale);
        results.push(check(
            "fig06-refit",
            "PER = a*lD*exp(b*SNR) with a = 0.0128, b = -0.15",
            format!("a = {alpha:.4}, b = {beta:.3}"),
            (alpha - 0.0128).abs() < 0.012 && (beta - -0.15).abs() < 0.08,
        ));
    }

    // 3. PER for the max payload reaches ~0.1 near 19 dB (Sec. III-B).
    {
        let per = ExpSurface::new(0.0128, -0.15);
        let snr = per.snr_for_value(PayloadSize::MAX, 0.1).unwrap_or(f64::NAN);
        results.push(check(
            "grey-zone-edge",
            "PER(lD=114) falls to 0.1 around 19 dB",
            format!("at {snr:.1} dB"),
            (snr - 19.0).abs() < 1.5,
        ));
    }

    // 4. Energy-optimal payload threshold at 17 dB (Fig. 9 / Sec. IV-B).
    {
        let model = EnergyModel::paper();
        let at17 = model.optimal_payload(17.0, PowerLevel::MAX).bytes();
        let at15 = model.optimal_payload(15.0, PowerLevel::MAX).bytes();
        let at5 = model.optimal_payload(5.0, PowerLevel::MAX).bytes();
        results.push(check(
            "fig09-threshold",
            "max payload optimal from 17 dB; ~40 B optimal at 5 dB",
            format!("17dB→{at17}B, 15dB→{at15}B, 5dB→{at5}B"),
            at17 == 114 && at15 < 114 && at5 <= 45,
        ));
    }

    // 5. Table II utilization rows.
    {
        let model = ServiceTimeModel::paper();
        let cfg = StackConfig::builder()
            .payload_bytes(110)
            .max_tries(3)
            .retry_delay_ms(30)
            .packet_interval_ms(30)
            .build()
            .expect("valid");
        let rho10 = model.utilization(10.0, &cfg);
        let rho20 = model.utilization(20.0, &cfg);
        let rho30 = model.utilization(30.0, &cfg);
        results.push(check(
            "table02-rho",
            "rho = 1.236 / 0.713 / 0.617 at SNR 10 / 20 / 30 dB",
            format!("rho = {rho10:.3} / {rho20:.3} / {rho30:.3}"),
            (rho10 - 1.236).abs() < 0.08
                && (rho20 - 0.713).abs() < 0.08
                && (rho30 - 0.617).abs() < 0.08,
        ));
    }

    // 6. Table IV dominance (the headline).
    {
        let rows = table04::case_study_rows(scale);
        let joint = rows.last().expect("joint row");
        let dominated = rows[..rows.len() - 1].iter().all(|r| {
            joint.sim_goodput_kbps >= r.sim_goodput_kbps * 0.95
                && joint.sim_u_eng <= r.sim_u_eng * 1.05
        });
        results.push(check(
            "table04-dominance",
            "joint tuning dominates every single-parameter baseline",
            format!(
                "joint {:.1} kbps @ {:.2} uJ/bit ({}, lD={}, N={})",
                joint.sim_goodput_kbps,
                joint.sim_u_eng,
                joint.config.power,
                joint.config.payload.bytes(),
                joint.config.max_tries.get()
            ),
            dominated,
        ));
    }

    // 7. Grey-zone delay blow-up (Fig. 15).
    {
        let report = crate::fig15::run(scale);
        let q1: f64 = report.sections[0].table.rows[0][2]
            .parse()
            .unwrap_or(f64::NAN);
        let q30: f64 = report.sections[1].table.rows[0][2]
            .parse()
            .unwrap_or(f64::NAN);
        results.push(check(
            "fig15-blowup",
            "Qmax=30 grey-zone delay orders of magnitude above Qmax=1",
            format!("{q30:.0} ms vs {q1:.0} ms ({:.0}x)", q30 / q1),
            q30 > 10.0 * q1,
        ));
    }

    // 8. Retransmission trade-off (Fig. 17).
    {
        let report = crate::fig17::run(scale);
        let n1 = &report.sections[0].table.rows[0];
        let n8 = &report.sections[1].table.rows[0];
        let radio1: f64 = n1[2].parse().unwrap_or(f64::NAN);
        let radio8: f64 = n8[2].parse().unwrap_or(f64::NAN);
        let queue1: f64 = n1[1].parse().unwrap_or(f64::NAN);
        let queue8: f64 = n8[1].parse().unwrap_or(f64::NAN);
        results.push(check(
            "fig17-tradeoff",
            "retransmissions convert radio loss into queue loss in the grey zone",
            format!("radio {radio1:.2}→{radio8:.2}, queue {queue1:.2}→{queue8:.2}"),
            radio8 < radio1 && queue8 > queue1,
        ));
    }

    // 9. Cliff smoothing mechanism (Sec. III-B / ablation01).
    {
        let report = ablation01::run(scale);
        let cliff = ablation01::transition_width(&report, 1);
        let smeared = ablation01::transition_width(&report, 3);
        results.push(check(
            "ablation01-smoothing",
            "fading smears the sharp DSSS PER cliff into a gradual slope",
            format!("width {cliff:.1} dB (no fading) vs {smeared:.1} dB (sigma 3.5)"),
            smeared > cliff + 2.0,
        ));
    }

    results
}

/// Renders the claims as a report (for `repro verify`).
pub fn run(scale: Scale) -> Report {
    let claims = run_claims(scale);
    let mut table = Table::new(vec!["status", "id", "paper claim", "measured"]);
    let mut passes = 0usize;
    for c in &claims {
        if c.pass {
            passes += 1;
        }
        table.push_row(vec![
            if c.pass { "PASS" } else { "FAIL" }.to_string(),
            c.id.to_string(),
            c.claim.to_string(),
            c.measured.clone(),
        ]);
    }
    let mut report = Report::new("verify", "Self-verification of the reproduction claims");
    report.push(
        "Quantitative claims from EXPERIMENTS.md",
        table,
        vec![format!(
            "{passes}/{} claims hold at this scale.",
            claims.len()
        )],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_pass_at_quick_scale() {
        let claims = run_claims(Scale::Quick);
        assert!(claims.len() >= 9);
        for c in &claims {
            assert!(c.pass, "claim '{}' failed: {}", c.id, c.measured);
        }
    }

    #[test]
    fn report_marks_every_claim() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        assert!(rows.iter().all(|r| r[0] == "PASS" || r[0] == "FAIL"));
    }
}
