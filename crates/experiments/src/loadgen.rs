//! `repro loadgen` — an open-loop load generator for the query service.
//!
//! Closed-loop benchmarks (send, wait, send again) cannot see overload:
//! the client slows down with the server, so queues never grow and tail
//! latency looks flat. This generator is **open-loop**: request arrival
//! times come from a schedule (Poisson or fixed-rate) fixed *before* the
//! server answers anything, and latency is measured from the scheduled
//! arrival, not the actual write — so a sender that falls behind does not
//! hide queueing delay (no coordinated omission).
//!
//! One run per io-model: spawn `repro serve --io-model M` as a child
//! process (or target `--addr` for an already-running server), park
//! `connections` idle connections on it, calibrate capacity with a short
//! closed-loop burst, then drive three open-loop phases at 1×, 2×, and 4×
//! the base rate, where 1× is 40 % of the calibrated closed-loop
//! capacity — comfortably stable — and 4× is far past saturation, so the
//! report shows exactly how the server degrades: `overloaded` rejections
//! from the bounded queue, `deadline` errors from jobs that aged out, and
//! the latency tail in between. The idle connections are probed again at
//! the end: a server that sheds load by dropping quiet connections fails
//! the run.
//!
//! The op mix exercises every engine: analytic predictions (the
//! microsecond path, reported in its own histogram), golden predictions,
//! golden and fast simulations, a multi-link scenario, and the optimizer.
//! Latencies land in wsn-obs log-linear histograms (~4 % resolution);
//! `--json` writes the whole report as `BENCH_serve.json`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wsn_obs::hist::LogLinearHistogram;

/// How request arrival times are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Exponential inter-arrival gaps (memoryless, bursty — the usual
    /// model for independent clients).
    Poisson,
    /// A metronome: every gap exactly `1/rate`.
    Fixed,
}

impl Arrivals {
    /// The CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Arrivals::Poisson => "poisson",
            Arrivals::Fixed => "fixed",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "poisson" => Arrivals::Poisson,
            "fixed" => Arrivals::Fixed,
            _ => return None,
        })
    }
}

/// Knobs for one `repro loadgen` invocation.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Wall-clock length of each load phase.
    pub duration: Duration,
    /// Idle connections parked on the server for the whole run.
    pub connections: usize,
    /// Sender threads (each with its own connection and schedule).
    pub senders: usize,
    /// Base offered rate, requests/s; `None` uses 40 % of the measured
    /// closed-loop capacity. (The calibration burst runs either way — it
    /// doubles as cache warm-up.)
    pub rate: Option<f64>,
    /// Arrival process for the open-loop schedule.
    pub arrivals: Arrivals,
    /// Benchmark an already-running server at this address instead of
    /// spawning one per io-model.
    pub addr: Option<String>,
    /// io-models to spawn-and-bench when `addr` is `None`.
    pub io_models: Vec<String>,
    /// Free-form label copied into the report.
    pub label: String,
    /// Seed for the op mix and the arrival schedule.
    pub seed: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            duration: Duration::from_secs(10),
            connections: 500,
            senders: 8,
            rate: None,
            arrivals: Arrivals::Poisson,
            addr: None,
            io_models: vec!["epoll".to_string(), "threads".to_string()],
            label: String::new(),
            seed: 0x10AD,
        }
    }
}

/// Latency quantiles read off one log-linear histogram, µs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Largest sample.
    pub max_us: u64,
}

impl LatencySummary {
    fn from(hist: &LogLinearHistogram) -> Self {
        LatencySummary {
            count: hist.count(),
            p50_us: hist.quantile(0.50),
            p90_us: hist.quantile(0.90),
            p99_us: hist.quantile(0.99),
            p999_us: hist.quantile(0.999),
            max_us: hist.max(),
        }
    }
}

/// One open-loop phase at a fixed offered rate.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Multiple of the base rate (1, 2, 4).
    pub overload: f64,
    /// Scheduled arrival rate, requests/s.
    pub offered_rps: f64,
    /// Requests actually written to the sockets.
    pub sent: u64,
    /// Responses received (any outcome).
    pub answered: u64,
    /// Requests the drain window gave up waiting for.
    pub unanswered: u64,
    /// Responses over the phase duration, /s.
    pub achieved_qps: f64,
    /// `"ok":true` responses.
    pub ok: u64,
    /// Error responses of any code.
    pub errors: u64,
    /// `"code":"deadline"` — aged out in the queue.
    pub deadline: u64,
    /// `"code":"overloaded"` — bounced off the full queue.
    pub overloaded: u64,
    /// `"code":"internal"` — server bugs; must stay 0.
    pub internal: u64,
    /// Errors with any other code.
    pub other_errors: u64,
    /// Fraction of ok responses served from the cache.
    pub cache_hit_rate: f64,
    /// Client-observed latency (from *scheduled* arrival), all ops.
    pub latency: LatencySummary,
    /// Latency of ok analytic predictions only — the microsecond path.
    pub analytic_predict: LatencySummary,
}

/// One io-model's full bench: calibration, three phases, idle-probe.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// `"epoll"`, `"threads"`, or `"external"`.
    pub io_model: String,
    /// Closed-loop calibration throughput, /s.
    pub calibrated_qps: f64,
    /// The 1× offered rate derived from it (or pinned by `--rate`).
    pub base_rps: f64,
    /// Idle connections parked for the whole run.
    pub idle_connections: usize,
    /// Idle connections probed after the load phases…
    pub idle_probed: usize,
    /// …and how many still answered.
    pub idle_alive: usize,
    /// The 1×/2×/4× phases.
    pub phases: Vec<PhaseReport>,
}

/// The whole `repro loadgen` result (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Report schema tag.
    pub schema: &'static str,
    /// Free-form label from `--label`.
    pub label: String,
    /// Arrival process name.
    pub arrivals: String,
    /// Per-phase duration, s.
    pub duration_s: f64,
    /// Idle connections requested.
    pub connections: usize,
    /// Sender threads.
    pub senders: usize,
    /// Op-mix / schedule seed.
    pub seed: u64,
    /// One entry per benched server.
    pub runs: Vec<RunReport>,
}

impl LoadgenReport {
    /// Renders the human-readable summary printed after a run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: {} arrivals, {} idle conns, {} senders, {:.1}s/phase\n",
            self.arrivals, self.connections, self.senders, self.duration_s
        ));
        for run in &self.runs {
            out.push_str(&format!(
                "\n[{}] calibrated {:.0} qps closed-loop, base rate {:.0} rps; \
                 idle {}/{} alive after load\n",
                run.io_model, run.calibrated_qps, run.base_rps, run.idle_alive, run.idle_probed
            ));
            out.push_str(
                "  load   offered   achieved    ok     err   dline  ovrld  \
                 hit%      p50      p99     p999  analytic-p99\n",
            );
            for phase in &run.phases {
                out.push_str(&format!(
                    "  {:>3.0}x  {:>8.0}  {:>9.1}  {:>6} {:>6}  {:>6} {:>6}  {:>4.0}  \
                     {:>7} {:>8} {:>8}  {:>12}\n",
                    phase.overload,
                    phase.offered_rps,
                    phase.achieved_qps,
                    phase.ok,
                    phase.errors,
                    phase.deadline,
                    phase.overloaded,
                    phase.cache_hit_rate * 100.0,
                    format!("{}us", phase.latency.p50_us),
                    format!("{}us", phase.latency.p99_us),
                    format!("{}us", phase.latency.p999_us),
                    format!("{}us", phase.analytic_predict.p99_us),
                ));
            }
        }
        out
    }
}

/// The 4×4×4 pool of distinct configurations the mix draws from — enough
/// spread that phase 1 is mostly cache misses and phase 3 mostly hits.
const DISTANCES_M: [f64; 4] = [10.0, 15.0, 20.0, 25.0];
const POWER_LEVELS: [u8; 4] = [15, 23, 27, 31];
const PAYLOAD_BYTES: [u16; 4] = [30, 50, 80, 110];

/// Builds one request line from the weighted op mix. Returns the line and
/// whether it is an analytic prediction (tracked in its own histogram).
fn build_request(rng: &mut StdRng, id: &str) -> (String, bool) {
    let d = DISTANCES_M[rng.gen_range(0..DISTANCES_M.len())];
    let p = POWER_LEVELS[rng.gen_range(0..POWER_LEVELS.len())];
    let b = PAYLOAD_BYTES[rng.gen_range(0..PAYLOAD_BYTES.len())];
    let cfg = format!(r#"{{"distance_m":{d:.1},"power_level":{p},"payload_bytes":{b}}}"#);
    let roll: u32 = rng.gen_range(0..100);
    match roll {
        // 40 % analytic predictions — the path the <5 ms p99 target is on.
        0..=39 => (
            format!(
                r#"{{"id":"{id}","op":"predict","proto":1,"deadline_ms":1000,"engine":"analytic","config":{cfg}}}"#
            ),
            true,
        ),
        // 20 % golden (closed-form model) predictions.
        40..=59 => (
            format!(r#"{{"id":"{id}","op":"predict","deadline_ms":1000,"config":{cfg}}}"#),
            false,
        ),
        // 15 % golden simulations, short runs.
        60..=74 => (
            format!(
                r#"{{"id":"{id}","op":"simulate","deadline_ms":1000,"packets":60,"config":{cfg}}}"#
            ),
            false,
        ),
        // 15 % fast-engine simulations.
        75..=89 => (
            format!(
                r#"{{"id":"{id}","op":"simulate","deadline_ms":1000,"packets":60,"engine":"fast","config":{cfg}}}"#
            ),
            false,
        ),
        // 5 % multi-link scenarios.
        90..=94 => (
            format!(
                r#"{{"id":"{id}","op":"scenario","deadline_ms":1000,"scenario":"hidden-pair","packets":40}}"#
            ),
            false,
        ),
        // 3 % optimizer calls.
        95..=97 => (
            format!(
                r#"{{"id":"{id}","op":"tune","deadline_ms":1000,"objective":"energy","constraints":[{{"metric":"loss","max":0.05}}],"distance_m":{d:.1}}}"#
            ),
            false,
        ),
        // 2 % budgeted explorations (a few hundred analytic evaluations).
        _ => (
            format!(
                r#"{{"id":"{id}","op":"explore","deadline_ms":1000,"objective":"energy","budget":256,"engine":"analytic","distance_m":{d:.1}}}"#
            ),
            false,
        ),
    }
}

/// Pulls the string `"id"` value back out of a response line. Loadgen ids
/// never contain escapes, so a scan to the closing quote is exact.
fn response_id(line: &str) -> Option<&str> {
    let at = line.find(r#""id":""#)? + 6;
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// In-flight bookkeeping: when the request was *scheduled* to arrive (the
/// open-loop latency origin) and whether it was an analytic prediction.
struct Pending {
    scheduled: Instant,
    analytic: bool,
}

/// The per-connection in-flight map, shared between a sender and its reader.
type PendingMap = Arc<Mutex<HashMap<String, Pending>>>;

/// Shared tallies for one phase; histograms and counters are all atomic.
#[derive(Default)]
struct PhaseStats {
    sent: AtomicU64,
    ok: AtomicU64,
    cached: AtomicU64,
    deadline: AtomicU64,
    overloaded: AtomicU64,
    internal: AtomicU64,
    other_err: AtomicU64,
    latency: LogLinearHistogram,
    analytic: LogLinearHistogram,
}

impl PhaseStats {
    /// Classifies one response line against its pending record.
    fn record(&self, line: &str, pending: &Pending) {
        let us = pending.scheduled.elapsed().as_micros() as u64;
        self.latency.record(us);
        if line.contains(r#""ok":true"#) {
            self.ok.fetch_add(1, Ordering::Relaxed);
            if line.contains(r#""cached":true"#) {
                self.cached.fetch_add(1, Ordering::Relaxed);
            }
            if pending.analytic {
                self.analytic.record(us);
            }
        } else if line.contains(r#""code":"deadline""#) {
            self.deadline.fetch_add(1, Ordering::Relaxed);
        } else if line.contains(r#""code":"overloaded""#) {
            self.overloaded.fetch_add(1, Ordering::Relaxed);
        } else if line.contains(r#""code":"internal""#) {
            self.internal.fetch_add(1, Ordering::Relaxed);
        } else {
            self.other_err.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    // One small request line per write: Nagle+delayed-ACK would serialize
    // the benchmark on ~40 ms timer ticks instead of the server.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    Ok(stream)
}

/// Sends one request and reads one response on a dedicated connection.
fn oneshot(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    writeln!(stream, "{line}").map_err(|e| format!("write to {addr} failed: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("read from {addr} failed: {e}"))?;
    Ok(response)
}

/// A server under test: either spawned for this run or already out there.
enum ServerUnderTest {
    Spawned { child: Child, addr: String },
    External { addr: String },
}

impl ServerUnderTest {
    /// Spawns `repro serve --io-model <model>` (this same binary) on an
    /// OS-assigned port and parses the announced address off stdout.
    fn spawn(io_model: &str) -> Result<Self, String> {
        let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
        let mut child = Command::new(&exe)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--io-model",
                io_model,
                "--slow-ms",
                "0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", exe.display()))?;
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .map_err(|e| format!("cannot read server banner: {e}"))?;
        let addr = first_line
            .trim()
            .strip_prefix("listening on ")
            .map(str::to_string)
            .ok_or_else(|| {
                let _ = child.kill();
                format!("unexpected server banner: {first_line:?}")
            })?;
        Ok(ServerUnderTest::Spawned { child, addr })
    }

    fn addr(&self) -> &str {
        match self {
            ServerUnderTest::Spawned { addr, .. } | ServerUnderTest::External { addr } => addr,
        }
    }

    /// Shuts a spawned server down (external servers are left alone).
    fn finish(self) -> Result<(), String> {
        match self {
            ServerUnderTest::External { .. } => Ok(()),
            ServerUnderTest::Spawned { mut child, addr } => {
                let _ = oneshot(&addr, r#"{"op":"shutdown"}"#);
                match child.wait() {
                    Ok(status) if status.success() => Ok(()),
                    Ok(status) => Err(format!("server exited with {status}")),
                    Err(e) => Err(format!("cannot reap server: {e}")),
                }
            }
        }
    }
}

/// Closed-loop calibration: `senders` threads hammer the mix with zero
/// think time for ~1.2 s; the combined answer rate approximates capacity.
fn calibrate(addr: &str, senders: usize, seed: u64) -> Result<f64, String> {
    let window = Duration::from_millis(1_200);
    let answered = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for s in 0..senders {
        let answered = Arc::clone(&answered);
        let stream = connect(addr)?;
        threads.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xCA11 ^ s as u64);
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => return,
            });
            let mut stream = stream;
            let mut response = String::new();
            let mut seq = 0u64;
            while started.elapsed() < window {
                let (line, _) = build_request(&mut rng, &format!("cal{s}-{seq}"));
                seq += 1;
                if writeln!(stream, "{line}").is_err() {
                    return;
                }
                response.clear();
                match reader.read_line(&mut response) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = answered.load(Ordering::Relaxed) as f64 / elapsed;
    if qps <= 0.0 {
        return Err(format!("calibration got no answers from {addr}"));
    }
    Ok(qps)
}

/// One open-loop phase: `senders` schedules at `rate/senders` each.
fn run_phase(
    addr: &str,
    rate: f64,
    duration: Duration,
    senders: usize,
    arrivals: Arrivals,
    seed: u64,
    overload: f64,
) -> Result<PhaseReport, String> {
    let stats = Arc::new(PhaseStats::default());
    let per_sender = rate / senders.max(1) as f64;
    let mut sender_threads = Vec::new();
    let mut reader_threads = Vec::new();
    let mut conns: Vec<(TcpStream, PendingMap)> = Vec::new();

    for s in 0..senders {
        let stream = connect(addr)?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?;
        conns.push((stream, Arc::clone(&pending)));

        {
            let stats = Arc::clone(&stats);
            let pending = Arc::clone(&pending);
            reader_threads.push(std::thread::spawn(move || {
                let mut reader = BufReader::new(read_half);
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {
                            let Some(id) = response_id(&line) else {
                                continue;
                            };
                            let record = pending.lock().expect("pending map").remove(id);
                            if let Some(record) = record {
                                stats.record(&line, &record);
                            }
                        }
                    }
                }
            }));
        }

        {
            let stats = Arc::clone(&stats);
            let pending = Arc::clone(&pending);
            sender_threads.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37));
                let mut stream = write_half;
                let started = Instant::now();
                let end = started + duration;
                let mut scheduled = started;
                let mut seq = 0u64;
                loop {
                    let gap_s = match arrivals {
                        Arrivals::Fixed => 1.0 / per_sender,
                        Arrivals::Poisson => -(1.0 - rng.gen::<f64>()).max(1e-12).ln() / per_sender,
                    };
                    scheduled += Duration::from_secs_f64(gap_s);
                    if scheduled >= end {
                        return;
                    }
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let id = format!("s{s}-{seq}");
                    seq += 1;
                    let (line, analytic) = build_request(&mut rng, &id);
                    pending.lock().expect("pending map").insert(
                        id,
                        Pending {
                            scheduled,
                            analytic,
                        },
                    );
                    if writeln!(stream, "{line}").is_err() {
                        return;
                    }
                    stats.sent.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
    }

    for t in sender_threads {
        let _ = t.join();
    }
    // Drain: give in-flight requests up to 5 s past the phase end (the
    // per-request deadline is 1 s, so anything alive answers well within
    // that), then cut the sockets to unblock the readers.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let in_flight: usize = conns
            .iter()
            .map(|(_, p)| p.lock().expect("pending map").len())
            .sum();
        if in_flight == 0 || Instant::now() >= drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut unanswered = 0u64;
    for (stream, pending) in &conns {
        unanswered += pending.lock().expect("pending map").len() as u64;
        let _ = stream.shutdown(Shutdown::Both);
    }
    for t in reader_threads {
        let _ = t.join();
    }

    let sent = stats.sent.load(Ordering::Relaxed);
    let ok = stats.ok.load(Ordering::Relaxed);
    let deadline = stats.deadline.load(Ordering::Relaxed);
    let overloaded = stats.overloaded.load(Ordering::Relaxed);
    let internal = stats.internal.load(Ordering::Relaxed);
    let other_errors = stats.other_err.load(Ordering::Relaxed);
    let errors = deadline + overloaded + internal + other_errors;
    let answered = ok + errors;
    Ok(PhaseReport {
        overload,
        offered_rps: rate,
        sent,
        answered,
        unanswered,
        achieved_qps: answered as f64 / duration.as_secs_f64(),
        ok,
        errors,
        deadline,
        overloaded,
        internal,
        other_errors,
        cache_hit_rate: if ok > 0 {
            stats.cached.load(Ordering::Relaxed) as f64 / ok as f64
        } else {
            0.0
        },
        latency: LatencySummary::from(&stats.latency),
        analytic_predict: LatencySummary::from(&stats.analytic),
    })
}

/// Benches one server end to end: idle fleet, calibration, 1×/2×/4×
/// phases, idle probe.
fn bench_server(
    server: &ServerUnderTest,
    io_model: &str,
    opts: &LoadgenOptions,
) -> Result<RunReport, String> {
    let addr = server.addr();

    // Park the idle fleet first so every load phase runs against a
    // server that is already holding `connections` quiet sockets.
    let mut idle = Vec::with_capacity(opts.connections);
    for _ in 0..opts.connections {
        idle.push(connect(addr)?);
    }

    // The burst always runs: besides measuring capacity it warms the
    // result cache with the same op mix, so phase 1 measures the steady
    // state rather than a one-off cold start.
    let calibrated_qps = calibrate(addr, opts.senders, opts.seed)?;
    // 1× at 40 % of the closed-loop capacity — a stable nominal
    // operating point — so 2× approaches saturation and 4× lands past
    // it, where the queue bound and deadlines take over.
    let base_rps = match opts.rate {
        Some(rate) => rate,
        None => (calibrated_qps * 0.40).max(10.0),
    };

    let mut phases = Vec::new();
    for overload in [1.0f64, 2.0, 4.0] {
        phases.push(run_phase(
            addr,
            base_rps * overload,
            opts.duration,
            opts.senders,
            opts.arrivals,
            opts.seed ^ overload.to_bits(),
            overload,
        )?);
    }

    // The idle fleet must have survived the overload phases: probe a
    // sample and expect real answers on connections that never spoke.
    let idle_probed = idle.len().min(5);
    let mut idle_alive = 0usize;
    for (i, stream) in idle.iter_mut().take(idle_probed).enumerate() {
        let probe = format!(r#"{{"id":"idle-{i}","op":"predict","engine":"analytic"}}"#);
        let alive = stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .is_ok()
            && writeln!(stream, "{probe}").is_ok()
            && {
                let mut response = String::new();
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => continue,
                });
                reader.read_line(&mut response).is_ok() && response.contains(r#""ok":true"#)
            };
        if alive {
            idle_alive += 1;
        }
    }

    Ok(RunReport {
        io_model: io_model.to_string(),
        calibrated_qps,
        base_rps,
        idle_connections: idle.len(),
        idle_probed,
        idle_alive,
        phases,
    })
}

/// Runs the whole benchmark: one [`RunReport`] per io-model (or a single
/// `"external"` run when `addr` targets a server someone else started).
///
/// # Errors
///
/// Returns a message when the server cannot be spawned or reached, a
/// connection fails mid-setup, or calibration gets no answers.
pub fn run(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let mut runs = Vec::new();
    match &opts.addr {
        Some(addr) => {
            let server = ServerUnderTest::External { addr: addr.clone() };
            runs.push(bench_server(&server, "external", opts)?);
        }
        None => {
            for io_model in &opts.io_models {
                let server = ServerUnderTest::spawn(io_model)?;
                let run = bench_server(&server, io_model, opts);
                let finish = server.finish();
                runs.push(run?);
                finish?;
            }
        }
    }
    Ok(LoadgenReport {
        schema: "bench_serve_v1",
        label: opts.label.clone(),
        arrivals: opts.arrivals.name().to_string(),
        duration_s: opts.duration.as_secs_f64(),
        connections: opts.connections,
        senders: opts.senders,
        seed: opts.seed,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_op_mix_produces_parseable_requests_with_the_documented_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut analytic = 0usize;
        let mut explore = 0usize;
        for i in 0..400 {
            let (line, is_analytic) = build_request(&mut rng, &format!("t-{i}"));
            let parsed = wsn_serve::protocol::parse_request(&line)
                .unwrap_or_else(|e| panic!("mix produced a rejected request: {e:?}\n{line}"));
            assert_eq!(parsed.deadline_ms, Some(1000));
            if parsed.op == wsn_serve::protocol::Op::Explore {
                explore += 1;
            }
            if is_analytic {
                analytic += 1;
                assert!(line.contains(r#""engine":"analytic""#));
            }
        }
        // 40 % nominal; 400 draws keep the band generous.
        assert!(
            (100..=220).contains(&analytic),
            "analytic draws: {analytic}"
        );
        // 2 % nominal — the mix must actually exercise the explore op.
        assert!((1..=30).contains(&explore), "explore draws: {explore}");
    }

    #[test]
    fn response_ids_are_extracted_from_envelopes() {
        assert_eq!(
            response_id(r#"{"proto":1,"id":"s3-17","op":"predict","ok":true}"#),
            Some("s3-17")
        );
        assert_eq!(response_id(r#"{"proto":1,"id":4,"ok":false}"#), None);
    }

    #[test]
    fn arrivals_names_round_trip() {
        assert_eq!(Arrivals::from_name("poisson"), Some(Arrivals::Poisson));
        assert_eq!(Arrivals::from_name("fixed"), Some(Arrivals::Fixed));
        assert_eq!(Arrivals::from_name("bursty"), None);
        assert_eq!(Arrivals::Poisson.name(), "poisson");
    }
}
