//! Fig. 1 — the goodput-vs-energy trade-off achieved by single-parameter
//! tuning guidelines versus joint multi-parameter tuning.
//!
//! Presentation of the Table IV data as trade-off points: each method is a
//! `(goodput, energy)` pair; joint tuning sits up-and-left of every
//! baseline (more goodput, less energy).

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};
use crate::table04::case_study_rows;

/// Runs the Fig. 1 reproduction.
pub fn run(scale: Scale) -> Report {
    let rows = case_study_rows(scale);

    let mut table = Table::new(vec![
        "method",
        "goodput_kbps",
        "energy_uJ_per_bit",
        "dominated_by_joint",
    ]);
    let joint = rows.last().expect("rows include the joint optimum").clone();
    for r in &rows {
        let dominated = r.label != joint.label
            && joint.sim_goodput_kbps >= r.sim_goodput_kbps
            && joint.sim_u_eng <= r.sim_u_eng;
        table.push_row(vec![
            r.label.clone(),
            fnum(r.sim_goodput_kbps),
            fnum(r.sim_u_eng),
            if r.label == joint.label {
                "-".to_string()
            } else {
                format!("{dominated}")
            },
        ]);
    }

    let mut report = Report::new(
        "fig01",
        "Fig. 1: goodput vs energy trade-off, baselines vs joint tuning",
    );
    report.push(
        "Trade-off points (simulated, backlogged sender on the case-study link)",
        table,
        vec![
            "Joint tuning reaches the upper-left region: higher goodput at lower energy per bit.".into(),
            "An inappropriate single-knob choice (e.g. minimal payload) costs an order of magnitude of goodput.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_point_is_upper_left() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let joint = rows.last().unwrap();
        let joint_goodput: f64 = joint[1].parse().unwrap();
        let joint_energy: f64 = joint[2].parse().unwrap();
        for r in &rows[..rows.len() - 1] {
            let g: f64 = r[1].parse().unwrap();
            let u: f64 = r[2].parse().unwrap();
            assert!(
                joint_goodput >= g * 0.95 && joint_energy <= u * 1.05,
                "joint ({joint_goodput}, {joint_energy}) vs {} ({g}, {u})",
                r[0]
            );
        }
    }

    #[test]
    fn minimal_payload_baseline_is_worst_goodput() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let min_ld = rows.iter().find(|r| r[0].contains("Minimal")).unwrap();
        let g_min: f64 = min_ld[1].parse().unwrap();
        for r in rows {
            if r[0].contains("Minimal") {
                continue;
            }
            let g: f64 = r[1].parse().unwrap();
            assert!(
                g >= g_min,
                "{} has lower goodput than minimal payload",
                r[0]
            );
        }
    }
}
