//! Fig. 15 — average delay vs SNR for the two queueing regimes.
//!
//! The paper's headline: in the grey zone, configurations with a deep
//! queue (`Qmax = 30`) and retransmissions suffer delays **two to three
//! orders of magnitude** above the `Qmax = 1` configurations, because the
//! utilization ρ crosses 1 and queueing delay explodes.

use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// The two MAC configurations contrasted: `(label, Qmax)` with N = 8.
pub const QUEUES: [(&str, u16); 2] = [("(a) Qmax=1", 1), ("(b) Qmax=30", 30)];

/// Workloads: `(Tpkt ms, lD)`.
pub const WORKLOADS: [(u32, u16); 2] = [(30, 110), (100, 110)];

/// Runs the Fig. 15 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &(_, qmax) in &QUEUES {
        for &(tpkt, payload) in &WORKLOADS {
            for &p in &GRID_POWERS {
                configs.push(
                    StackConfig::builder()
                        .distance_m(35.0)
                        .power_level(p)
                        .payload_bytes(payload)
                        .max_tries(8)
                        .retry_delay_ms(30)
                        .queue_cap(qmax)
                        .packet_interval_ms(tpkt)
                        .build()
                        .expect("grid values are valid"),
                );
            }
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);

    let mut report = Report::new("fig15", "Fig. 15: delay vs SNR, Qmax = 1 vs Qmax = 30");
    for &(label, qmax) in &QUEUES {
        let mut headers = vec!["Ptx".to_string(), "snr_db".to_string()];
        for &(tpkt, _) in &WORKLOADS {
            headers.push(format!("delay_ms_T{tpkt}"));
            headers.push(format!("p95_ms_T{tpkt}"));
        }
        let mut table = Table::new(headers);
        for &p in &GRID_POWERS {
            let mut row = vec![format!("{p}")];
            for &(tpkt, payload) in &WORKLOADS {
                let r = results
                    .iter()
                    .find(|r| {
                        r.config.power.level() == p
                            && r.config.queue_cap.get() == qmax
                            && r.config.packet_interval.millis() == tpkt
                            && r.config.payload.bytes() == payload
                    })
                    .expect("config simulated");
                if row.len() == 1 {
                    row.push(fnum(r.metrics.mean_snr_db));
                }
                row.push(fnum(r.metrics.delay_mean_ms));
                row.push(fnum(r.metrics.delay_p95_ms));
            }
            table.push_row(row);
        }
        table.rows.sort_by(|a, b| {
            a[1].parse::<f64>()
                .unwrap()
                .partial_cmp(&b[1].parse::<f64>().unwrap())
                .unwrap()
        });
        report.push(
            label,
            table,
            vec![
                "Delay falls with SNR; the Qmax=30 grey-zone rows show the queueing blow-up."
                    .into(),
            ],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grey_zone_delay(report: &Report, section: usize) -> f64 {
        // Lowest-SNR row, Tpkt = 30 column (index 2).
        report.sections[section].table.rows[0][2].parse().unwrap()
    }

    #[test]
    fn deep_queue_explodes_delay_in_grey_zone() {
        let report = run(Scale::Quick);
        let q1 = grey_zone_delay(&report, 0);
        let q30 = grey_zone_delay(&report, 1);
        // Paper: "two or three orders of magnitude"; we require > 10×.
        assert!(q30 > 10.0 * q1, "q30={q30} q1={q1}");
    }

    #[test]
    fn delay_decreases_with_snr_for_deep_queue() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let low: f64 = rows[0][2].parse().unwrap();
        let high: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(low > high, "low={low} high={high}");
    }

    #[test]
    fn light_load_is_benign_even_with_deep_queue() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        // Highest SNR row, Tpkt = 100 column (index 4).
        let delay: f64 = rows[rows.len() - 1][4].parse().unwrap();
        assert!(delay < 100.0, "delay={delay}");
    }
}
