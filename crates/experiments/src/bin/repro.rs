//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--full] [--out DIR]     run every experiment
//! repro <id> [...]                   run selected experiments (fig06 table04 …)
//! repro list                         list experiment ids
//! repro campaign [--full] [--out DIR [--resume]] [--shards N]
//!                                    run the whole ~48k-configuration grid,
//!                                    streaming results + live progress;
//!                                    with --out, checkpoint JSONL shards
//! repro scenario [ID...]             run multi-link shared-channel scenarios
//!                                    (all of them when no ID is given;
//!                                    `repro scenario list` lists ids)
//! repro dataset --out DIR [--full]   export a per-packet trace (paper-style dataset)
//! repro verify [--full]              re-check every quantitative claim (PASS/FAIL)
//! repro bench [--json PATH] [--quick-bench]
//!                                    measure campaign + multi-link scenario
//!                                    throughput (BENCH_campaign.json)
//! ```
//!
//! `--full` switches from the quick scale (400 packets/config) to the
//! paper's protocol (4500 packets/config). `--out DIR` additionally writes
//! `<id>.txt`, `<id>.csv` and `<id>.json` into DIR.
//!
//! A sharded campaign (`--out DIR --shards N`) writes `shard-NNNN.jsonl`
//! files; re-running with `--resume` skips already-completed shards, so a
//! killed multi-hour grid loses at most one shard of work.
//!
//! Exit codes: `0` success, `1` generic failure (bad flags, failed verify
//! claims), `2` unknown experiment or scenario id, `3` I/O error.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use wsn_experiments::campaign::{Campaign, ConfigResult, Scale};
use wsn_experiments::report::Report;
use wsn_experiments::shards::{read_shard_dir, run_sharded};
use wsn_experiments::stream::{ProgressSink, SinkFn};
use wsn_experiments::{all_experiments, run_experiment};
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

/// Unknown experiment or scenario id.
const EXIT_UNKNOWN_ID: u8 = 2;
/// Filesystem failure while writing or reading results.
const EXIT_IO: u8 = 3;

fn usage() -> String {
    let ids: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
    let scenario_ids: Vec<&str> = wsn_experiments::scenarios::all_scenarios()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    format!(
        "usage: repro <all|list|campaign|scenario|verify|dataset|bench|ID...> \
         [--full] [--out DIR] [--resume] [--shards N] [--json PATH] [--quick-bench]\n  \
         ids: {}\n  scenario ids: {}\n  \
         exit codes: 0 ok, 1 failure, {EXIT_UNKNOWN_ID} unknown id, {EXIT_IO} I/O error",
        ids.join(", "),
        scenario_ids.join(", ")
    )
}

fn write_outputs(dir: &PathBuf, report: &Report) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.txt", report.id)), report.render())?;
    let mut csv = String::new();
    for section in &report.sections {
        csv.push_str(&format!("# {}\n", section.heading));
        csv.push_str(&section.table.to_csv());
    }
    std::fs::write(dir.join(format!("{}.csv", report.id)), csv)?;
    let json = serde_json::to_string_pretty(report).expect("reports serialize");
    std::fs::write(dir.join(format!("{}.json", report.id)), json)?;
    Ok(())
}

/// Running tallies for the campaign summary, folded one result at a time so
/// the grid never has to be collected in memory.
#[derive(Default)]
struct GridSummary {
    count: usize,
    generated: u64,
    delivered: u64,
    plr_sum: f64,
}

impl GridSummary {
    fn add(&mut self, result: &ConfigResult) {
        self.count += 1;
        self.generated += result.metrics.generated;
        self.delivered += result.metrics.delivered;
        self.plr_sum += result.metrics.plr_total();
    }

    fn print(&self, elapsed_s: f64) {
        println!("configurations: {}", self.count);
        println!(
            "packets generated: {}, delivered: {}",
            self.generated, self.delivered
        );
        println!(
            "mean total loss rate across the grid: {:.4}",
            self.plr_sum / self.count.max(1) as f64
        );
        println!("wall-clock: {elapsed_s:.1}s");
    }
}

fn run_campaign(scale: Scale, out: Option<&Path>, resume: bool, shards: usize) -> ExitCode {
    let grid = ParamGrid::paper();
    eprintln!(
        "running the full Table I grid: {} configurations × {} packets …",
        grid.len(),
        scale.packets()
    );
    let campaign = Campaign::new(scale);
    let start = Instant::now();

    if let Some(dir) = out {
        if !resume {
            // A fresh run must not silently absorb stale checkpoints.
            if dir.exists() && dir.join("shard-0000.jsonl").exists() {
                eprintln!(
                    "{} already holds shard files; pass --resume to continue that run \
                     or choose a fresh directory",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
        let configs: Vec<StackConfig> = grid.iter().collect();
        let report = match run_sharded(&campaign, &configs, dir, shards) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("sharded campaign failed: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        eprintln!(
            "shards: {} total, {} resumed from checkpoint, {} configs simulated",
            report.shards_total, report.shards_skipped, report.configs_simulated
        );
        let results = match read_shard_dir(dir) {
            Ok(results) => results,
            Err(e) => {
                eprintln!("cannot read completed shards back: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        let mut summary = GridSummary::default();
        for r in &results {
            summary.add(r);
        }
        summary.print(start.elapsed().as_secs_f64());
        println!("shard files: {}", dir.display());
        return ExitCode::SUCCESS;
    }

    // No output directory: stream results straight into the running
    // summary with a live progress line — peak memory stays O(threads).
    let mut summary = GridSummary::default();
    let configs: Vec<StackConfig> = grid.iter().collect();
    {
        let every = (configs.len() / 100).max(1);
        let tally = SinkFn::new(|_i: usize, r: &ConfigResult| summary.add(r));
        let mut progress = ProgressSink::new(tally, std::io::stderr(), configs.len(), every);
        campaign.run_streamed(&configs, &mut progress);
    }
    summary.print(start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// `repro scenario [ID...]`: runs the named multi-link scenarios (all of
/// them when none is given; `list` prints the catalogue).
fn run_scenarios(requested: &[String], scale: Scale, out_dir: Option<&Path>) -> ExitCode {
    if requested.iter().any(|s| s == "list") {
        for (id, description) in wsn_experiments::scenarios::all_scenarios() {
            println!("{id}: {description}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if requested.is_empty() {
        wsn_experiments::scenarios::all_scenarios()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        requested.to_vec()
    };
    for id in &ids {
        let start = Instant::now();
        match wsn_experiments::scenarios::run_scenario(id, scale) {
            Ok(report) => {
                print!("{}", report.render());
                println!(
                    "[scenario {} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = out_dir {
                    if let Err(e) = write_outputs(&dir.to_path_buf(), &report) {
                        eprintln!("failed to write outputs for scenario {id}: {e}");
                        return ExitCode::from(EXIT_IO);
                    }
                }
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(EXIT_UNKNOWN_ID);
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut out_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut shards = 16usize;
    let mut json_path: Option<PathBuf> = None;
    let mut quick_bench = false;
    let mut selections: Vec<String> = Vec::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--resume" => resume = true,
            "--shards" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match iter.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--json needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--quick-bench" => quick_bench = true,
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => selections.push(other.to_string()),
        }
    }

    if selections.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    if let Some(pos) = selections.iter().position(|s| s == "scenario") {
        return run_scenarios(&selections[pos + 1..], scale, out_dir.as_deref());
    }

    if selections.iter().any(|s| s == "list") {
        for (id, _) in all_experiments() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    if selections.iter().any(|s| s == "bench") {
        // `--quick-bench` shrinks the batches for CI smoke runs; the
        // default sizing is what BENCH_campaign.json numbers come from.
        let (reps, min_batch_s) = if quick_bench { (2, 0.2) } else { (5, 1.0) };
        let report = wsn_experiments::perf::campaign_throughput(&[1, 4, 8], reps, min_batch_s);
        print!("{}", report.render());
        if let Some(path) = &json_path {
            let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(EXIT_IO);
            }
            println!("wrote {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    if selections.iter().any(|s| s == "campaign") {
        if resume && out_dir.is_none() {
            eprintln!("--resume needs --out DIR (that's where the checkpoints live)");
            return ExitCode::FAILURE;
        }
        return run_campaign(scale, out_dir.as_deref(), resume, shards);
    }

    if selections.iter().any(|s| s == "verify") {
        let report = wsn_experiments::verify::run(scale);
        print!("{}", report.render());
        let failed = report.sections[0]
            .table
            .rows
            .iter()
            .filter(|r| r[0] == "FAIL")
            .count();
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!("{failed} claim(s) failed");
            ExitCode::FAILURE
        };
    }

    if selections.iter().any(|s| s == "dataset") {
        let Some(dir) = &out_dir else {
            eprintln!("dataset export needs --out DIR");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::from(EXIT_IO);
        }
        let path = dir.join("trace.csv");
        let config = wsn_params::config::StackConfig::default();
        let options = wsn_link_sim::simulation::SimOptions {
            packets: scale.packets(),
            ..wsn_link_sim::simulation::SimOptions::quick(scale.packets())
        };
        match wsn_experiments::dataset::export_to_file(config, options, &path) {
            Ok(n) => {
                println!("wrote {n} per-packet records to {}", path.display());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("dataset export failed: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }

    let ids: Vec<String> = if selections.iter().any(|s| s == "all") {
        all_experiments()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        selections
    };

    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, scale) {
            Ok(report) => {
                print!("{}", report.render());
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = &out_dir {
                    if let Err(e) = write_outputs(dir, &report) {
                        eprintln!("failed to write outputs for {id}: {e}");
                        return ExitCode::from(EXIT_IO);
                    }
                }
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                // The only runner error is an unknown experiment id.
                eprintln!("{e}");
                return ExitCode::from(EXIT_UNKNOWN_ID);
            }
        }
    }
    ExitCode::SUCCESS
}
