//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--full] [--out DIR]     run every experiment
//! repro <id> [...]                   run selected experiments (fig06 table04 …)
//! repro list                         list experiment ids
//! repro campaign [--full] [--engine golden|fast|analytic] [--out DIR [--resume]]
//!                [--shards N] [--log PATH]
//!                                    run the whole ~48k-configuration grid,
//!                                    streaming results + live progress;
//!                                    --engine fast swaps in the
//!                                    statistically-equivalent coalesced
//!                                    engine (~an order of magnitude faster;
//!                                    not bit-comparable to golden runs);
//!                                    --engine analytic swaps in the seed-free
//!                                    M/G/1 closed form (microseconds per
//!                                    configuration; an approximation, not a
//!                                    sampler — see DESIGN.md §13);
//!                                    with --out, checkpoint JSONL shards;
//!                                    with --log, append structured JSONL
//!                                    progress/checkpoint events to PATH
//! repro scenario [ID...]             run multi-link shared-channel scenarios
//!                                    (all of them when no ID is given;
//!                                    `repro scenario list` lists ids)
//! repro timeline <SCENARIO> <TIMELINE> [--engine golden|fast] [--log PATH]
//!                                    replay a topology timeline over a
//!                                    catalog scenario with per-epoch link
//!                                    metrics (TIMELINE is a builtin id —
//!                                    `repro timeline list` — or a JSON
//!                                    file holding a ScenarioTimeline;
//!                                    --log streams one structured epoch
//!                                    event per snapshot)
//! repro serve [--addr HOST:PORT] [--threads N] [--access-log PATH] [--slow-ms N]
//!             [--io-model epoll|threads] [--store DIR]
//!             [--warm-from-campaign DIR [--warm-engine E] [--warm-packets N]]
//!                                    start the JSON-lines query service
//!                                    (docs/SERVE.md; port 0 picks a free port;
//!                                    --access-log appends one JSONL record per
//!                                    request, --slow-ms sets the slow-request
//!                                    warning threshold, 0 disables it;
//!                                    --io-model picks the connection front-end,
//!                                    default epoll where supported; --store
//!                                    persists the result cache across restarts;
//!                                    --warm-from-campaign seeds the cache from
//!                                    a sharded campaign checkpoint directory)
//! repro loadgen [--duration SECS] [--connections N] [--senders N] [--rate RPS]
//!               [--arrivals poisson|fixed] [--io-model both|epoll|threads]
//!               [--addr HOST:PORT] [--json PATH] [--label STR]
//!                                    open-loop load benchmark of the query
//!                                    service: spawns `repro serve` per
//!                                    io-model (or targets --addr), parks idle
//!                                    connections, calibrates capacity, then
//!                                    drives 1x/2x/4x phases and reports
//!                                    QPS/p50/p99/p999 + error/deadline rates
//!                                    (BENCH_serve.json with --json)
//! repro dataset --out DIR [--full]   export a per-packet trace (paper-style dataset)
//! repro verify [--full]              re-check every quantitative claim (PASS/FAIL)
//! repro bench [--json PATH] [--quick-bench]
//!                                    measure campaign + multi-link scenario
//!                                    throughput (BENCH_campaign.json)
//! ```
//!
//! `--full` switches from the quick scale (400 packets/config) to the
//! paper's protocol (4500 packets/config). `--out DIR` additionally writes
//! `<id>.txt`, `<id>.csv` and `<id>.json` into DIR.
//!
//! A sharded campaign (`--out DIR --shards N`) writes `shard-NNNN.jsonl`
//! files; re-running with `--resume` skips already-completed shards, so a
//! killed multi-hour grid loses at most one shard of work.
//!
//! Every failure path funnels through one [`CliError`] enum, so the exit
//! code mapping lives in exactly one place: `0` success, `1` generic
//! failure (bad flags, failed verify claims, malformed timeline files),
//! `2` unknown experiment, scenario, or timeline id, `3` I/O error
//! (including an unreadable timeline file), `4` query-service failure
//! (bind error or a fatal socket error in the accept loop).

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use wsn_experiments::campaign::{Campaign, ConfigResult, Scale};
use wsn_experiments::dynamics::TimelineError;
use wsn_experiments::loadgen::{Arrivals, LoadgenOptions};
use wsn_experiments::report::Report;
use wsn_experiments::shards::{read_shard_dir, run_sharded_logged};
use wsn_experiments::stream::{EventLogSink, ProgressSink, SinkFn};
use wsn_experiments::{all_experiments, run_experiment};
use wsn_obs::log::EventLog;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_serve::{IoModel, ServeError, Server, ServerConfig};
use wsn_sim_engine::mode::EngineMode;

/// Everything that can end a `repro` invocation unsuccessfully, with the
/// exit-code policy in one match.
#[derive(Debug)]
enum CliError {
    /// Bad flags or arguments; the message is followed by usage text.
    Usage(String),
    /// A run that completed but failed (e.g. verify claims).
    Failure(String),
    /// Unknown experiment or scenario id.
    UnknownId(String),
    /// Filesystem failure while writing or reading results.
    Io(String),
    /// The query service could not bind or its socket died.
    Serve(ServeError),
}

impl CliError {
    /// The documented exit code for this failure class.
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) | CliError::Failure(_) => 1,
            CliError::UnknownId(_) => 2,
            CliError::Io(_) => 3,
            CliError::Serve(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n{}", usage()),
            CliError::Failure(msg) => write!(f, "{msg}"),
            CliError::UnknownId(msg) => write!(f, "{msg}"),
            CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

fn usage() -> String {
    let ids: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
    let scenario_ids: Vec<&str> = wsn_experiments::scenarios::all_scenarios()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    let timeline_ids: Vec<&str> = wsn_link_sim::catalog::all_timelines()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    format!(
        "usage: repro <all|list|campaign|scenario|timeline|serve|loadgen|verify|dataset|bench|ID...> \
         [--full] [--engine golden|fast|analytic] [--out DIR] [--resume] [--shards N] \
         [--log PATH] [--json PATH] [--quick-bench] [--addr HOST:PORT] [--threads N] \
         [--access-log PATH] [--slow-ms N] [--io-model epoll|threads|both] [--store DIR] \
         [--warm-from-campaign DIR] [--warm-engine golden|fast|analytic] [--warm-packets N] \
         [--duration SECS] [--connections N] [--senders N] [--rate RPS] \
         [--arrivals poisson|fixed] [--label STR]\n  \
         ids: {}\n  scenario ids: {}\n  timeline ids: {} (or a ScenarioTimeline JSON file)\n  \
         exit codes: 0 ok, 1 failure, 2 unknown id, 3 I/O error, 4 serve error",
        ids.join(", "),
        scenario_ids.join(", "),
        timeline_ids.join(", ")
    )
}

fn write_outputs(dir: &PathBuf, report: &Report) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.txt", report.id)), report.render())?;
    let mut csv = String::new();
    for section in &report.sections {
        csv.push_str(&format!("# {}\n", section.heading));
        csv.push_str(&section.table.to_csv());
    }
    std::fs::write(dir.join(format!("{}.csv", report.id)), csv)?;
    let json = serde_json::to_string_pretty(report).expect("reports serialize");
    std::fs::write(dir.join(format!("{}.json", report.id)), json)?;
    Ok(())
}

/// Running tallies for the campaign summary, folded one result at a time so
/// the grid never has to be collected in memory.
#[derive(Default)]
struct GridSummary {
    count: usize,
    generated: u64,
    delivered: u64,
    plr_sum: f64,
}

impl GridSummary {
    fn add(&mut self, result: &ConfigResult) {
        self.count += 1;
        self.generated += result.metrics.generated;
        self.delivered += result.metrics.delivered;
        self.plr_sum += result.metrics.plr_total();
    }

    fn print(&self, elapsed_s: f64) {
        println!("configurations: {}", self.count);
        println!(
            "packets generated: {}, delivered: {}",
            self.generated, self.delivered
        );
        println!(
            "mean total loss rate across the grid: {:.4}",
            self.plr_sum / self.count.max(1) as f64
        );
        println!("wall-clock: {elapsed_s:.1}s");
    }
}

fn run_campaign(
    scale: Scale,
    engine: EngineMode,
    out: Option<&Path>,
    resume: bool,
    shards: usize,
    log: &EventLog,
) -> Result<(), CliError> {
    let grid = ParamGrid::paper();
    eprintln!(
        "running the full Table I grid: {} configurations × {} packets ({} engine) …",
        grid.len(),
        scale.packets(),
        engine.name()
    );
    let campaign = Campaign::new(scale).with_engine(engine);
    let start = Instant::now();

    if let Some(dir) = out {
        if !resume {
            // A fresh run must not silently absorb stale checkpoints.
            if dir.exists() && dir.join("shard-0000.jsonl").exists() {
                return Err(CliError::Failure(format!(
                    "{} already holds shard files; pass --resume to continue that run \
                     or choose a fresh directory",
                    dir.display()
                )));
            }
        }
        let configs: Vec<StackConfig> = grid.iter().collect();
        let report = run_sharded_logged(&campaign, &configs, dir, shards, log)
            .map_err(|e| CliError::Io(format!("sharded campaign failed: {e}")))?;
        eprintln!(
            "shards: {} total, {} resumed from checkpoint, {} configs simulated",
            report.shards_total, report.shards_skipped, report.configs_simulated
        );
        let results = read_shard_dir(dir)
            .map_err(|e| CliError::Io(format!("cannot read completed shards back: {e}")))?;
        let mut summary = GridSummary::default();
        for r in &results {
            summary.add(r);
        }
        summary.print(start.elapsed().as_secs_f64());
        println!("shard files: {}", dir.display());
        return Ok(());
    }

    // No output directory: stream results straight into the running
    // summary with a live progress line — peak memory stays O(threads).
    let mut summary = GridSummary::default();
    let configs: Vec<StackConfig> = grid.iter().collect();
    {
        let every = (configs.len() / 100).max(1);
        let tally = SinkFn::new(|_i: usize, r: &ConfigResult| summary.add(r));
        let logged = EventLogSink::new(tally, log, configs.len(), every);
        let mut progress = ProgressSink::new(logged, std::io::stderr(), configs.len(), every);
        campaign.run_streamed(&configs, &mut progress);
    }
    summary.print(start.elapsed().as_secs_f64());
    Ok(())
}

/// `repro scenario [ID...]`: runs the named multi-link scenarios (all of
/// them when none is given; `list` prints the catalogue).
fn run_scenarios(
    requested: &[String],
    scale: Scale,
    out_dir: Option<&Path>,
) -> Result<(), CliError> {
    if requested.iter().any(|s| s == "list") {
        for (id, description) in wsn_experiments::scenarios::all_scenarios() {
            println!("{id}: {description}");
        }
        return Ok(());
    }
    let ids: Vec<String> = if requested.is_empty() {
        wsn_experiments::scenarios::all_scenarios()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        requested.to_vec()
    };
    for id in &ids {
        let start = Instant::now();
        let report =
            wsn_experiments::scenarios::run_scenario(id, scale).map_err(CliError::UnknownId)?;
        print!("{}", report.render());
        println!(
            "[scenario {} completed in {:.1}s]\n",
            id,
            start.elapsed().as_secs_f64()
        );
        if let Some(dir) = out_dir {
            write_outputs(&dir.to_path_buf(), &report).map_err(|e| {
                CliError::Io(format!("failed to write outputs for scenario {id}: {e}"))
            })?;
        }
        let _ = std::io::stdout().flush();
    }
    Ok(())
}

/// `repro timeline <SCENARIO> <TIMELINE>`: replays a builtin or
/// file-provided topology timeline over a catalog scenario, with one
/// structured `epoch` obs event per snapshot when `--log` is given.
fn run_timeline(
    args: &[String],
    scale: Scale,
    engine: EngineMode,
    out_dir: Option<&Path>,
    log_path: Option<&Path>,
) -> Result<(), CliError> {
    if args.iter().any(|s| s == "list") {
        for (id, description) in wsn_link_sim::catalog::all_timelines() {
            println!("{id}: {description}");
        }
        return Ok(());
    }
    let [scenario_id, timeline_arg] = args else {
        return Err(CliError::Usage(
            "timeline needs exactly <SCENARIO> <TIMELINE> (or `timeline list`)".into(),
        ));
    };
    let log = match log_path {
        Some(path) => EventLog::to_file(path)
            .map_err(|e| CliError::Io(format!("cannot open {}: {e}", path.display())))?,
        None => EventLog::disabled(),
    };
    let start = Instant::now();
    let report =
        wsn_experiments::dynamics::run_timeline(scenario_id, timeline_arg, scale, engine, &log)
            .map_err(|e| match e {
                TimelineError::UnknownScenario(msg) | TimelineError::UnknownTimeline(msg) => {
                    CliError::UnknownId(msg)
                }
                TimelineError::Io(msg) => CliError::Io(msg),
                TimelineError::Invalid(msg) => CliError::Failure(msg),
            })?;
    print!("{}", report.render());
    println!(
        "[timeline {} + {} completed in {:.1}s]\n",
        scenario_id,
        timeline_arg,
        start.elapsed().as_secs_f64()
    );
    if let Some(dir) = out_dir {
        write_outputs(&dir.to_path_buf(), &report)
            .map_err(|e| CliError::Io(format!("failed to write timeline outputs: {e}")))?;
    }
    let _ = std::io::stdout().flush();
    Ok(())
}

/// `repro serve`: binds the query service and runs it until a client sends
/// `shutdown`. Prints the resolved address first so callers that bound
/// port 0 can discover the real port.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    addr: String,
    threads: usize,
    access_log: Option<PathBuf>,
    slow_request_ms: u64,
    io_model: IoModel,
    store: Option<PathBuf>,
    warm_from: Option<PathBuf>,
    warm_engine: EngineMode,
    warm_packets: u64,
) -> Result<(), CliError> {
    let server = Server::bind(ServerConfig {
        addr,
        threads,
        access_log,
        slow_request_ms,
        io_model,
        store,
        ..ServerConfig::default()
    })?;
    if let Some(dir) = &warm_from {
        let entries = wsn_experiments::shards::serve_warm_entries(dir, warm_engine, warm_packets)
            .map_err(CliError::Failure)?;
        let installed = server
            .warm(entries)
            .map_err(|e| CliError::Io(format!("cache warm-up failed: {e}")))?;
        eprintln!(
            "warmed {installed} cached results from {} ({} engine, {warm_packets} packets)",
            dir.display(),
            warm_engine.name()
        );
    }
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "protocol: one JSON request per line (see docs/SERVE.md); op `shutdown` stops the server"
    );
    server.run()?;
    eprintln!("server drained, bye");
    Ok(())
}

/// `repro loadgen`: runs the open-loop benchmark and optionally writes
/// `BENCH_serve.json`.
fn run_loadgen(opts: &LoadgenOptions, json_path: Option<&Path>) -> Result<(), CliError> {
    let report = wsn_experiments::loadgen::run(opts).map_err(CliError::Failure)?;
    print!("{}", report.render());
    for run in &report.runs {
        if run.idle_alive < run.idle_probed {
            return Err(CliError::Failure(format!(
                "[{}] only {}/{} probed idle connections survived the load",
                run.io_model, run.idle_alive, run.idle_probed
            )));
        }
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("loadgen report serializes");
        std::fs::write(path, json + "\n")
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut scale = Scale::Quick;
    let mut engine = EngineMode::Golden;
    let mut out_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut shards = 16usize;
    let mut json_path: Option<PathBuf> = None;
    let mut quick_bench = false;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut addr_given = false;
    let mut threads = 0usize;
    let mut log_path: Option<PathBuf> = None;
    let mut access_log: Option<PathBuf> = None;
    let mut slow_request_ms = 1_000u64;
    let mut io_model_flag: Option<String> = None;
    let mut store: Option<PathBuf> = None;
    let mut warm_from: Option<PathBuf> = None;
    let mut warm_engine = EngineMode::Golden;
    let mut warm_packets = 400u64;
    let mut duration_s = 10.0f64;
    let mut connections = 500usize;
    let mut senders = 8usize;
    let mut rate: Option<f64> = None;
    let mut arrivals = Arrivals::Poisson;
    let mut label = String::new();
    let mut selections: Vec<String> = Vec::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--engine" => match iter.next().and_then(|m| EngineMode::from_name(m)) {
                Some(mode) => engine = mode,
                None => {
                    return Err(CliError::Usage(
                        "--engine needs `golden`, `fast`, or `analytic`".into(),
                    ))
                }
            },
            "--resume" => resume = true,
            "--shards" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return Err(CliError::Usage("--shards needs a positive integer".into())),
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return Err(CliError::Usage("--out needs a directory".into())),
            },
            "--json" => match iter.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return Err(CliError::Usage("--json needs a file path".into())),
            },
            "--addr" => match iter.next() {
                Some(a) => {
                    addr = a.clone();
                    addr_given = true;
                }
                None => return Err(CliError::Usage("--addr needs HOST:PORT".into())),
            },
            "--threads" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => threads = n,
                None => return Err(CliError::Usage("--threads needs an integer".into())),
            },
            "--log" => match iter.next() {
                Some(path) => log_path = Some(PathBuf::from(path)),
                None => return Err(CliError::Usage("--log needs a file path".into())),
            },
            "--access-log" => match iter.next() {
                Some(path) => access_log = Some(PathBuf::from(path)),
                None => return Err(CliError::Usage("--access-log needs a file path".into())),
            },
            "--slow-ms" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => slow_request_ms = n,
                None => {
                    return Err(CliError::Usage(
                        "--slow-ms needs an integer (milliseconds; 0 disables)".into(),
                    ))
                }
            },
            "--quick-bench" => quick_bench = true,
            "--io-model" => match iter.next() {
                Some(m) if m == "both" || IoModel::from_name(m).is_some() => {
                    io_model_flag = Some(m.clone());
                }
                _ => {
                    return Err(CliError::Usage(
                        "--io-model needs `epoll`, `threads`, or (loadgen only) `both`".into(),
                    ))
                }
            },
            "--store" => match iter.next() {
                Some(dir) => store = Some(PathBuf::from(dir)),
                None => return Err(CliError::Usage("--store needs a directory".into())),
            },
            "--warm-from-campaign" => match iter.next() {
                Some(dir) => warm_from = Some(PathBuf::from(dir)),
                None => {
                    return Err(CliError::Usage(
                        "--warm-from-campaign needs a shard directory".into(),
                    ))
                }
            },
            "--warm-engine" => match iter.next().and_then(|m| EngineMode::from_name(m)) {
                Some(mode) => warm_engine = mode,
                None => {
                    return Err(CliError::Usage(
                        "--warm-engine needs `golden`, `fast`, or `analytic`".into(),
                    ))
                }
            },
            "--warm-packets" => match iter.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => warm_packets = n,
                _ => {
                    return Err(CliError::Usage(
                        "--warm-packets needs a positive integer".into(),
                    ))
                }
            },
            "--duration" => match iter
                .next()
                .map(|s| s.trim_end_matches('s'))
                .and_then(|s| s.parse::<f64>().ok())
            {
                Some(s) if s > 0.0 => duration_s = s,
                _ => {
                    return Err(CliError::Usage(
                        "--duration needs seconds (e.g. 10 or 3s)".into(),
                    ))
                }
            },
            "--connections" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => connections = n,
                None => return Err(CliError::Usage("--connections needs an integer".into())),
            },
            "--senders" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => senders = n,
                _ => return Err(CliError::Usage("--senders needs a positive integer".into())),
            },
            "--rate" => match iter.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => rate = Some(r),
                _ => return Err(CliError::Usage("--rate needs requests/second".into())),
            },
            "--arrivals" => match iter.next().and_then(|m| Arrivals::from_name(m)) {
                Some(a) => arrivals = a,
                None => {
                    return Err(CliError::Usage(
                        "--arrivals needs `poisson` or `fixed`".into(),
                    ))
                }
            },
            "--label" => match iter.next() {
                Some(s) => label = s.clone(),
                None => return Err(CliError::Usage("--label needs a string".into())),
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return Ok(());
            }
            other => selections.push(other.to_string()),
        }
    }

    if selections.is_empty() {
        return Err(CliError::Usage("no command given".into()));
    }

    if let Some(pos) = selections.iter().position(|s| s == "scenario") {
        return run_scenarios(&selections[pos + 1..], scale, out_dir.as_deref());
    }

    if let Some(pos) = selections.iter().position(|s| s == "timeline") {
        return run_timeline(
            &selections[pos + 1..],
            scale,
            engine,
            out_dir.as_deref(),
            log_path.as_deref(),
        );
    }

    if selections.iter().any(|s| s == "serve") {
        let io_model = match io_model_flag.as_deref() {
            None => IoModel::default(),
            Some("both") => {
                return Err(CliError::Usage(
                    "serve runs one io-model; `both` is for loadgen".into(),
                ))
            }
            Some(name) => IoModel::from_name(name).expect("validated during parsing"),
        };
        return run_serve(
            addr,
            threads,
            access_log,
            slow_request_ms,
            io_model,
            store,
            warm_from,
            warm_engine,
            warm_packets,
        );
    }

    if selections.iter().any(|s| s == "loadgen") {
        let io_models = match io_model_flag.as_deref() {
            None | Some("both") => vec!["epoll".to_string(), "threads".to_string()],
            Some(name) => vec![name.to_string()],
        };
        let opts = LoadgenOptions {
            duration: std::time::Duration::from_secs_f64(duration_s),
            connections,
            senders,
            rate,
            arrivals,
            addr: addr_given.then_some(addr),
            io_models,
            label,
            ..LoadgenOptions::default()
        };
        return run_loadgen(&opts, json_path.as_deref());
    }

    if selections.iter().any(|s| s == "list") {
        for (id, _) in all_experiments() {
            println!("{id}");
        }
        return Ok(());
    }

    if selections.iter().any(|s| s == "bench") {
        // `--quick-bench` shrinks the batches for CI smoke runs; the
        // default sizing is what BENCH_campaign.json numbers come from.
        let (reps, min_batch_s) = if quick_bench { (2, 0.2) } else { (5, 1.0) };
        let report = wsn_experiments::perf::campaign_throughput(&[1, 4, 8], reps, min_batch_s);
        print!("{}", report.render());
        if let Some(path) = &json_path {
            let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
            std::fs::write(path, json + "\n")
                .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
            println!("wrote {}", path.display());
        }
        return Ok(());
    }

    if selections.iter().any(|s| s == "campaign") {
        if resume && out_dir.is_none() {
            return Err(CliError::Usage(
                "--resume needs --out DIR (that's where the checkpoints live)".into(),
            ));
        }
        let log = match &log_path {
            Some(path) => EventLog::to_file(path)
                .map_err(|e| CliError::Io(format!("cannot open {}: {e}", path.display())))?,
            None => EventLog::disabled(),
        };
        return run_campaign(scale, engine, out_dir.as_deref(), resume, shards, &log);
    }

    if selections.iter().any(|s| s == "verify") {
        let report = wsn_experiments::verify::run(scale);
        print!("{}", report.render());
        let failed = report.sections[0]
            .table
            .rows
            .iter()
            .filter(|r| r[0] == "FAIL")
            .count();
        return if failed == 0 {
            Ok(())
        } else {
            Err(CliError::Failure(format!("{failed} claim(s) failed")))
        };
    }

    if selections.iter().any(|s| s == "dataset") {
        let Some(dir) = &out_dir else {
            return Err(CliError::Usage("dataset export needs --out DIR".into()));
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let path = dir.join("trace.csv");
        let config = wsn_params::config::StackConfig::default();
        let options = wsn_link_sim::simulation::SimOptions {
            packets: scale.packets(),
            ..wsn_link_sim::simulation::SimOptions::quick(scale.packets())
        };
        let n = wsn_experiments::dataset::export_to_file(config, options, &path)
            .map_err(|e| CliError::Io(format!("dataset export failed: {e}")))?;
        println!("wrote {n} per-packet records to {}", path.display());
        return Ok(());
    }

    let ids: Vec<String> = if selections.iter().any(|s| s == "all") {
        all_experiments()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        selections
    };

    for id in &ids {
        let start = Instant::now();
        // The only runner error is an unknown experiment id.
        let report = run_experiment(id, scale).map_err(CliError::UnknownId)?;
        print!("{}", report.render());
        println!(
            "[{} completed in {:.1}s]\n",
            id,
            start.elapsed().as_secs_f64()
        );
        if let Some(dir) = &out_dir {
            write_outputs(dir, &report)
                .map_err(|e| CliError::Io(format!("failed to write outputs for {id}: {e}")))?;
        }
        let _ = std::io::stdout().flush();
    }
    Ok(())
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
