//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--full] [--out DIR]     run every experiment
//! repro <id> [...]                   run selected experiments (fig06 table04 …)
//! repro list                         list experiment ids
//! repro campaign [--full]            run the whole ~48k-configuration grid
//! repro dataset --out DIR [--full]   export a per-packet trace (paper-style dataset)
//! repro verify [--full]              re-check every quantitative claim (PASS/FAIL)
//! ```
//!
//! `--full` switches from the quick scale (400 packets/config) to the
//! paper's protocol (4500 packets/config). `--out DIR` additionally writes
//! `<id>.txt`, `<id>.csv` and `<id>.json` into DIR.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use wsn_experiments::campaign::{Campaign, Scale};
use wsn_experiments::report::Report;
use wsn_experiments::{all_experiments, run_experiment};
use wsn_params::grid::ParamGrid;

fn usage() -> String {
    let ids: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
    format!(
        "usage: repro <all|list|campaign|verify|dataset|ID...> [--full] [--out DIR]\n  ids: {}",
        ids.join(", ")
    )
}

fn write_outputs(dir: &PathBuf, report: &Report) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.txt", report.id)), report.render())?;
    let mut csv = String::new();
    for section in &report.sections {
        csv.push_str(&format!("# {}\n", section.heading));
        csv.push_str(&section.table.to_csv());
    }
    std::fs::write(dir.join(format!("{}.csv", report.id)), csv)?;
    let json = serde_json::to_string_pretty(report).expect("reports serialize");
    std::fs::write(dir.join(format!("{}.json", report.id)), json)?;
    Ok(())
}

fn run_campaign(scale: Scale) {
    let grid = ParamGrid::paper();
    eprintln!(
        "running the full Table I grid: {} configurations × {} packets …",
        grid.len(),
        scale.packets()
    );
    let campaign = Campaign::new(scale);
    let start = Instant::now();
    let results = campaign.run_grid(&grid);
    let elapsed = start.elapsed();
    let delivered: u64 = results.iter().map(|r| r.metrics.delivered).sum();
    let generated: u64 = results.iter().map(|r| r.metrics.generated).sum();
    let mean_plr =
        results.iter().map(|r| r.metrics.plr_total()).sum::<f64>() / results.len() as f64;
    println!("configurations: {}", results.len());
    println!("packets generated: {generated}, delivered: {delivered}");
    println!("mean total loss rate across the grid: {mean_plr:.4}");
    println!("wall-clock: {:.1}s", elapsed.as_secs_f64());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut out_dir: Option<PathBuf> = None;
    let mut selections: Vec<String> = Vec::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => selections.push(other.to_string()),
        }
    }

    if selections.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    if selections.iter().any(|s| s == "list") {
        for (id, _) in all_experiments() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    if selections.iter().any(|s| s == "campaign") {
        run_campaign(scale);
        return ExitCode::SUCCESS;
    }

    if selections.iter().any(|s| s == "verify") {
        let report = wsn_experiments::verify::run(scale);
        print!("{}", report.render());
        let failed = report.sections[0]
            .table
            .rows
            .iter()
            .filter(|r| r[0] == "FAIL")
            .count();
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!("{failed} claim(s) failed");
            ExitCode::FAILURE
        };
    }

    if selections.iter().any(|s| s == "dataset") {
        let Some(dir) = &out_dir else {
            eprintln!("dataset export needs --out DIR");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("trace.csv");
        let config = wsn_params::config::StackConfig::default();
        let options = wsn_link_sim::simulation::SimOptions {
            packets: scale.packets(),
            ..wsn_link_sim::simulation::SimOptions::quick(scale.packets())
        };
        match wsn_experiments::dataset::export_to_file(config, options, &path) {
            Ok(n) => {
                println!("wrote {n} per-packet records to {}", path.display());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("dataset export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let ids: Vec<String> = if selections.iter().any(|s| s == "all") {
        all_experiments()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        selections
    };

    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, scale) {
            Ok(report) => {
                print!("{}", report.render());
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = &out_dir {
                    if let Err(e) = write_outputs(dir, &report) {
                        eprintln!("failed to write outputs for {id}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
