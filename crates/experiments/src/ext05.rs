//! Extension 5: which knob matters where — tornado sensitivity across the
//! SNR zones.
//!
//! A quantitative restatement of the paper's joint-effect message: the
//! same parameter's leverage changes by an order of magnitude between the
//! grey zone and the low-impact zone. For one operating point per zone,
//! every knob is perturbed to its neighbouring Table-I values and the
//! relative movement of each performance metric is ranked.

use wsn_models::optimize::Metric;
use wsn_models::predict::Predictor;
use wsn_models::sensitivity::{tornado, Knob};
use wsn_models::zones::Zone;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The operating points probed: one power level per zone at 35 m.
pub const ZONE_POWERS: [(u8, &str); 3] = [
    (3, "grey zone"),
    (11, "medium/low boundary"),
    (31, "low-impact zone"),
];

fn config(power: u8) -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(power)
        .payload_bytes(65)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()
        .expect("valid constants")
}

/// Runs the sensitivity extension experiment (model-only).
pub fn run(_scale: Scale) -> Report {
    let predictor = Predictor::paper();
    let grid = ParamGrid::paper();
    let mut report = Report::new(
        "ext05",
        "Extension: knob sensitivity (tornado) across the SNR zones",
    );

    for metric in [Metric::Energy, Metric::Goodput, Metric::Delay, Metric::Loss] {
        let mut headers = vec!["knob".to_string()];
        headers.extend(ZONE_POWERS.iter().map(|(p, z)| format!("{z} (Ptx={p})")));
        let mut table = Table::new(headers);
        // Collect per-zone rankings keyed by knob.
        let rankings: Vec<_> = ZONE_POWERS
            .iter()
            .map(|&(p, _)| tornado(&predictor, &config(p), &grid, metric))
            .collect();
        for knob in Knob::all() {
            let mut row = vec![knob.name().to_string()];
            for ranking in &rankings {
                let impact = ranking
                    .iter()
                    .find(|k| k.knob == knob)
                    .map_or(0.0, |k| k.relative_impact);
                row.push(fnum(impact));
            }
            table.push_row(row);
        }
        let name = match metric {
            Metric::Energy => "energy U_eng",
            Metric::Goodput => "max goodput",
            Metric::Delay => "delay",
            Metric::Loss => "total loss",
        };
        table.rows.sort_by(|a, b| {
            b[1].parse::<f64>()
                .unwrap_or(0.0)
                .partial_cmp(&a[1].parse::<f64>().unwrap_or(0.0))
                .expect("finite")
        });
        report.push(
            &format!("Relative impact on {name} (max |Δ|/|baseline| over grid neighbours)"),
            table,
            vec![
                "Knob leverage collapses as the link leaves the grey zone — the zones of Fig. 6(d) govern every metric.".into(),
            ],
        );
    }

    let mut zones = Table::new(vec!["Ptx", "snr_db", "zone"]);
    for &(p, _) in &ZONE_POWERS {
        let cfg = config(p);
        let snr = predictor.budget.snr_db(cfg.power, cfg.distance);
        zones.push_row(vec![format!("{p}"), fnum(snr), Zone::of(snr).to_string()]);
    }
    report.push("Probed operating points", zones, vec![]);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_sensitivity_collapses_out_of_grey_zone() {
        let report = run(Scale::Quick);
        // Energy section is first; find the payload row.
        let rows = &report.sections[0].table.rows;
        let payload_row = rows.iter().find(|r| r[0] == "lD").unwrap();
        let grey: f64 = payload_row[1].parse().unwrap();
        let clean: f64 = payload_row[3].parse().unwrap();
        assert!(grey > clean * 2.0, "grey {grey} vs clean {clean}");
    }

    #[test]
    fn every_metric_section_has_all_knobs() {
        let report = run(Scale::Quick);
        for section in &report.sections[..4] {
            assert_eq!(section.table.rows.len(), 6, "{}", section.heading);
        }
    }

    #[test]
    fn queue_knob_is_irrelevant_for_energy_everywhere() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let q = rows.iter().find(|r| r[0] == "Qmax").unwrap();
        for cell in &q[1..] {
            let v: f64 = cell.parse().unwrap();
            assert_eq!(v, 0.0);
        }
    }
}
