//! Extension 7: statistical confidence for the headline claim.
//!
//! The paper's Table IV reports single measurements. This experiment
//! replicates the case-study comparison under independent seeds and
//! reports 95 % confidence intervals, verifying the joint-tuning
//! dominance is not seed luck: the joint configuration's goodput CI
//! sits strictly above — and its energy CI strictly below — every
//! baseline's.

use wsn_link_sim::traffic::TrafficModel;
use wsn_models::baselines::Baseline;
use wsn_models::optimize::Optimizer;
use wsn_models::predict::{LinkBudget, Predictor};
use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::stats::{MetricCi, Replicates};
use crate::sweep::case_study_channel;
use crate::table04::{base_config, joint_grid};

/// Replicates per configuration.
pub const REPLICATES: usize = 8;

fn measure(campaign: &Campaign, config: StackConfig) -> (MetricCi, MetricCi) {
    let reps = Replicates::collect(campaign, config, REPLICATES);
    (
        reps.ci_of(|m| m.goodput_bps / 1e3),
        reps.ci_of(|m| m.u_eng_uj_per_bit),
    )
}

/// Runs the replication experiment.
pub fn run(scale: Scale) -> Report {
    let campaign = Campaign::new(scale)
        .with_channel(case_study_channel())
        .with_traffic(TrafficModel::Saturating);

    let mut predictor = Predictor::paper();
    predictor.budget = LinkBudget::case_study();
    let joint = Optimizer { predictor }
        .joint_energy_goodput(&joint_grid(), 1.2)
        .expect("feasible grid");

    let mut entries: Vec<(String, StackConfig)> = Vec::new();
    for b in Baseline::all() {
        entries.push((b.label().to_string(), b.apply(&base_config())));
    }
    entries.push(("Joint (this work)".to_string(), joint.config));

    let mut table = Table::new(vec![
        "method",
        "goodput_kbps_mean",
        "goodput_ci95",
        "uJ_per_bit_mean",
        "uJ_ci95",
    ]);
    let mut cis = Vec::new();
    for (label, config) in &entries {
        let (goodput, energy) = measure(&campaign, *config);
        table.push_row(vec![
            label.clone(),
            fnum(goodput.mean),
            fnum(goodput.half_width),
            fnum(energy.mean),
            fnum(energy.half_width),
        ]);
        cis.push((label.clone(), goodput, energy));
    }

    // Dominance with non-overlapping CIs.
    let (_, joint_goodput, joint_energy) = cis.last().expect("joint entry").clone();
    let mut verdicts = Table::new(vec!["baseline", "goodput_separated", "energy_separated"]);
    for (label, goodput, energy) in &cis[..cis.len() - 1] {
        verdicts.push_row(vec![
            label.clone(),
            format!(
                "{}",
                joint_goodput.clearly_differs_from(goodput) && joint_goodput.mean > goodput.mean
            ),
            format!(
                "{}",
                joint_energy.clearly_differs_from(energy) && joint_energy.mean < energy.mean
            ),
        ]);
    }

    let mut report = Report::new(
        "ext07",
        "Extension: replicated case study with 95% confidence intervals",
    );
    report.push(
        &format!("Table IV under {REPLICATES} independent seeds"),
        table,
        vec!["Means ± 1.96·s/√n over independent replicate campaigns.".into()],
    );
    report.push(
        "CI separation: does joint tuning beat each baseline beyond seed noise?",
        verdicts,
        vec!["true in both columns = dominance holds with non-overlapping 95% CIs.".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_dominance_survives_replication() {
        let report = run(Scale::Quick);
        for row in &report.sections[1].table.rows {
            assert_eq!(row[1], "true", "goodput not separated for {}", row[0]);
            assert_eq!(row[2], "true", "energy not separated for {}", row[0]);
        }
    }

    #[test]
    fn confidence_intervals_are_tight_relative_to_means() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let mean: f64 = row[1].parse().unwrap();
            let hw: f64 = row[2].parse().unwrap();
            // Grey-zone configurations are noisy (correlated fading), so
            // allow up to 30 % relative half-width.
            assert!(
                hw < mean * 0.3,
                "{}: CI half-width {hw} vs mean {mean}",
                row[0]
            );
        }
    }
}
