//! Shared sweep helpers used by the per-figure experiment modules.

use wsn_params::config::StackConfig;
use wsn_radio::channel::ChannelConfig;

/// The PA levels of the Table I grid.
pub const GRID_POWERS: [u8; 8] = [3, 7, 11, 15, 19, 23, 27, 31];

/// The payload sizes of the Table I grid, bytes.
pub const GRID_PAYLOADS: [u16; 8] = [5, 20, 35, 50, 65, 80, 95, 110];

/// The distances of the Table I grid, meters.
pub const GRID_DISTANCES: [f64; 6] = [10.0, 15.0, 20.0, 25.0, 30.0, 35.0];

/// A baseline configuration on the 35 m link used by the per-figure
/// sweeps: moderate periodic load, deep queue, no retry delay.
///
/// # Panics
///
/// Never panics; all constants are valid.
pub fn base_35m() -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(23)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(100)
        .build()
        .expect("constants are valid")
}

/// Clones `base` at each power level (the x-axis of every "vs SNR" figure:
/// sweeping power sweeps the mean SNR).
pub fn power_sweep(base: &StackConfig, powers: &[u8]) -> Vec<StackConfig> {
    powers
        .iter()
        .map(|&p| {
            let mut cfg = *base;
            cfg.power = wsn_params::types::PowerLevel::new(p).expect("grid powers are valid");
            cfg
        })
        .collect()
}

/// Clones `base` at each payload size.
pub fn payload_sweep(base: &StackConfig, payloads: &[u16]) -> Vec<StackConfig> {
    payloads
        .iter()
        .map(|&l| {
            let mut cfg = *base;
            cfg.payload = wsn_params::types::PayloadSize::new(l).expect("grid payloads are valid");
            cfg
        })
        .collect()
}

/// The channel of the paper's Sec. VIII case study: the hallway with ~23 dB
/// of extra shadowing so that the 35 m link reaches only 6 dB SNR at
/// maximum power (matching `LinkBudget::case_study`).
pub fn case_study_channel() -> ChannelConfig {
    ChannelConfig::case_study()
}

/// Mean of an iterator of f64 values; 0.0 when empty.
pub fn mean_of(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Sample standard deviation of a slice; 0.0 with fewer than 2 samples.
pub fn std_of(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean_of(values.iter().copied());
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_sweep_varies_only_power() {
        let base = base_35m();
        let sweep = power_sweep(&base, &GRID_POWERS);
        assert_eq!(sweep.len(), 8);
        for (cfg, &p) in sweep.iter().zip(GRID_POWERS.iter()) {
            assert_eq!(cfg.power.level(), p);
            assert_eq!(cfg.payload, base.payload);
            assert_eq!(cfg.distance, base.distance);
        }
    }

    #[test]
    fn payload_sweep_varies_only_payload() {
        let base = base_35m();
        let sweep = payload_sweep(&base, &GRID_PAYLOADS);
        assert_eq!(sweep.len(), 8);
        for (cfg, &l) in sweep.iter().zip(GRID_PAYLOADS.iter()) {
            assert_eq!(cfg.payload.bytes(), l);
            assert_eq!(cfg.power, base.power);
        }
    }

    #[test]
    fn case_study_channel_is_attenuated() {
        let normal = ChannelConfig::paper_hallway();
        let weak = case_study_channel();
        assert!(weak.pathloss.reference_loss_db > normal.pathloss.reference_loss_db + 20.0);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean_of([].into_iter()), 0.0);
        assert_eq!(mean_of([2.0, 4.0].into_iter()), 3.0);
        assert_eq!(std_of(&[5.0]), 0.0);
        assert!((std_of(&[1.0, 3.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }
}
