//! # wsn-experiments
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation from the link simulator (`wsn-link-sim`) and the
//! empirical models (`wsn-models`).
//!
//! Each `figNN` / `tableNN` module exposes `run(scale) -> Report`; the
//! `repro` binary renders the reports. The per-experiment index lives in
//! the repository's `DESIGN.md`; measured-vs-paper numbers are recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod dataset;
pub mod dynamics;
pub mod loadgen;
pub mod perf;
pub mod report;
pub mod scenarios;
pub mod shards;
pub mod stats;
pub mod stream;
pub mod sweep;
pub mod verify;

pub mod ablation01;
pub mod ablation02;
pub mod ablation03;
pub mod ablation04;
pub mod ext01;
pub mod ext02;
pub mod ext03;
pub mod ext04;
pub mod ext05;
pub mod ext06;
pub mod ext07;
pub mod ext08;
pub mod ext09;
pub mod ext10;
pub mod ext11;
pub mod ext12;
pub mod ext13;
pub mod ext14;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod table01;
pub mod table02;
pub mod table03;
pub mod table04;

use campaign::Scale;
use report::Report;

/// An experiment entry point: takes the measurement scale, returns the
/// regenerated report.
pub type ExperimentFn = fn(Scale) -> Report;

/// All reproducible experiments: `(id, runner)` in paper order.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig01", fig01::run as ExperimentFn),
        ("table01", table01::run),
        ("fig03", fig03::run),
        ("fig04", fig04::run),
        ("fig05", fig05::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig08", fig08::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig15", fig15::run),
        ("table02", table02::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("table03", table03::run),
        ("table04", table04::run),
        // Extensions & ablations beyond the paper's published artifacts.
        ("ext01", ext01::run),
        ("ext02", ext02::run),
        ("ext03", ext03::run),
        ("ext04", ext04::run),
        ("ext05", ext05::run),
        ("ext06", ext06::run),
        ("ext07", ext07::run),
        ("ext08", ext08::run),
        ("ext09", ext09::run),
        ("ext10", ext10::run),
        ("ext11", ext11::run),
        ("ext12", ext12::run),
        ("ext13", ext13::run),
        ("ext14", ext14::run),
        ("ablation01", ablation01::run),
        ("ablation02", ablation02::run),
        ("ablation03", ablation03::run),
        ("ablation04", ablation04::run),
    ]
}

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns the list of known ids when `id` is unknown.
pub fn run_experiment(id: &str, scale: Scale) -> Result<Report, String> {
    all_experiments()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, runner)| runner(scale))
        .ok_or_else(|| {
            let known: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
            format!("unknown experiment '{id}'; known: {}", known.join(", "))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        for expected in [
            "fig01", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig15", "fig16", "fig17", "table01", "table02", "table03",
            "table04",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        // 19 paper artifacts + 14 extensions + 4 ablations.
        assert_eq!(ids.len(), 37);
    }

    #[test]
    fn unknown_id_lists_alternatives() {
        let err = run_experiment("fig99", Scale::Quick).unwrap_err();
        assert!(err.contains("fig99"));
        assert!(err.contains("fig06"));
    }

    #[test]
    fn model_only_experiments_run_instantly() {
        for id in ["table01", "table03", "fig09"] {
            let report = run_experiment(id, Scale::Quick).unwrap();
            assert!(!report.sections.is_empty(), "{id} produced no sections");
        }
    }
}
