//! Extension 9: the hidden-terminal effect.
//!
//! Sec. VIII-D names concurrent transmission as the first factor the
//! paper's single-link study excludes. With the shared-channel network
//! simulator the classic experiment becomes runnable: the same two links
//! in the *hidden* geometry (senders 2d apart, receivers in the middle)
//! versus the *exposed* control (senders side by side). Exposed senders
//! carrier-sense each other and defer; hidden senders pass CCA blind and
//! collide, so their loss strictly exceeds the CCA-detectable case.

use wsn_link_sim::network::{NetOptions, NetworkOutcome, NetworkSimulation};
use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

fn config() -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0) // senders 70 m apart: below the -77 dBm CS floor
        .power_level(11)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

fn simulate(scenario: Scenario, scale: Scale) -> NetworkOutcome {
    let options = NetOptions {
        seed: 0x5EED,
        ..NetOptions::quick(scale.packets())
    };
    NetworkSimulation::new(scenario, options).run()
}

fn push_row(table: &mut Table, setup: &str, outcome: &NetworkOutcome) {
    let capture_lost: u64 = outcome.links.iter().map(|l| l.frames_capture_lost).sum();
    table.push_row(vec![
        setup.to_string(),
        format!("{}", outcome.air.frames),
        format!("{}", outcome.air.overlapped_frames),
        format!("{}", outcome.air.cca_busy_hits),
        format!("{capture_lost}"),
        fnum(outcome.plr_radio()),
        fnum(outcome.goodput_bps()),
    ]);
}

/// Runs the hidden-terminal extension experiment.
pub fn run(scale: Scale) -> Report {
    let hidden = simulate(Scenario::hidden_pair(config()), scale);
    let exposed = simulate(Scenario::exposed_pair(config()), scale);
    let single = simulate(Scenario::single(config()), scale);

    let mut table = Table::new(vec![
        "setup",
        "frames",
        "overlapped",
        "cca_busy",
        "capture_lost",
        "plr_radio",
        "goodput_bps",
    ]);
    push_row(&mut table, "hidden pair", &hidden);
    push_row(&mut table, "exposed pair", &exposed);
    push_row(&mut table, "single link", &single);

    let mut report = Report::new("ext09", "Extension: hidden terminals (Sec. VIII-D)");
    report.push(
        "Two 35 m links, Ptx = 11, lD = 110, hidden vs exposed geometry",
        table,
        vec![
            format!(
                "Hidden senders never defer ({} CCA hits) and overlap {} frames; capture failures drive plr_radio to {:.4}.",
                hidden.air.cca_busy_hits,
                hidden.air.overlapped_frames,
                hidden.plr_radio()
            ),
            format!(
                "Exposed senders defer {} times and overlap only {} frames — carrier sense converts collisions into delay.",
                exposed.air.cca_busy_hits, exposed.air.overlapped_frames
            ),
            "The single-link baseline shows the contention-free floor both pairs pay their losses on top of.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_loss_strictly_exceeds_cca_detectable_loss() {
        let hidden = simulate(Scenario::hidden_pair(config()), Scale::Quick);
        let exposed = simulate(Scenario::exposed_pair(config()), Scale::Quick);
        assert!(
            hidden.plr_radio() > exposed.plr_radio(),
            "hidden {} vs exposed {}",
            hidden.plr_radio(),
            exposed.plr_radio()
        );
        assert!(
            hidden.air.overlapped_frames > exposed.air.overlapped_frames,
            "hidden {} vs exposed {} overlaps",
            hidden.air.overlapped_frames,
            exposed.air.overlapped_frames
        );
        assert_eq!(hidden.air.cca_busy_hits, 0);
        assert!(exposed.air.cca_busy_hits > 0);
    }

    #[test]
    fn report_has_three_setups() {
        let report = run(Scale::Bench);
        assert_eq!(report.sections[0].table.rows.len(), 3);
    }
}
