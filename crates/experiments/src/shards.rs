//! Resumable sharded campaign runs with JSONL checkpoint files.
//!
//! A grid run is split into `shards` contiguous spans of configurations.
//! Each shard streams its results to `shard-NNNN.jsonl` in the output
//! directory — one [`ShardLine`] (global config index + result) per line.
//! A shard is written to `shard-NNNN.jsonl.tmp` and atomically renamed on
//! completion, so the rename is the checkpoint unit: a file named
//! `shard-NNNN.jsonl` is always complete and bit-exact.
//!
//! **Resume** is therefore trivial and robust: re-running the same campaign
//! into the same directory skips every completed shard (and deletes any
//! stale `.tmp` left by a kill), then simulates only the missing ones.
//! Because per-configuration seeds derive from the *global* configuration
//! index (see [`Campaign::run_span`](crate::campaign::Campaign::run_span)),
//! a resumed run produces byte-identical shard files to an uninterrupted
//! one.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use wsn_obs::hist::LogLinearHistogram;
use wsn_obs::log::EventLog;
use wsn_obs::span::Span;
use wsn_params::config::StackConfig;
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::rng::RngFactory;

use crate::campaign::{Campaign, ConfigResult};
use crate::stream::SinkFn;

/// One line of a shard file: a result tagged with its global grid index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLine {
    /// Index of the configuration in the whole grid (also its seed index).
    pub index: usize,
    /// The measurement for that configuration.
    pub result: ConfigResult,
}

/// What a sharded run did — split between fresh work and skipped
/// checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Configurations in the whole grid.
    pub total_configs: usize,
    /// Shards the grid was split into.
    pub shards_total: usize,
    /// Shards found already complete and skipped (resume).
    pub shards_skipped: usize,
    /// Configurations actually simulated by this invocation.
    pub configs_simulated: usize,
}

/// Errors from shard I/O.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem error, with the path involved.
    Io(PathBuf, io::Error),
    /// A shard line failed to (de)serialize.
    Serde(PathBuf, String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(path, e) => write!(f, "shard I/O error at {}: {e}", path.display()),
            ShardError::Serde(path, e) => {
                write!(f, "shard serialization error at {}: {e}", path.display())
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Final file name of a completed shard.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:04}.jsonl")
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(shard_file_name(shard))
}

fn tmp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("{}.tmp", shard_file_name(shard)))
}

/// Splits `total` configurations into `shards` contiguous spans, returning
/// `(start, len)` per shard. Every span is non-empty when `total >= shards`;
/// trailing shards may be empty otherwise.
pub fn shard_spans(total: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let base = total / shards;
    let extra = total % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        spans.push((start, len));
        start += len;
    }
    spans
}

/// Runs `configs` split into `shards` checkpointed spans, writing each
/// completed span to `dir` as JSONL. Skips shards whose files already
/// exist (resume) and removes stale `.tmp` files first.
///
/// # Errors
///
/// Returns [`ShardError`] on any filesystem or serialization failure; a
/// failed shard leaves at most a `.tmp` file behind, never a truncated
/// final file.
pub fn run_sharded(
    campaign: &Campaign,
    configs: &[StackConfig],
    dir: &Path,
    shards: usize,
) -> Result<ShardReport, ShardError> {
    run_sharded_logged(campaign, configs, dir, shards, &EventLog::disabled())
}

/// [`run_sharded`] with structured JSONL checkpoint events: one
/// `shard_skipped` / `shard_complete` per shard (with its measured
/// wall-clock) and a closing `sharded_run_complete` summarizing shard
/// duration quantiles — the events a babysitting script tails to watch a
/// multi-hour grid without parsing progress lines.
///
/// # Errors
///
/// Same contract as [`run_sharded`]; log-write failures never fail the
/// run.
pub fn run_sharded_logged(
    campaign: &Campaign,
    configs: &[StackConfig],
    dir: &Path,
    shards: usize,
    log: &EventLog,
) -> Result<ShardReport, ShardError> {
    fs::create_dir_all(dir).map_err(|e| ShardError::Io(dir.to_path_buf(), e))?;
    let spans = shard_spans(configs.len(), shards);
    let mut report = ShardReport {
        total_configs: configs.len(),
        shards_total: spans.len(),
        shards_skipped: 0,
        configs_simulated: 0,
    };
    let shard_us = LogLinearHistogram::new();
    for (shard, &(start, len)) in spans.iter().enumerate() {
        let tmp = tmp_path(dir, shard);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| ShardError::Io(tmp.clone(), e))?;
        }
        let done = shard_path(dir, shard);
        if done.exists() {
            report.shards_skipped += 1;
            log.info("shard_skipped")
                .u64("shard", shard as u64)
                .u64("configs", len as u64)
                .emit();
            continue;
        }
        let timer = Span::start(&shard_us);
        write_shard(campaign, &configs[start..start + len], start, &tmp)?;
        fs::rename(&tmp, &done).map_err(|e| ShardError::Io(done.clone(), e))?;
        let elapsed_us = timer.finish();
        report.configs_simulated += len;
        log.info("shard_complete")
            .u64("shard", shard as u64)
            .u64("configs", len as u64)
            .u64("elapsed_us", elapsed_us)
            .str("file", &shard_file_name(shard))
            .emit();
    }
    log.info("sharded_run_complete")
        .u64("shards_total", report.shards_total as u64)
        .u64("shards_skipped", report.shards_skipped as u64)
        .u64("configs_simulated", report.configs_simulated as u64)
        .u64("shard_p50_us", shard_us.quantile(0.5))
        .u64("shard_max_us", shard_us.max())
        .emit();
    Ok(report)
}

/// Simulates one span and streams it to `tmp` as JSONL.
fn write_shard(
    campaign: &Campaign,
    configs: &[StackConfig],
    base: usize,
    tmp: &Path,
) -> Result<(), ShardError> {
    let file = File::create(tmp).map_err(|e| ShardError::Io(tmp.to_path_buf(), e))?;
    let mut out = BufWriter::new(file);
    let mut error: Option<ShardError> = None;
    {
        let mut sink = SinkFn::new(|index: usize, result: &ConfigResult| {
            if error.is_some() {
                return;
            }
            let line = ShardLine {
                index,
                result: result.clone(),
            };
            match serde_json::to_string(&line) {
                Ok(json) => {
                    if let Err(e) = writeln!(out, "{json}") {
                        error = Some(ShardError::Io(tmp.to_path_buf(), e));
                    }
                }
                Err(e) => {
                    error = Some(ShardError::Serde(tmp.to_path_buf(), format!("{e:?}")));
                }
            }
        });
        campaign.run_span(configs, base, &mut sink);
    }
    if let Some(e) = error {
        return Err(e);
    }
    out.flush()
        .map_err(|e| ShardError::Io(tmp.to_path_buf(), e))?;
    Ok(())
}

/// Reads every completed shard in `dir` back into one ordered result
/// vector, verifying the global indices form the contiguous run `0..n`.
///
/// # Errors
///
/// Returns [`ShardError`] on I/O or parse failure, or if the shard files
/// do not cover a contiguous index range starting at 0.
pub fn read_shard_dir(dir: &Path) -> Result<Vec<ConfigResult>, ShardError> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| ShardError::Io(dir.to_path_buf(), e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
        })
        .collect();
    names.sort();
    let mut results = Vec::new();
    for path in names {
        let file = File::open(&path).map_err(|e| ShardError::Io(path.clone(), e))?;
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| ShardError::Io(path.clone(), e))?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed: ShardLine = serde_json::from_str(&line)
                .map_err(|e| ShardError::Serde(path.clone(), format!("{e:?}")))?;
            if parsed.index != results.len() {
                return Err(ShardError::Serde(
                    path.clone(),
                    format!(
                        "non-contiguous shard index {} (expected {})",
                        parsed.index,
                        results.len()
                    ),
                ));
            }
            results.push(parsed.result);
        }
    }
    Ok(results)
}

/// Derives the `(cache key, result body)` pairs a live `wsn-serve` server
/// would compute for every configuration of a campaign checkpoint
/// directory — the `repro serve --warm-from-campaign` path. Hits against
/// the warmed cache are byte-identical to fresh answers because both
/// sides serialize the same structs with the same serializer; what this
/// function must replay exactly is the campaign's **seed derivation**:
/// the golden engine derives one seed per global grid index, while the
/// fast and analytic engines take the campaign seed verbatim (fast
/// re-derives per-config streams internally; analytic ignores seeds).
///
/// `packets` must match the campaign's per-configuration packet count
/// (quick scale is 400 — also the serve protocol's default).
///
/// # Errors
///
/// Returns a message on shard-read failure or (practically unreachable)
/// serialization failure.
pub fn serve_warm_entries(
    dir: &Path,
    engine: EngineMode,
    packets: u64,
) -> Result<Vec<(String, String)>, String> {
    let results = read_shard_dir(dir)
        .map_err(|e| format!("cannot read campaign shards from {}: {e}", dir.display()))?;
    let campaign_seed = Campaign::new(crate::campaign::Scale::Quick).seed;
    let base = RngFactory::new(campaign_seed);
    let mut entries = Vec::with_capacity(results.len());
    for (index, result) in results.iter().enumerate() {
        let seed = match engine {
            EngineMode::Golden => base.derive(index as u64).seed(),
            EngineMode::Fast | EngineMode::Analytic => campaign_seed,
        };
        let body = wsn_serve::engine::simulate_result_body(
            &result.config,
            packets,
            seed,
            engine,
            &result.metrics,
        )?;
        let key = wsn_serve::protocol::cache_key(&wsn_serve::protocol::RequestBody::Simulate {
            config: result.config,
            packets,
            seed,
            engine,
        })
        .expect("simulate requests always have a cache key");
        entries.push((key, body));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Scale;
    use wsn_params::grid::ParamGrid;

    fn bench_campaign() -> Campaign {
        Campaign {
            threads: 4,
            ..Campaign::new(Scale::Bench)
        }
    }

    fn tiny_configs() -> Vec<StackConfig> {
        ParamGrid {
            distances_m: vec![20.0, 35.0],
            power_levels: vec![7, 31],
            max_tries: vec![1, 3],
            retry_delays_ms: vec![0],
            queue_caps: vec![30],
            packet_intervals_ms: vec![50],
            payloads: vec![50],
        }
        .iter()
        .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsn-shards-{tag}-{}", std::process::id()));
        if dir.exists() {
            fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn read_all_shard_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_str().unwrap().to_string(),
                    fs::read(&p).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn spans_partition_the_grid() {
        assert_eq!(shard_spans(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
        assert_eq!(shard_spans(2, 4), vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
        assert_eq!(shard_spans(0, 2), vec![(0, 0), (0, 0)]);
        let spans = shard_spans(48_384, 7);
        assert_eq!(spans.iter().map(|&(_, l)| l).sum::<usize>(), 48_384);
    }

    #[test]
    fn sharded_run_round_trips_and_matches_in_memory() {
        let campaign = bench_campaign();
        let configs = tiny_configs();
        let dir = temp_dir("roundtrip");

        let report = run_sharded(&campaign, &configs, &dir, 3).unwrap();
        assert_eq!(report.total_configs, configs.len());
        assert_eq!(report.shards_total, 3);
        assert_eq!(report.shards_skipped, 0);
        assert_eq!(report.configs_simulated, configs.len());

        let from_disk = read_shard_dir(&dir).unwrap();
        let in_memory = campaign.run_configs(&configs);
        assert_eq!(from_disk, in_memory);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_interruption_is_byte_identical() {
        let campaign = bench_campaign();
        let configs = tiny_configs();

        // Reference: one uninterrupted run.
        let dir_a = temp_dir("ref");
        run_sharded(&campaign, &configs, &dir_a, 4).unwrap();

        // Interrupted run: complete it, then simulate a kill by deleting
        // one finished shard and planting a stale half-written tmp file.
        let dir_b = temp_dir("resume");
        run_sharded(&campaign, &configs, &dir_b, 4).unwrap();
        fs::remove_file(dir_b.join(shard_file_name(2))).unwrap();
        fs::write(dir_b.join(format!("{}.tmp", shard_file_name(2))), b"{trunc").unwrap();

        let report = run_sharded(&campaign, &configs, &dir_b, 4).unwrap();
        assert_eq!(report.shards_skipped, 3);
        assert_eq!(report.configs_simulated, shard_spans(configs.len(), 4)[2].1);
        assert!(!dir_b.join(format!("{}.tmp", shard_file_name(2))).exists());

        assert_eq!(read_all_shard_bytes(&dir_a), read_all_shard_bytes(&dir_b));

        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn logged_run_emits_shard_lifecycle_events() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let campaign = bench_campaign();
        let configs = tiny_configs();
        let dir = temp_dir("logged");

        let buf = Buf::default();
        let log = EventLog::to_writer(Box::new(buf.clone()), wsn_obs::log::Level::Info);
        run_sharded_logged(&campaign, &configs, &dir, 2, &log).unwrap();
        // Resume over a finished directory: every shard reported as skipped.
        run_sharded_logged(&campaign, &configs, &dir, 2, &log).unwrap();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let count = |needle: &str| text.lines().filter(|l| l.contains(needle)).count();
        assert_eq!(count("\"event\":\"shard_complete\""), 2, "{text}");
        assert_eq!(count("\"event\":\"shard_skipped\""), 2, "{text}");
        assert_eq!(count("\"event\":\"sharded_run_complete\""), 2, "{text}");
        assert!(text.contains("\"file\":\"shard-0000.jsonl\""), "{text}");
        assert!(text.contains("\"shards_skipped\":2"), "{text}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_entries_are_byte_identical_to_live_golden_answers() {
        // A quick-scale campaign over a tiny grid, checkpointed to
        // shards, must warm a serve engine such that the live question —
        // same config, campaign-derived seed, quick packets — is a cache
        // hit with the exact bytes a cold compute would produce.
        let campaign = Campaign {
            threads: 2,
            ..Campaign::new(Scale::Quick)
        };
        let configs = tiny_configs();
        let dir = temp_dir("warm");
        run_sharded(&campaign, &configs, &dir, 2).unwrap();

        let entries = serve_warm_entries(&dir, EngineMode::Golden, campaign.packets).unwrap();
        assert_eq!(entries.len(), configs.len());

        let warmed = wsn_serve::engine::Engine::new(4);
        for (key, body) in &entries {
            warmed.warm_insert(key, body).unwrap();
        }
        let cold = wsn_serve::engine::Engine::new(4);
        let base = RngFactory::new(campaign.seed);
        for (index, config) in configs.iter().enumerate() {
            let request = wsn_serve::protocol::RequestBody::Simulate {
                config: *config,
                packets: campaign.packets,
                seed: base.derive(index as u64).seed(),
                engine: EngineMode::Golden,
            };
            let hit = warmed.execute(&request).unwrap();
            assert!(hit.cached, "config {index} missed the warmed cache");
            let computed = cold.execute(&request).unwrap();
            assert!(!computed.cached);
            assert_eq!(*hit.body, *computed.body, "config {index} bytes differ");
        }

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_rejects_gaps() {
        let campaign = bench_campaign();
        let configs = tiny_configs();
        let dir = temp_dir("gaps");
        run_sharded(&campaign, &configs, &dir, 2).unwrap();
        fs::remove_file(dir.join(shard_file_name(0))).unwrap();
        let err = read_shard_dir(&dir).unwrap_err();
        assert!(matches!(err, ShardError::Serde(_, _)), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
