//! Ablation 4: temporal correlation — why losses come in bursts.
//!
//! The paper's Sec. III-A RSSI-variation measurements imply temporally
//! correlated link quality. This ablation holds the *mean* loss rate
//! fixed and sweeps the AR(1) fading correlation: the average PER barely
//! moves, but loss bursts lengthen dramatically — the property that
//! decides whether `NmaxTries` retransmissions (spaced `Dretry` apart) can
//! actually recover a loss.

use wsn_link_sim::analysis::DeliverySequence;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_params::config::StackConfig;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::per::{DsssPer, PerBackend};
use wsn_radio::shadowing::SigmaProfile;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// AR(1) correlations swept.
pub const CORRELATIONS: [f64; 4] = [0.0, 0.5, 0.9, 0.99];

fn config() -> StackConfig {
    // Single transmission so the delivery sequence reflects raw channel
    // behaviour; the link sits a few dB above the DSSS reception
    // threshold so fades below it cause (deterministic) loss runs.
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(3)
        .payload_bytes(110)
        .max_tries(1)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

/// Measures (PER, mean loss burst, lag-1 autocorr, burstiness) at a
/// fading correlation.
fn measure(correlation: f64, packets: u64, seed: u64) -> (f64, f64, f64, f64) {
    let mut channel = ChannelConfig::paper_hallway();
    channel.fading_correlation = correlation;
    // The physics backend has a sharp reception threshold, so whether a
    // packet survives is (almost) a deterministic function of the fade —
    // the cleanest instrument for observing fade-induced bursts.
    channel.per_backend = PerBackend::Dsss(DsssPer);
    // A strong but equal sigma for all runs, so only correlation varies.
    channel.sigma_profile = SigmaProfile {
        base_db: 3.5,
        shadowed_db: 3.5,
        shadowed_from_m: 0.0,
    };
    let outcome = LinkSimulation::new(
        config(),
        SimOptions::quick(packets)
            .with_seed(seed)
            .with_channel(channel),
    )
    .run();
    let records = outcome.records.as_ref().expect("records requested");
    let sequence = DeliverySequence::from_records(records);
    (
        outcome.metrics().per,
        sequence.mean_loss_burst(),
        sequence.autocorrelation(1).unwrap_or(0.0),
        sequence.burstiness().unwrap_or(0.0),
    )
}

/// Runs the temporal-correlation ablation.
pub fn run(scale: Scale) -> Report {
    let packets = (scale.packets() * 4).max(800);
    let mut table = Table::new(vec![
        "fading_corr",
        "per",
        "mean_loss_burst",
        "lag1_autocorr",
        "burstiness",
    ]);
    for (i, &rho) in CORRELATIONS.iter().enumerate() {
        let (per, burst, ac, b) = measure(rho, packets, 7 + i as u64);
        table.push_row(vec![fnum(rho), fnum(per), fnum(burst), fnum(ac), fnum(b)]);
    }

    let mut report = Report::new(
        "ablation04",
        "Ablation: temporal fading correlation and loss burstiness",
    );
    report.push(
        "Delivery-sequence statistics vs AR(1) correlation (equal mean SNR and sigma)",
        table,
        vec![
            "Mean PER is set by the stationary SNR distribution and barely moves with correlation.".into(),
            "Loss bursts lengthen with correlation: with rho=0.99 a fade outlives a whole retransmission burst, which is why Dretry exists.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(report: &Report, col: usize) -> Vec<f64> {
        report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[col].parse().unwrap())
            .collect()
    }

    #[test]
    fn mean_per_is_insensitive_to_correlation() {
        let report = run(Scale::Quick);
        let pers = column(&report, 1);
        let max = pers.iter().cloned().fold(f64::MIN, f64::max);
        let min = pers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.12, "PER spread too large: {pers:?}");
    }

    #[test]
    fn bursts_lengthen_with_correlation() {
        let report = run(Scale::Quick);
        let bursts = column(&report, 2);
        assert!(
            bursts[3] > bursts[0] * 1.5,
            "bursts did not lengthen: {bursts:?}"
        );
    }

    #[test]
    fn uncorrelated_losses_are_not_bursty() {
        let report = run(Scale::Quick);
        let burstiness = column(&report, 4);
        assert!(
            burstiness[0].abs() < 0.1,
            "rho=0 burstiness {}",
            burstiness[0]
        );
        assert!(burstiness[3] > 0.1, "rho=0.99 burstiness {}", burstiness[3]);
    }
}
