//! Extension 10: link-density sweep.
//!
//! How much does one more co-located link cost? A stack of parallel 20 m
//! links spaced 2 m apart shares one channel; every sender carrier-senses
//! every other, so added density converts airtime into CCA deferrals and
//! residual vulnerability-window collisions. Aggregate goodput grows
//! sub-linearly and per-link radio loss rises with density — the
//! multi-link generalization of the paper's single-link capacity picture.

use wsn_link_sim::network::{NetOptions, NetworkOutcome, NetworkSimulation};
use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The swept link counts.
const DENSITIES: [usize; 4] = [2, 4, 8, 16];

fn config() -> StackConfig {
    StackConfig::builder()
        .distance_m(20.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

fn simulate(links: usize, scale: Scale) -> NetworkOutcome {
    let configs = vec![config(); links];
    let options = NetOptions {
        seed: 0x5EED,
        ..NetOptions::quick(scale.packets())
    };
    NetworkSimulation::new(Scenario::parallel(&configs, 2.0), options).run()
}

/// Runs the density-sweep extension experiment.
pub fn run(scale: Scale) -> Report {
    let mut table = Table::new(vec![
        "links",
        "plr_radio",
        "goodput_bps",
        "goodput_per_link",
        "overlapped",
        "cca_busy",
        "mean_tries",
    ]);
    let mut outcomes = Vec::with_capacity(DENSITIES.len());
    for &n in &DENSITIES {
        let outcome = simulate(n, scale);
        let goodput = outcome.goodput_bps();
        let mean_tries = outcome
            .links
            .iter()
            .map(|l| l.metrics.mean_tries)
            .sum::<f64>()
            / n as f64;
        table.push_row(vec![
            format!("{n}"),
            fnum(outcome.plr_radio()),
            fnum(goodput),
            fnum(goodput / n as f64),
            format!("{}", outcome.air.overlapped_frames),
            format!("{}", outcome.air.cca_busy_hits),
            fnum(mean_tries),
        ]);
        outcomes.push(outcome);
    }

    let first = &outcomes[0];
    let last = &outcomes[outcomes.len() - 1];
    let mut report = Report::new("ext10", "Extension: link-density sweep (2–16 links)");
    report.push(
        "Parallel 20 m links, 2 m spacing, Ptx = 31, lD = 50",
        table,
        vec![
            format!(
                "Radio loss grows with density: {:.4} at {} links vs {:.4} at {} links.",
                first.plr_radio(),
                DENSITIES[0],
                last.plr_radio(),
                DENSITIES[DENSITIES.len() - 1]
            ),
            format!(
                "Aggregate goodput is sub-linear: ×{} links buys ×{:.1} goodput — the channel, not the stack, is the bottleneck.",
                DENSITIES[DENSITIES.len() - 1] / DENSITIES[0],
                last.goodput_bps() / first.goodput_bps()
            ),
            "Deferrals (cca_busy) dominate overlaps at close spacing: carrier sense works, it just serializes the air.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_raises_radio_loss() {
        let sparse = simulate(2, Scale::Quick);
        let dense = simulate(16, Scale::Quick);
        assert!(
            dense.plr_radio() >= sparse.plr_radio(),
            "dense {} vs sparse {}",
            dense.plr_radio(),
            sparse.plr_radio()
        );
        assert!(
            dense.air.cca_busy_hits > sparse.air.cca_busy_hits,
            "denser air must defer more"
        );
    }

    #[test]
    fn aggregate_goodput_is_sublinear() {
        let sparse = simulate(2, Scale::Quick);
        let dense = simulate(16, Scale::Quick);
        let scaling = dense.goodput_bps() / sparse.goodput_bps();
        assert!(
            scaling < 8.0,
            "8× the links must buy < 8× goodput, got ×{scaling:.2}"
        );
        assert!(scaling > 1.0, "more links must still add goodput");
    }

    #[test]
    fn report_sweeps_all_densities() {
        let report = run(Scale::Bench);
        assert_eq!(report.sections[0].table.rows.len(), DENSITIES.len());
    }
}
