//! Fig. 3 — RSSI attenuation with distance and the log-normal fit.
//!
//! The paper fits its hallway path loss with exponent `n = 2.19` and
//! shadowing deviation `σ = 3.2 dB`. This experiment samples the synthetic
//! channel at every grid distance, then **re-fits** the log-distance model
//! with ordinary least squares, confirming the channel reproduces the
//! published statistics.

use rand::SeedableRng;

use wsn_models::fit::linear_fit;
use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};
use crate::sweep::{mean_of, std_of};

/// Distances sampled for the path-loss fit, meters.
pub const FIT_DISTANCES: [f64; 7] = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0];

/// Runs the Fig. 3 reproduction.
pub fn run(scale: Scale) -> Report {
    let samples_per_distance = match scale {
        Scale::Bench => 500usize,
        Scale::Quick => 2_000,
        Scale::Full => 20_000,
    };
    let power = PowerLevel::MAX; // 0 dBm, so RSSI = −PL(d) + fading

    let mut table = Table::new(vec!["distance_m", "mean_rssi_dbm", "rssi_std_db"]);
    let mut xs = Vec::new(); // 10 · log10(d)
    let mut ys = Vec::new(); // mean RSSI
    let mut pooled_residual_samples: Vec<f64> = Vec::new();

    for (i, &d) in FIT_DISTANCES.iter().enumerate() {
        let distance = Distance::from_meters(d).expect("positive distance");
        let mut channel = Channel::new(ChannelConfig::paper_hallway(), power, distance);
        let mut fading = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
        let mut noise = rand::rngs::StdRng::seed_from_u64(200 + i as u64);
        let rssi: Vec<f64> = (0..samples_per_distance)
            .map(|_| channel.observe(&mut fading, &mut noise).rssi_dbm)
            .collect();
        let mean = mean_of(rssi.iter().copied());
        let std = std_of(&rssi);
        table.push_row(vec![fnum(d), fnum(mean), fnum(std)]);
        xs.push(10.0 * d.log10());
        ys.push(mean);
        pooled_residual_samples.extend(rssi.iter().map(|r| r - mean));
    }

    let fit = linear_fit(&xs, &ys).expect("seven distinct distances");
    let fitted_n = -fit.slope;
    let shadowing_sigma = std_of(&pooled_residual_samples);

    let mut fit_table = Table::new(vec!["quantity", "paper", "reproduced"]);
    fit_table.push_row(vec![
        "path-loss exponent n".to_string(),
        "2.19".to_string(),
        fnum(fitted_n),
    ]);
    fit_table.push_row(vec![
        "shadowing sigma (dB)".to_string(),
        "3.2 (pooled)".to_string(),
        fnum(shadowing_sigma),
    ]);
    fit_table.push_row(vec![
        "fit R^2".to_string(),
        "(log-normal fits well)".to_string(),
        fnum(fit.r_squared),
    ]);

    let mut report = Report::new(
        "fig03",
        "Fig. 3: log-normal path loss (n = 2.19, sigma = 3.2 dB)",
    );
    report.push(
        "Mean RSSI vs distance at Ptx = 31 (0 dBm)",
        table,
        vec!["RSSI falls linearly in 10·log10(d), matching the log-distance model.".into()],
    );
    report.push(
        "OLS re-fit of the path-loss model",
        fit_table,
        vec![format!(
            "reproduced n = {:.2} vs paper 2.19; per-sample deviation reflects the AR(1) shadowing profile",
            fitted_n
        )],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_recovers_the_planted_exponent() {
        let report = run(Scale::Quick);
        let fit_rows = &report.sections[1].table.rows;
        let n: f64 = fit_rows[0][2].parse().unwrap();
        assert!((n - 2.19).abs() < 0.15, "n={n}");
        let r2: f64 = fit_rows[2][2].parse().unwrap();
        assert!(r2 > 0.98, "r2={r2}");
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let means: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for pair in means.windows(2) {
            assert!(pair[0] > pair[1], "RSSI not monotone: {means:?}");
        }
    }
}
