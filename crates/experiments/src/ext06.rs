//! Extension 6: battery-lifetime projection.
//!
//! The deployment question behind the paper's energy metric: how long
//! does a 2×AA TelosB actually live under each tuning regime? Combines
//! the whole-radio power model with the LPL extension to show that (a)
//! the always-on stack the paper measures is listen-bound (days of
//! lifetime regardless of tuning) and (b) duty cycling converts the
//! paper's per-bit savings into months of lifetime.

use wsn_models::battery::{always_on_drain_w, estimate, Battery};
use wsn_models::lpl::LplConfig;
use wsn_models::predict::LinkBudget;
use wsn_params::config::StackConfig;
use wsn_sim_engine::time::SimDuration;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Workloads projected: `(Tpkt ms, label)`.
pub const WORKLOADS: [(u32, &str); 4] = [
    (100, "streaming (10 pkt/s)"),
    (1_000, "telemetry (1 pkt/s)"),
    (10_000, "monitoring (0.1 pkt/s)"),
    (60_000, "alarm (1 pkt/min)"),
];

fn config(tpkt: u32) -> StackConfig {
    StackConfig::builder()
        .distance_m(20.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(tpkt)
        .build()
        .expect("valid constants")
}

/// Runs the battery-lifetime extension experiment (model-only).
pub fn run(_scale: Scale) -> Report {
    let battery = Battery::two_aa();
    let budget = LinkBudget::paper_hallway();
    let lpl = LplConfig::tinyos_default();

    let mut table = Table::new(vec![
        "workload",
        "always_on_mW",
        "always_on_days",
        "lpl512_days",
        "lpl_optimal_days",
        "extension_factor",
    ]);
    for &(tpkt, label) in &WORKLOADS {
        let cfg = config(tpkt);
        let snr = budget.snr_db(cfg.power, cfg.distance);
        let drain = always_on_drain_w(snr, &cfg);
        let est = estimate(&battery, snr, &cfg, &lpl);

        // Also with the rate-optimal wake interval.
        let model = wsn_models::lpl::LplModel::new(cfg.power, cfg.payload);
        let w_opt = model.optimal_wake_interval(
            SimDuration::from_millis(11),
            cfg.packet_interval.rate_pps(),
            SimDuration::from_secs(4),
        );
        let opt_est = estimate(
            &battery,
            snr,
            &cfg,
            &LplConfig::new(w_opt, SimDuration::from_millis(11)),
        );

        table.push_row(vec![
            label.to_string(),
            fnum(drain * 1e3),
            fnum(est.always_on_days),
            fnum(est.lpl_days),
            fnum(opt_est.lpl_days),
            fnum(opt_est.lpl_days / est.always_on_days),
        ]);
    }

    let mut report = Report::new(
        "ext06",
        "Extension: battery-lifetime projection (2xAA TelosB)",
    );
    report.push(
        "Node lifetime per workload, always-on vs LPL",
        table,
        vec![
            "The always-on stack the paper measures is listen-bound: ~5-6 days on 2xAA at any rate.".into(),
            "Duty cycling converts the per-bit tuning gains into months of lifetime at monitoring rates.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_listen_bound_across_workloads() {
        let report = run(Scale::Quick);
        let days: Vec<f64> = report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        for d in &days {
            assert!(*d > 3.0 && *d < 8.0, "always-on lifetime {d} days");
        }
        // Nearly flat across a 600x rate spread.
        let spread = days.iter().cloned().fold(f64::MIN, f64::max)
            / days.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.6, "spread={spread}");
    }

    #[test]
    fn lifetime_extension_grows_with_quietness() {
        let report = run(Scale::Quick);
        let factors: Vec<f64> = report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[5].parse().unwrap())
            .collect();
        for pair in factors.windows(2) {
            assert!(pair[1] > pair[0], "factors not increasing: {factors:?}");
        }
        assert!(factors[3] > 30.0, "alarm-rate extension {}", factors[3]);
    }

    #[test]
    fn optimal_interval_beats_or_matches_default() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let fixed: f64 = row[3].parse().unwrap();
            let optimal: f64 = row[4].parse().unwrap();
            assert!(optimal >= fixed * 0.95, "{row:?}");
        }
    }
}
