//! Extension 12: analytic engine cross-validation.
//!
//! The analytic engine (`--engine analytic`, [`EngineMode::Analytic`],
//! DESIGN.md §13) answers in microseconds from the M/G/1 closed form
//! instead of sampling, so — unlike ext11's golden-vs-fast pair — it is
//! not the same stochastic process in a different draw order but a
//! genuine approximation with a validity envelope. This experiment
//! publishes that envelope: a stratified stable-region (ρ < 1) sample of
//! the paper's grid evaluated by the fast sampler and the closed form
//! side by side, with the deviation of every headline metric against the
//! error budget the engine is shipped under:
//!
//! * |ΔPLR| ≤ 0.02 absolute,
//! * goodput, mean delay, and utilization ρ within 10 % relative.
//!
//! Outside the stable region (ρ ≥ 1) the closed form reports the
//! saturated fixed point rather than a finite-window trajectory, so the
//! budget deliberately does not apply there.

use wsn_params::config::StackConfig;
use wsn_sim_engine::mode::EngineMode;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// The shipped error budget: absolute PLR tolerance.
pub const PLR_BUDGET_ABS: f64 = 0.02;
/// The shipped error budget: relative tolerance on goodput, delay, ρ.
pub const REL_BUDGET: f64 = 0.10;
/// Utilization above which a configuration counts as outside the stable
/// region (the closed form's M/G/1 wait diverges as ρ → 1, so the budget
/// is only claimed safely below the knee).
pub const STABLE_RHO: f64 = 0.95;

/// The stratified stable-region sample: strong/mid/shadowed links,
/// small/large payloads, slow/moderate arrivals — all with offered loads
/// their service rates absorb (ρ < 1), where the M/G/1 mean-wait
/// approximation is valid.
fn sample() -> Vec<StackConfig> {
    let mut configs = Vec::new();
    for (dist, power, payload, tries, interval) in [
        (10.0, 31u8, 50u16, 1u8, 50u32), // strong link, no retries
        (20.0, 11, 50, 3, 50),           // mid link, paper default budget
        (20.0, 31, 110, 3, 50),          // strong link, heavy payload
        (30.0, 7, 110, 3, 100),          // weak-ish, slow arrivals
        (35.0, 23, 50, 3, 50),           // shadowed distance
        (10.0, 31, 110, 3, 30),          // higher load, still stable
    ] {
        configs.push(
            StackConfig::builder()
                .distance_m(dist)
                .power_level(power)
                .payload_bytes(payload)
                .max_tries(tries)
                .retry_delay_ms(0)
                .queue_cap(30)
                .packet_interval_ms(interval)
                .build()
                .expect("valid sample constants"),
        );
    }
    configs
}

fn relative(reference: f64, candidate: f64) -> f64 {
    if reference.abs() < 1e-12 {
        (candidate - reference).abs()
    } else {
        ((candidate - reference) / reference).abs()
    }
}

/// Runs the analytic-vs-fast cross-validation experiment.
pub fn run(scale: Scale) -> Report {
    let configs = sample();
    let fast = Campaign {
        threads: 1,
        ..Campaign::new(scale)
    }
    .with_engine(EngineMode::Fast)
    .run_configs(&configs);
    let analytic = Campaign {
        threads: 1,
        ..Campaign::new(scale)
    }
    .with_engine(EngineMode::Analytic)
    .run_configs(&configs);

    let mut table = Table::new(vec![
        "d_m",
        "ptx",
        "ld",
        "plr_f",
        "plr_a",
        "goodput_f",
        "goodput_a",
        "delay_ms_f",
        "delay_ms_a",
        "rho_f",
        "rho_a",
        "in_budget",
    ]);
    let mut worst_plr = 0.0f64;
    let mut worst_rel = 0.0f64;
    let mut stable = 0usize;
    for (f, a) in fast.iter().zip(&analytic) {
        let (fm, am) = (&f.metrics, &a.metrics);
        let dplr = (fm.plr_total() - am.plr_total()).abs();
        let rel = relative(fm.goodput_bps, am.goodput_bps)
            .max(relative(fm.delay_mean_ms, am.delay_mean_ms))
            .max(relative(fm.utilization, am.utilization));
        let in_stable = fm.utilization < STABLE_RHO && am.utilization < STABLE_RHO;
        let in_budget = in_stable && dplr <= PLR_BUDGET_ABS && rel <= REL_BUDGET;
        if in_stable {
            stable += 1;
            worst_plr = worst_plr.max(dplr);
            worst_rel = worst_rel.max(rel);
        }
        table.push_row(vec![
            format!("{}", f.config.distance.meters()),
            format!("{}", f.config.power.level()),
            format!("{}", f.config.payload.bytes()),
            fnum(fm.plr_total()),
            fnum(am.plr_total()),
            fnum(fm.goodput_bps),
            fnum(am.goodput_bps),
            fnum(fm.delay_mean_ms),
            fnum(am.delay_mean_ms),
            fnum(fm.utilization),
            fnum(am.utilization),
            if in_budget { "yes" } else { "no" }.to_string(),
        ]);
    }

    let mut report = Report::new(
        "ext12",
        "Extension: analytic M/G/1 engine vs. fast sampler, stable-region sample",
    );
    report.push(
        "Closed form vs. sampled metrics under the shipped error budget",
        table,
        vec![
            format!(
                "Stable-region configs (ρ < {STABLE_RHO} under both engines): \
                 {stable}/{} of the sample.",
                configs.len()
            ),
            format!("Worst stable-region |ΔPLR|: {worst_plr:.4} (budget {PLR_BUDGET_ABS})."),
            format!(
                "Worst stable-region relative deviation over goodput/delay/ρ: \
                 {worst_rel:.3} (budget {REL_BUDGET}); the fast side carries \
                 finite-sample noise at {} packets/config.",
                scale.packets()
            ),
            "The analytic engine is an approximation, not a sampler: quasi-static \
             shadowing, mean-wait M/G/1 queueing, no horizon or motion — see \
             DESIGN.md §13 for the full envelope."
                .into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_compares_every_sample_config() {
        let report = run(Scale::Bench);
        assert_eq!(report.sections[0].table.rows.len(), sample().len());
    }

    #[test]
    fn analytic_meets_the_error_budget_in_the_stable_region() {
        // The shipped claim: every stable-region sample config is inside
        // the budget at the harness's quick scale.
        let configs = sample();
        let fast = Campaign {
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast)
        .run_configs(&configs);
        let analytic = Campaign {
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Analytic)
        .run_configs(&configs);
        let mut stable = 0usize;
        for (f, a) in fast.iter().zip(&analytic) {
            assert!(a.metrics.conserves_packets());
            if f.metrics.utilization >= STABLE_RHO || a.metrics.utilization >= STABLE_RHO {
                continue;
            }
            stable += 1;
            let dplr = (f.metrics.plr_total() - a.metrics.plr_total()).abs();
            assert!(
                dplr <= PLR_BUDGET_ABS,
                "PLR deviates by {dplr} on {:?}",
                f.config
            );
            for (name, fv, av) in [
                ("goodput", f.metrics.goodput_bps, a.metrics.goodput_bps),
                ("delay", f.metrics.delay_mean_ms, a.metrics.delay_mean_ms),
                ("rho", f.metrics.utilization, a.metrics.utilization),
            ] {
                let rel = relative(fv, av);
                assert!(
                    rel <= REL_BUDGET,
                    "{name} deviates by {rel} ({fv} vs {av}) on {:?}",
                    f.config
                );
            }
        }
        // The sample is built to sit in the stable region — the budget
        // must actually have been exercised.
        assert_eq!(stable, configs.len(), "sample drifted out of ρ < 1");
    }
}
