//! The experiment campaign runner: simulates sets of configurations with
//! per-configuration derived seeds, optionally across threads.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::rng::RngFactory;

/// How much measurement to buy per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny packet counts for benchmark harnesses and smoke tests.
    Bench,
    /// Reduced packet counts; sub-minute figure regeneration.
    Quick,
    /// The paper's protocol: 4500 packets per configuration.
    Full,
}

impl Scale {
    /// Packets per configuration at this scale.
    pub fn packets(self) -> u64 {
        match self {
            Scale::Bench => 60,
            Scale::Quick => 400,
            Scale::Full => 4500,
        }
    }
}

/// One `(configuration, metrics)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResult {
    /// The simulated configuration.
    pub config: StackConfig,
    /// Its measured summary metrics.
    pub metrics: LinkMetrics,
}

/// Campaign settings shared by all configurations of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Base experiment seed; each configuration derives its own streams.
    pub seed: u64,
    /// Packets per configuration.
    pub packets: u64,
    /// Propagation environment.
    pub channel: ChannelConfig,
    /// Arrival process.
    pub traffic: TrafficModel,
    /// Worker threads (1 = run inline).
    pub threads: usize,
}

impl Campaign {
    /// A campaign at the given scale on the paper's hallway channel.
    pub fn new(scale: Scale) -> Self {
        Campaign {
            seed: 0x5EED,
            packets: scale.packets(),
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Returns the campaign with a different channel (builder-style).
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the campaign with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the campaign with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulation options for the configuration at `index`.
    fn options_for(&self, index: u64) -> SimOptions {
        SimOptions {
            packets: self.packets,
            seed: RngFactory::new(self.seed).derive(index).seed(),
            channel: self.channel,
            traffic: self.traffic,
            record_packets: false,
            horizon: None,
            trajectory: wsn_radio::trajectory::Trajectory::Stationary,
        }
    }

    /// Simulates one configuration (with the seed it would get inside a
    /// grid run at `index`).
    pub fn run_one(&self, config: StackConfig, index: u64) -> ConfigResult {
        let outcome = LinkSimulation::new(config, self.options_for(index)).run();
        ConfigResult {
            config,
            metrics: outcome.metrics().clone(),
        }
    }

    /// Simulates every configuration in `configs`, preserving order.
    pub fn run_configs(&self, configs: &[StackConfig]) -> Vec<ConfigResult> {
        if self.threads <= 1 || configs.len() < 4 {
            return configs
                .iter()
                .enumerate()
                .map(|(i, &c)| self.run_one(c, i as u64))
                .collect();
        }
        let next = Mutex::new(0usize);
        let results: Mutex<Vec<Option<ConfigResult>>> = Mutex::new(vec![None; configs.len()]);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(configs.len()) {
                scope.spawn(|| loop {
                    let i = {
                        let mut guard = next.lock().expect("index lock");
                        let i = *guard;
                        if i >= configs.len() {
                            return;
                        }
                        *guard += 1;
                        i
                    };
                    let result = self.run_one(configs[i], i as u64);
                    results.lock().expect("results lock")[i] = Some(result);
                });
            }
        });
        results
            .into_inner()
            .expect("threads joined")
            .into_iter()
            .map(|r| r.expect("every index was processed"))
            .collect()
    }

    /// Simulates every configuration of a grid.
    pub fn run_grid(&self, grid: &ParamGrid) -> Vec<ConfigResult> {
        let configs: Vec<StackConfig> = grid.iter().collect();
        self.run_configs(&configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ParamGrid {
        ParamGrid {
            distances_m: vec![20.0, 35.0],
            power_levels: vec![11, 31],
            max_tries: vec![1, 3],
            retry_delays_ms: vec![0],
            queue_caps: vec![30],
            packet_intervals_ms: vec![50],
            payloads: vec![50],
        }
    }

    #[test]
    fn grid_run_preserves_order_and_length() {
        let campaign = Campaign {
            packets: 60,
            threads: 4,
            ..Campaign::new(Scale::Quick)
        };
        let grid = tiny_grid();
        let results = campaign.run_grid(&grid);
        assert_eq!(results.len(), grid.len());
        for (r, expected) in results.iter().zip(grid.iter()) {
            assert_eq!(r.config, expected);
            assert!(r.metrics.conserves_packets());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let grid = tiny_grid();
        let serial = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .run_grid(&grid);
        let parallel = Campaign {
            packets: 60,
            threads: 8,
            ..Campaign::new(Scale::Quick)
        }
        .run_grid(&grid);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_config_seeds_differ_but_are_stable() {
        let campaign = Campaign {
            packets: 60,
            ..Campaign::new(Scale::Quick)
        };
        let a = campaign.options_for(0).seed;
        let b = campaign.options_for(1).seed;
        assert_ne!(a, b);
        assert_eq!(a, campaign.options_for(0).seed);
    }

    #[test]
    fn scale_packet_counts() {
        assert_eq!(Scale::Quick.packets(), 400);
        assert_eq!(Scale::Full.packets(), 4500);
    }
}
