//! The experiment campaign runner: simulates sets of configurations with
//! per-configuration derived seeds, optionally across threads.
//!
//! Results stream **in configuration order** to a
//! [`CampaignSink`](crate::stream::CampaignSink); workers claim work from a
//! lock-free atomic index and hand finished results to a bounded reorder
//! buffer, so peak memory is O(threads) regardless of grid size. The
//! historical collect-everything API ([`Campaign::run_configs`]) remains as
//! a thin wrapper over a
//! [`CollectSink`](crate::stream::CollectSink).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use serde::{Deserialize, Serialize};

use wsn_analytic::table::AnalyticTable;
use wsn_analytic::AnalyticLinkSimulation;
use wsn_link_sim::fast::FastLinkSimulation;
use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::batch::BatchExecutor;
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::rng::RngFactory;

use crate::stream::{CampaignSink, CollectSink, StreamStats};

/// How much measurement to buy per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny packet counts for benchmark harnesses and smoke tests.
    Bench,
    /// Reduced packet counts; sub-minute figure regeneration.
    Quick,
    /// The paper's protocol: 4500 packets per configuration.
    Full,
}

impl Scale {
    /// Packets per configuration at this scale.
    pub fn packets(self) -> u64 {
        match self {
            Scale::Bench => 60,
            Scale::Quick => 400,
            Scale::Full => 4500,
        }
    }
}

/// One `(configuration, metrics)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResult {
    /// The simulated configuration.
    pub config: StackConfig,
    /// Its measured summary metrics.
    pub metrics: LinkMetrics,
}

/// Campaign settings shared by all configurations of one run.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Base experiment seed; each configuration derives its own streams.
    pub seed: u64,
    /// Packets per configuration.
    pub packets: u64,
    /// Propagation environment.
    pub channel: ChannelConfig,
    /// Arrival process.
    pub traffic: TrafficModel,
    /// Worker threads (1 = run inline).
    pub threads: usize,
    /// Simulation backend: the bit-reproducible golden engine (default),
    /// the statistically-equivalent fast engine, or the closed-form
    /// analytic engine.
    pub engine: EngineMode,
    /// Result memo for the analytic engine, shared across runs of this
    /// campaign value (the analytic evaluator is seed-free and
    /// deterministic, so reuse is bit-identical to recomputation). The
    /// sampling engines never touch it. Lookups are skipped automatically
    /// if [`Campaign::channel`] is reassigned away from the table's
    /// channel; use [`Campaign::with_channel`] to re-key it instead.
    pub analytic: Arc<AnalyticTable>,
}

impl PartialEq for Campaign {
    /// Campaign identity is its six run-defining settings; the analytic
    /// memo is a cache and never affects results.
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.packets == other.packets
            && self.channel == other.channel
            && self.traffic == other.traffic
            && self.threads == other.threads
            && self.engine == other.engine
    }
}

impl Campaign {
    /// A campaign at the given scale on the paper's hallway channel.
    pub fn new(scale: Scale) -> Self {
        let channel = ChannelConfig::paper_hallway();
        Campaign {
            seed: 0x5EED,
            packets: scale.packets(),
            channel,
            traffic: TrafficModel::Periodic,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            engine: EngineMode::Golden,
            analytic: Arc::new(AnalyticTable::new(channel)),
        }
    }

    /// Returns the campaign with a different simulation engine.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the campaign with a different channel (builder-style),
    /// re-keying the analytic memo to it.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self.analytic = Arc::new(AnalyticTable::new(channel));
        self
    }

    /// Returns the campaign with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the campaign with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// State shared by every configuration of one campaign run, computed
    /// once instead of per configuration: the base RNG factory (seed
    /// derivation starts from it) and the memoized link-budget table.
    fn shared(&self) -> SharedRun {
        SharedRun {
            base: RngFactory::new(self.seed),
            budgets: Arc::new(LinkBudgetTable::new(self.channel)),
        }
    }

    /// Simulation options for the configuration at `index`, deriving its
    /// seed from the run's `base` factory (hoisted out of the
    /// per-configuration path — see [`Campaign::shared`]).
    fn options_with(&self, base: RngFactory, index: u64) -> SimOptions {
        SimOptions {
            packets: self.packets,
            seed: base.derive(index).seed(),
            channel: self.channel,
            traffic: self.traffic,
            record_packets: false,
            horizon: None,
            trajectory: wsn_params::motion::Trajectory::Stationary,
        }
    }

    /// Simulates one configuration (with the seed it would get inside a
    /// grid run at `index`).
    ///
    /// Fast-engine runs ignore `index`: their streams derive from
    /// `(config, seed)` alone (see [`wsn_link_sim::fast::fast_seed`]), so a
    /// configuration's fast result is the same at any grid position.
    pub fn run_one(&self, config: StackConfig, index: u64) -> ConfigResult {
        self.run_one_shared(config, index, &self.shared())
    }

    /// The worker body: one configuration, using the run-shared state.
    fn run_one_shared(&self, config: StackConfig, index: u64, shared: &SharedRun) -> ConfigResult {
        match self.engine {
            EngineMode::Golden => {
                let outcome = LinkSimulation::new(config, self.options_with(shared.base, index))
                    .with_budget_table(Arc::clone(&shared.budgets))
                    .run();
                ConfigResult {
                    config,
                    metrics: outcome.metrics().clone(),
                }
            }
            EngineMode::Fast => self.run_one_fast(config, &shared.budgets),
            EngineMode::Analytic => self.run_one_analytic(config, &shared.budgets),
        }
    }

    /// One configuration on the fast engine. The options carry the
    /// campaign seed verbatim; per-configuration stream derivation happens
    /// inside the fast engine via `fast_seed(config, seed)`.
    fn run_one_fast(&self, config: StackConfig, budgets: &Arc<LinkBudgetTable>) -> ConfigResult {
        let options = SimOptions {
            packets: self.packets,
            seed: self.seed,
            channel: self.channel,
            traffic: self.traffic,
            record_packets: false,
            horizon: None,
            trajectory: wsn_params::motion::Trajectory::Stationary,
        };
        let outcome = FastLinkSimulation::new(config, options)
            .with_budget_table(Arc::clone(budgets))
            .run();
        ConfigResult {
            config,
            metrics: outcome.into_metrics(),
        }
    }

    /// One configuration on the closed-form analytic engine. The seed is
    /// carried but ignored (the evaluator is deterministic); repeated
    /// evaluations hit the campaign's shared [`AnalyticTable`] memo.
    ///
    /// The constructor and [`with_channel`](Self::with_channel) keep the
    /// memo keyed to the campaign channel, so the normal path goes
    /// straight to the table — a warm config costs one hash, one
    /// shared-lock read and one clone, with the link budget resolved only
    /// on a miss. The equality check guards direct field mutation of the
    /// `pub channel` (which bypasses the re-keying builder).
    fn run_one_analytic(
        &self,
        config: StackConfig,
        budgets: &Arc<LinkBudgetTable>,
    ) -> ConfigResult {
        let options = SimOptions {
            packets: self.packets,
            seed: self.seed,
            channel: self.channel,
            traffic: self.traffic,
            record_packets: false,
            horizon: None,
            trajectory: wsn_params::motion::Trajectory::Stationary,
        };
        let metrics = if *self.analytic.config() == self.channel {
            self.analytic
                .lookup_or_eval(&config, &options, || {
                    budgets.budget(config.power, config.distance)
                })
                .0
        } else {
            AnalyticLinkSimulation::new(config, options)
                .with_budget_table(Arc::clone(budgets))
                .run()
                .into_metrics()
        };
        ConfigResult { config, metrics }
    }

    /// Simulates every configuration in `configs`, preserving order.
    ///
    /// Compatibility wrapper: streams through a [`CollectSink`], so the
    /// whole result vector is held in memory. Prefer
    /// [`run_streamed`](Self::run_streamed) when results can be consumed
    /// incrementally.
    pub fn run_configs(&self, configs: &[StackConfig]) -> Vec<ConfigResult> {
        let mut sink = CollectSink::new();
        self.run_streamed(configs, &mut sink);
        sink.into_results()
    }

    /// Simulates every configuration in `configs`, delivering each result
    /// to `sink` in configuration order as soon as it (and all its
    /// predecessors) finish. Returns delivery statistics.
    ///
    /// Work distribution is an atomic claim index; in-order delivery uses a
    /// reorder buffer bounded by `2 × threads` entries — workers that race
    /// too far ahead of the slowest in-flight configuration wait, so peak
    /// memory is O(threads), independent of `configs.len()`.
    pub fn run_streamed<S: CampaignSink + Send>(
        &self,
        configs: &[StackConfig],
        sink: &mut S,
    ) -> StreamStats {
        self.run_span(configs, 0, sink)
    }

    /// Like [`run_streamed`](Self::run_streamed), but configuration `i` of
    /// the slice is treated as global index `base + i` for seed derivation
    /// and sink delivery. This is what shard runners use so a shard's
    /// results are bit-identical to the same span of a whole-grid run.
    pub fn run_span<S: CampaignSink + Send>(
        &self,
        configs: &[StackConfig],
        base: usize,
        sink: &mut S,
    ) -> StreamStats {
        let total = configs.len();
        let threads = self.threads.min(total).max(1);
        let shared = self.shared();

        if threads <= 1 || total < 4 {
            for (i, &config) in configs.iter().enumerate() {
                let result = self.run_one_shared(config, (base + i) as u64, &shared);
                sink.on_result(base + i, &result);
            }
            sink.on_complete(total);
            return StreamStats {
                delivered: total,
                max_pending: if total == 0 { 0 } else { 1 },
            };
        }

        // Populate the budget memo serially, before any worker exists:
        // each worker then gets its own fully-warm copy of the table and
        // never touches a shared lock mid-run. (The shared-`Mutex` table
        // was the cause of the campaign's *negative* thread scaling — at
        // sub-5 µs per fast config, even an uncontended lock per run
        // showed up; contended, it inverted the scaling curve.)
        shared
            .budgets
            .prewarm(configs.iter().map(|c| (c.power, c.distance)));

        if self.engine != EngineMode::Golden {
            return self.run_span_batch_parallel(configs, base, sink, threads, &shared);
        }

        // Workers that finish ahead of the in-order frontier may run at
        // most `window` configs past it before waiting, which bounds the
        // reorder buffer.
        let window = threads * 2;
        let next_claim = AtomicUsize::new(0);
        let delivery = Mutex::new(Delivery {
            next_deliver: 0,
            pending: BTreeMap::new(),
            max_pending: 0,
        });
        let frontier_moved = Condvar::new();
        // The sink itself stays outside worker reach between deliveries;
        // it is only touched under the delivery lock.
        let sink = Mutex::new(sink);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Per-worker copy of the run-shared state: same seed
                    // derivation, private (pre-warmed) budget table.
                    let local = SharedRun {
                        base: shared.base,
                        budgets: Arc::new(shared.budgets.clone_table()),
                    };
                    loop {
                        let i = next_claim.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return;
                        }
                        // Throttle: don't run more than `window` ahead of
                        // the delivery frontier.
                        {
                            let guard = delivery.lock().expect("delivery lock");
                            let _unused = frontier_moved
                                .wait_while(guard, |d| i >= d.next_deliver + window)
                                .expect("delivery lock");
                        }
                        let result = self.run_one_shared(configs[i], (base + i) as u64, &local);
                        let mut d = delivery.lock().expect("delivery lock");
                        d.pending.insert(i, result);
                        d.max_pending = d.max_pending.max(d.pending.len());
                        if d.pending.contains_key(&d.next_deliver) {
                            let mut out = sink.lock().expect("sink lock");
                            loop {
                                let due = d.next_deliver;
                                let Some(r) = d.pending.remove(&due) else {
                                    break;
                                };
                                out.on_result(base + due, &r);
                                d.next_deliver += 1;
                            }
                            drop(out);
                            drop(d);
                            frontier_moved.notify_all();
                        }
                    }
                });
            }
        });

        let d = delivery.into_inner().expect("threads joined");
        debug_assert_eq!(d.next_deliver, total, "every result was delivered");
        debug_assert!(d.pending.is_empty());
        let out = sink.into_inner().expect("threads joined");
        out.on_complete(total);
        StreamStats {
            delivered: total,
            max_pending: d.max_pending,
        }
    }

    /// The parallel span runner for the cheap engines (fast and
    /// analytic): a chunk-claiming [`BatchExecutor`] with one pre-warmed
    /// budget-table copy per worker, no condition variables and no mid-run
    /// locking. Results are collected and delivered to `sink` in order
    /// afterwards — at a few µs per config the reorder machinery of the
    /// golden path would cost more than the simulations, and holding
    /// `O(total)` summaries (a few hundred bytes each) is cheap. (The
    /// analytic workers do share the campaign's memo table; its `RwLock`
    /// is read-mostly and uncontended after first sight of a config.)
    fn run_span_batch_parallel<S: CampaignSink + Send>(
        &self,
        configs: &[StackConfig],
        base: usize,
        sink: &mut S,
        threads: usize,
        shared: &SharedRun,
    ) -> StreamStats {
        let total = configs.len();
        let exec = BatchExecutor::new(threads);
        let results = exec.map_init(
            configs,
            || Arc::new(shared.budgets.clone_table()),
            |budgets, _i, config| match self.engine {
                EngineMode::Fast => self.run_one_fast(*config, budgets),
                EngineMode::Analytic => self.run_one_analytic(*config, budgets),
                EngineMode::Golden => unreachable!("golden uses the reorder-window path"),
            },
        );
        for (i, result) in results.iter().enumerate() {
            sink.on_result(base + i, result);
        }
        sink.on_complete(total);
        StreamStats {
            delivered: total,
            max_pending: total,
        }
    }

    /// Simulates every configuration of a grid.
    pub fn run_grid(&self, grid: &ParamGrid) -> Vec<ConfigResult> {
        let configs: Vec<StackConfig> = grid.iter().collect();
        self.run_configs(&configs)
    }
}

/// Run-wide shared state: every configuration derives its seed from the
/// same base factory and draws link budgets from the same memo table.
struct SharedRun {
    base: RngFactory,
    budgets: Arc<LinkBudgetTable>,
}

/// In-order delivery state shared by workers.
struct Delivery {
    /// Next index due for the sink (the in-order frontier).
    next_deliver: usize,
    /// Finished results waiting for their predecessors.
    pending: BTreeMap<usize, ConfigResult>,
    /// High-water mark of `pending`, reported via [`StreamStats`].
    max_pending: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ParamGrid {
        ParamGrid {
            distances_m: vec![20.0, 35.0],
            power_levels: vec![11, 31],
            max_tries: vec![1, 3],
            retry_delays_ms: vec![0],
            queue_caps: vec![30],
            packet_intervals_ms: vec![50],
            payloads: vec![50],
        }
    }

    #[test]
    fn grid_run_preserves_order_and_length() {
        let campaign = Campaign {
            packets: 60,
            threads: 4,
            ..Campaign::new(Scale::Quick)
        };
        let grid = tiny_grid();
        let results = campaign.run_grid(&grid);
        assert_eq!(results.len(), grid.len());
        for (r, expected) in results.iter().zip(grid.iter()) {
            assert_eq!(r.config, expected);
            assert!(r.metrics.conserves_packets());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let grid = tiny_grid();
        let serial = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .run_grid(&grid);
        let parallel = Campaign {
            packets: 60,
            threads: 8,
            ..Campaign::new(Scale::Quick)
        }
        .run_grid(&grid);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn streamed_delivery_is_in_order_and_bounded() {
        // A grid much larger than the claim-ahead window, so the bound is
        // actually exercised rather than trivially satisfied.
        let grid = ParamGrid {
            distances_m: vec![10.0, 20.0, 30.0, 35.0],
            power_levels: vec![3, 7, 11, 31],
            max_tries: vec![1, 3],
            retry_delays_ms: vec![0],
            queue_caps: vec![30],
            packet_intervals_ms: vec![50],
            payloads: vec![50],
        };
        let configs: Vec<StackConfig> = grid.iter().collect();
        let campaign = Campaign {
            packets: 30,
            threads: 4,
            ..Campaign::new(Scale::Bench)
        };
        let mut indices = Vec::new();
        let mut sink = crate::stream::SinkFn::new(|i: usize, _r: &ConfigResult| indices.push(i));
        let stats = campaign.run_streamed(&configs, &mut sink);
        assert_eq!(indices, (0..configs.len()).collect::<Vec<_>>());
        assert_eq!(stats.delivered, configs.len());
        // Peak reorder-buffer occupancy is O(threads), not O(grid).
        assert!(
            stats.max_pending <= campaign.threads * 2,
            "max_pending {} exceeds window {}",
            stats.max_pending,
            campaign.threads * 2
        );
    }

    #[test]
    fn per_config_seeds_differ_but_are_stable() {
        let campaign = Campaign {
            packets: 60,
            ..Campaign::new(Scale::Quick)
        };
        let base = RngFactory::new(campaign.seed);
        let a = campaign.options_with(base, 0).seed;
        let b = campaign.options_with(base, 1).seed;
        assert_ne!(a, b);
        assert_eq!(a, campaign.options_with(base, 0).seed);
    }

    #[test]
    fn scale_packet_counts() {
        assert_eq!(Scale::Quick.packets(), 400);
        assert_eq!(Scale::Full.packets(), 4500);
    }

    #[test]
    fn fast_parallel_equals_serial() {
        let grid = tiny_grid();
        let serial = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast)
        .run_grid(&grid);
        let parallel = Campaign {
            packets: 60,
            threads: 8,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast)
        .run_grid(&grid);
        assert_eq!(serial, parallel);
        for r in &serial {
            assert!(r.metrics.conserves_packets());
        }
    }

    #[test]
    fn fast_results_are_reproducible_and_index_independent() {
        let campaign = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast);
        let config = tiny_grid().iter().next().unwrap();
        // Grid position must not matter: fast streams derive from
        // (config, seed), not from the index.
        let at_0 = campaign.run_one(config, 0);
        let at_7 = campaign.run_one(config, 7);
        assert_eq!(at_0, at_7);
        // But the campaign seed must.
        let reseeded = campaign.clone().with_seed(99).run_one(config, 0);
        assert_ne!(at_0.metrics.goodput_bps, reseeded.metrics.goodput_bps);
    }

    #[test]
    fn analytic_parallel_equals_serial_and_is_seed_free() {
        let grid = tiny_grid();
        let serial = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Analytic)
        .run_grid(&grid);
        let parallel = Campaign {
            packets: 60,
            threads: 8,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Analytic)
        .run_grid(&grid);
        assert_eq!(serial, parallel);
        for r in &serial {
            assert!(r.metrics.conserves_packets());
            assert!(r.metrics.goodput_bps > 0.0);
        }
        // The closed form has no random draws: re-seeding the campaign
        // changes nothing (unlike golden/fast, where it must).
        let reseeded = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Analytic)
        .with_seed(99)
        .run_grid(&grid);
        assert_eq!(serial, reseeded);
    }

    #[test]
    fn analytic_memo_survives_repeat_runs_bit_identically() {
        let grid = tiny_grid();
        let campaign = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Analytic);
        let cold = campaign.run_grid(&grid);
        assert_eq!(campaign.analytic.len(), grid.len());
        // The second sweep is answered from the memo table — and must be
        // indistinguishable from recomputation.
        let warm = campaign.run_grid(&grid);
        assert_eq!(cold, warm);
        assert_eq!(campaign.analytic.len(), grid.len());
    }

    #[test]
    fn engines_disagree_bitwise_but_agree_on_packet_conservation() {
        let grid = tiny_grid();
        let golden = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .run_grid(&grid);
        let fast = Campaign {
            packets: 60,
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast)
        .run_grid(&grid);
        assert_eq!(golden.len(), fast.len());
        // Different engines, different draw orders: bitwise equality would
        // mean the fast path secretly ran the golden one.
        assert!(golden
            .iter()
            .zip(&fast)
            .any(|(g, f)| g.metrics.goodput_bps != f.metrics.goodput_bps));
        for (g, f) in golden.iter().zip(&fast) {
            assert_eq!(g.config, f.config);
            assert!(f.metrics.conserves_packets());
        }
    }
}
