//! Table III — the summary of the proposed empirical models.

use wsn_models::constants::PaperConstants;

use crate::campaign::Scale;
use crate::report::{Report, Table};

/// Runs the Table III reproduction (scale has no effect).
pub fn run(_scale: Scale) -> Report {
    let c = PaperConstants::published();
    let mut table = Table::new(vec!["model", "formula", "constants", "implemented in"]);
    table.push_row(vec![
        "Energy E (Eq. 2)".to_string(),
        "U_eng = Etx*(l0+lD)/(lD*(1-PER))".to_string(),
        "Etx from CC2420 datasheet; l0 = 19 B".to_string(),
        "wsn_models::energy::EnergyModel".to_string(),
    ]);
    table.push_row(vec![
        "PER (Eq. 3)".to_string(),
        "PER = a*lD*exp(b*SNR)".to_string(),
        format!("a = {}, b = {}", c.per.alpha, c.per.beta),
        "wsn_models::surface::ExpSurface".to_string(),
    ]);
    table.push_row(vec![
        "Max goodput G (Eq. 4)".to_string(),
        "G = lD/Tservice*(1-PLR_radio)".to_string(),
        "composed of Eqs. 5-8".to_string(),
        "wsn_models::goodput::GoodputModel".to_string(),
    ]);
    table.push_row(vec![
        "Service time D (Eqs. 5-6)".to_string(),
        "T = T_SPI + T_succ/fail + (N-1)*T_retry".to_string(),
        "T_TR=0.224ms, T_BO=5.28ms, T_ACK=1.96ms, T_waitACK=8.192ms".to_string(),
        "wsn_models::service_time::ServiceTimeModel".to_string(),
    ]);
    table.push_row(vec![
        "Mean tries (Eq. 7)".to_string(),
        "N = 1 + a*lD*exp(b*SNR)".to_string(),
        format!("a = {}, b = {}", c.ntries.alpha, c.ntries.beta),
        "wsn_models::service_time::ServiceTimeModel".to_string(),
    ]);
    table.push_row(vec![
        "Radio loss L (Eq. 8)".to_string(),
        "PLR = (a*lD*exp(b*SNR))^NmaxTries".to_string(),
        format!("a = {}, b = {}", c.plr_radio.alpha, c.plr_radio.beta),
        "wsn_models::loss::RadioLossModel".to_string(),
    ]);
    table.push_row(vec![
        "Utilization (Eq. 9)".to_string(),
        "rho = Tservice/Tpkt".to_string(),
        "-".to_string(),
        "wsn_models::service_time::ServiceTimeModel::utilization".to_string(),
    ]);

    let mut report = Report::new("table03", "Table III: summary of the empirical models");
    report.push("Models and constants", table, vec![]);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_seven_artifacts() {
        let report = run(Scale::Quick);
        assert_eq!(report.sections[0].table.rows.len(), 7);
    }

    #[test]
    fn constants_render_published_values() {
        let report = run(Scale::Quick);
        let text = report.render();
        assert!(text.contains("0.0128"));
        assert!(text.contains("-0.15"));
        assert!(text.contains("0.011"));
    }
}
