//! Ablation 2: the cost of assuming a constant noise floor.
//!
//! Fig. 5's point, taken further: if an adaptive protocol estimates SNR
//! with the constant −95 dBm assumption, how wrong do its PER predictions
//! get? We compare the Eq. 3 prediction fed with "assumed" SNR (constant
//! floor) against the loss actually produced by the mixture floor.

use rand::SeedableRng;

use wsn_models::surface::ExpSurface;
use wsn_params::types::{Distance, PayloadSize, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::shadowing::SigmaProfile;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Power levels probed (each maps to one assumed-SNR operating point).
pub const POWERS: [u8; 5] = [3, 7, 11, 15, 19];

/// Runs the constant-noise ablation.
pub fn run(scale: Scale) -> Report {
    let trials = match scale {
        Scale::Bench => 1_000usize,
        Scale::Quick => 8_000,
        Scale::Full => 60_000,
    };
    let payload = PayloadSize::new(110).expect("valid");
    let per_model = ExpSurface::new(0.0128, -0.15);
    let distance = Distance::from_meters(35.0).expect("valid");

    // Real channel: mixture noise; no fading so the noise effect isolates.
    let mut real_cfg = ChannelConfig::paper_hallway();
    real_cfg.sigma_profile = SigmaProfile::none();
    real_cfg.ack_loss = false;

    let mut table = Table::new(vec![
        "Ptx",
        "assumed_snr_db",
        "predicted_per",
        "actual_per",
        "underestimate_pct",
    ]);
    let mut worst_under = 0.0f64;
    for (i, &p) in POWERS.iter().enumerate() {
        let power = PowerLevel::new(p).expect("valid");
        let mut channel = Channel::new(real_cfg, power, distance);
        // "Assumed" SNR: RSSI minus the constant −95 dBm floor.
        let assumed_snr = channel.mean_rssi_dbm() - -95.0;
        let predicted = per_model.eval_prob(payload, assumed_snr);

        let mut fading = rand::rngs::StdRng::seed_from_u64(1 + i as u64);
        let mut noise = rand::rngs::StdRng::seed_from_u64(11 + i as u64);
        let mut delivery = rand::rngs::StdRng::seed_from_u64(21 + i as u64);
        let mut lost = 0usize;
        for _ in 0..trials {
            let obs = channel.observe(&mut fading, &mut noise);
            if !channel.data_success(&obs, payload, &mut delivery) {
                lost += 1;
            }
        }
        let actual = lost as f64 / trials as f64;
        let under = if actual > 0.0 {
            (actual - predicted) / actual * 100.0
        } else {
            0.0
        };
        worst_under = worst_under.max(under);
        table.push_row(vec![
            format!("{p}"),
            fnum(assumed_snr),
            fnum(predicted),
            fnum(actual),
            fnum(under),
        ]);
    }

    let mut report = Report::new(
        "ablation02",
        "Ablation: PER prediction error under the constant-noise assumption",
    );
    report.push(
        "Eq. 3 fed with constant-floor SNR vs actual loss under the mixture floor (lD = 110, 35 m)",
        table,
        vec![
            format!(
                "The interference tail makes the constant-floor predictor optimistic by up to {worst_under:.0}% of the actual loss."
            ),
            "This is why Sec. III-A insists on measuring the real noise distribution (Fig. 5).".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_floor_underestimates_loss() {
        let report = run(Scale::Quick);
        // On at least one mid-quality operating point the predictor must be
        // noticeably optimistic (actual > predicted).
        let optimistic = report.sections[0].table.rows.iter().any(|row| {
            let predicted: f64 = row[2].parse().unwrap();
            let actual: f64 = row[3].parse().unwrap();
            actual > predicted * 1.1 && actual > 0.01
        });
        assert!(optimistic, "constant-floor prediction was never optimistic");
    }

    #[test]
    fn per_still_falls_with_power() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let first: f64 = rows[0][3].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][3].parse().unwrap();
        assert!(first > last);
    }
}
