//! Replication statistics: run a configuration under independent seeds
//! and report means with normal-approximation confidence intervals.
//!
//! The paper reports single 4500-packet measurements per configuration;
//! for the synthetic campaign we can afford replication, which the tests
//! use to distinguish real effects from seed noise.

use serde::{Deserialize, Serialize};

use wsn_link_sim::metrics::LinkMetrics;
use wsn_params::config::StackConfig;

use crate::campaign::Campaign;

/// A mean with a symmetric 95 % confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricCi {
    /// Sample mean.
    pub mean: f64,
    /// 95 % half-width (`1.96 · s/√n`; 0 with fewer than 2 samples).
    pub half_width: f64,
    /// Number of replicates.
    pub n: usize,
}

impl MetricCi {
    /// Computes the CI of a sample.
    pub fn of(values: &[f64]) -> MetricCi {
        let n = values.len();
        if n == 0 {
            return MetricCi {
                mean: 0.0,
                half_width: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return MetricCi {
                mean,
                half_width: 0.0,
                n,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        MetricCi {
            mean,
            half_width: 1.96 * (var / n as f64).sqrt(),
            n,
        }
    }

    /// True if `other`'s CI does not overlap this one (a conservative
    /// "the difference is real" check).
    pub fn clearly_differs_from(&self, other: &MetricCi) -> bool {
        (self.mean - other.mean).abs() > self.half_width + other.half_width
    }

    /// The interval endpoints `(lo, hi)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }
}

impl std::fmt::Display for MetricCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Replicated measurements of one configuration.
#[derive(Debug, Clone)]
pub struct Replicates {
    /// The per-replicate metrics.
    pub runs: Vec<LinkMetrics>,
}

impl Replicates {
    /// Runs `n` independent replicates of `config` under the campaign's
    /// channel/traffic settings (seeds derived from the campaign seed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn collect(campaign: &Campaign, config: StackConfig, n: usize) -> Replicates {
        assert!(n > 0, "need at least one replicate");
        let runs = (0..n)
            .map(|i| {
                campaign
                    .clone()
                    .with_seed(campaign.seed.wrapping_add(0x9E37_79B9 * (i as u64 + 1)))
                    .run_one(config, i as u64)
                    .metrics
            })
            .collect();
        Replicates { runs }
    }

    /// CI of an arbitrary metric extractor.
    pub fn ci_of(&self, f: impl Fn(&LinkMetrics) -> f64) -> MetricCi {
        let values: Vec<f64> = self.runs.iter().map(f).filter(|v| v.is_finite()).collect();
        MetricCi::of(&values)
    }

    /// CI of the goodput, b/s.
    pub fn goodput_bps(&self) -> MetricCi {
        self.ci_of(|m| m.goodput_bps)
    }

    /// CI of the total loss rate.
    pub fn plr_total(&self) -> MetricCi {
        self.ci_of(|m| m.plr_total())
    }

    /// CI of the mean delay, ms.
    pub fn delay_ms(&self) -> MetricCi {
        self.ci_of(|m| m.delay_mean_ms)
    }

    /// CI of `U_eng`, µJ/bit.
    pub fn u_eng(&self) -> MetricCi {
        self.ci_of(|m| m.u_eng_uj_per_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Scale;

    #[test]
    fn ci_formulas() {
        let ci = MetricCi::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        // s = sqrt(2.5); hw = 1.96*sqrt(2.5/5) = 1.386…
        assert!((ci.half_width - 1.386).abs() < 0.01);
        assert_eq!(ci.n, 5);
        let (lo, hi) = ci.interval();
        assert!(lo < 3.0 && hi > 3.0);
    }

    #[test]
    fn ci_degenerate_inputs() {
        assert_eq!(MetricCi::of(&[]).n, 0);
        let single = MetricCi::of(&[7.0]);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.half_width, 0.0);
    }

    #[test]
    fn clearly_differs_requires_non_overlap() {
        let a = MetricCi {
            mean: 10.0,
            half_width: 1.0,
            n: 5,
        };
        let b = MetricCi {
            mean: 12.5,
            half_width: 1.0,
            n: 5,
        };
        let c = MetricCi {
            mean: 11.0,
            half_width: 1.0,
            n: 5,
        };
        assert!(a.clearly_differs_from(&b));
        assert!(!a.clearly_differs_from(&c));
    }

    #[test]
    fn replicates_distinguish_good_from_bad_links() {
        let campaign = Campaign {
            packets: 150,
            ..Campaign::new(Scale::Quick)
        };
        let good = StackConfig::builder()
            .distance_m(15.0)
            .power_level(31)
            .build()
            .unwrap();
        let bad = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .build()
            .unwrap();
        let r_good = Replicates::collect(&campaign, good, 5);
        let r_bad = Replicates::collect(&campaign, bad, 5);
        assert!(r_good.plr_total().clearly_differs_from(&r_bad.plr_total()));
        assert!(r_good.goodput_bps().mean > r_bad.goodput_bps().mean);
        assert_eq!(r_good.runs.len(), 5);
    }

    #[test]
    fn display_shows_mean_and_half_width() {
        let ci = MetricCi {
            mean: 1.5,
            half_width: 0.25,
            n: 3,
        };
        assert_eq!(ci.to_string(), "1.5000 ± 0.2500");
    }
}
