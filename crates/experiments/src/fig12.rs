//! Fig. 12 — validation of the radio loss rate model (Eq. 8).
//!
//! `PLR_radio = (α · lD · exp(β · SNR))^NmaxTries` with α = 0.011,
//! β = −0.145: simulated radio loss against the model for budgets 1, 3
//! and 8 on the 35 m link across the power sweep.

use wsn_models::loss::RadioLossModel;
use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize};

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// Retransmission budgets validated.
pub const BUDGETS: [u8; 3] = [1, 3, 8];

/// Runs the Fig. 12 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &n in &BUDGETS {
        for &p in &GRID_POWERS {
            configs.push(
                StackConfig::builder()
                    .distance_m(35.0)
                    .power_level(p)
                    .payload_bytes(110)
                    .max_tries(n)
                    .retry_delay_ms(0)
                    .queue_cap(30)
                    .packet_interval_ms(200)
                    .build()
                    .expect("grid values are valid"),
            );
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);
    let model = RadioLossModel::paper();
    let payload = PayloadSize::new(110).expect("valid");

    let mut headers = vec!["snr_db".to_string()];
    for &n in &BUDGETS {
        headers.push(format!("sim_plr_N{n}"));
        headers.push(format!("model_plr_N{n}"));
    }
    let mut table = Table::new(headers);
    for &p in &GRID_POWERS {
        let mut row: Vec<String> = Vec::new();
        let mut snr = 0.0;
        for &n in &BUDGETS {
            let r = results
                .iter()
                .find(|r| r.config.power.level() == p && r.config.max_tries.get() == n)
                .expect("config simulated");
            snr = r.metrics.mean_snr_db;
            if row.is_empty() {
                row.push(fnum(snr));
            }
            row.push(fnum(r.metrics.plr_radio));
            row.push(fnum(model.rate(
                snr,
                payload,
                MaxTries::new(n).expect("valid"),
            )));
        }
        let _ = snr;
        table.push_row(row);
    }
    table.rows.sort_by(|a, b| {
        a[0].parse::<f64>()
            .unwrap()
            .partial_cmp(&b[0].parse::<f64>().unwrap())
            .unwrap()
    });

    let mut report = Report::new("fig12", "Fig. 12: radio loss rate model validation (Eq. 8)");
    report.push(
        "Simulated vs modeled PLR_radio (lD = 110)",
        table,
        vec!["Each extra allowed transmission multiplies the loss exponent: N=8 is lossless outside the deep grey zone.".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_retries_less_radio_loss() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        // In the lowest-SNR row, sim loss must fall with the budget.
        let first = &rows[0];
        let n1: f64 = first[1].parse().unwrap();
        let n3: f64 = first[3].parse().unwrap();
        let n8: f64 = first[5].parse().unwrap();
        assert!(n1 >= n3 && n3 >= n8, "{n1} {n3} {n8}");
    }

    #[test]
    fn model_tracks_simulation_for_single_attempt() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let sim: f64 = row[1].parse().unwrap();
            let model: f64 = row[2].parse().unwrap();
            // Eq. 8's constants (0.011, −0.145) differ slightly from the
            // channel's Eq. 3 ground truth (0.0128, −0.15), and shadowing
            // convexity inflates the measured loss at the low-SNR end, so
            // the comparison is a shape check, not an identity.
            assert!(
                (sim - model).abs() < 0.25,
                "sim={sim} model={model} at snr={}",
                row[0]
            );
        }
    }
}
