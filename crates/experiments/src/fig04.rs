//! Fig. 4 — RSSI deviation per output power and distance.
//!
//! The paper's observations: (i) RSSI deviation shows **no consistent
//! correlation with output power**, (ii) the 35 m position shows elevated
//! deviation (human shadowing), and (iii) `Ptx = 3` at 35 m reports a very
//! *small* deviation because the signal has sunk to the CC2420 sensitivity
//! and the reported values are censored there.

use rand::SeedableRng;

use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::cc2420::SENSITIVITY_DBM;
use wsn_radio::channel::{Channel, ChannelConfig};

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};
use crate::sweep::{std_of, GRID_DISTANCES, GRID_POWERS};

/// Deviation of the *reported* RSSI. A real CC2420 only logs RSSI for
/// frames it actually receives, so observations below the sensitivity are
/// discarded (truncation), which shrinks the measured deviation whenever
/// the operating point sinks towards −95 dBm.
fn reported_rssi_std(power: u8, distance_m: f64, samples: usize, seed: u64) -> f64 {
    let power = PowerLevel::new(power).expect("grid power");
    let distance = Distance::from_meters(distance_m).expect("grid distance");
    let mut channel = Channel::new(ChannelConfig::paper_hallway(), power, distance);
    let mut fading = rand::rngs::StdRng::seed_from_u64(seed);
    let mut noise = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
    let rssi: Vec<f64> = (0..samples)
        .map(|_| channel.observe(&mut fading, &mut noise).rssi_dbm)
        .filter(|&r| r >= SENSITIVITY_DBM)
        .collect();
    std_of(&rssi)
}

/// Runs the Fig. 4 reproduction.
pub fn run(scale: Scale) -> Report {
    let samples = match scale {
        Scale::Bench => 500usize,
        Scale::Quick => 2_000,
        Scale::Full => 20_000,
    };

    let mut headers = vec!["distance_m".to_string()];
    headers.extend(GRID_POWERS.iter().map(|p| format!("Ptx={p}")));
    let mut table = Table::new(headers);

    for (di, &d) in GRID_DISTANCES.iter().enumerate() {
        let mut row = vec![fnum(d)];
        for (pi, &p) in GRID_POWERS.iter().enumerate() {
            let seed = (di * 100 + pi) as u64;
            row.push(fnum(reported_rssi_std(p, d, samples, seed)));
        }
        table.push_row(row);
    }

    let mut report = Report::new("fig04", "Fig. 4: RSSI deviation per Ptx and distance");
    report.push(
        "Std of reported RSSI (dB), sensitivity-censored at -95 dBm",
        table,
        vec![
            "Deviation is roughly flat across power levels (no consistent correlation).".into(),
            "The 35 m row is elevated (human-shadowing sigma = 3.5 dB vs 1.8 dB elsewhere).".into(),
            "Exception: Ptx=3 at 35 m collapses — the signal sits at the CC2420 sensitivity, so reported values are censored.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(report: &Report, row: usize, col: usize) -> f64 {
        report.sections[0].table.rows[row][col].parse().unwrap()
    }

    #[test]
    fn deviation_elevated_at_35m_except_censored_min_power() {
        let report = run(Scale::Quick);
        // Row 5 = 35 m; column 1 = Ptx 3, column 8 = Ptx 31.
        let at_35_high_power = cell(&report, 5, 8);
        let at_20_high_power = cell(&report, 2, 8);
        assert!(
            at_35_high_power > at_20_high_power + 1.0,
            "35m {at_35_high_power} vs 20m {at_20_high_power}"
        );
    }

    #[test]
    fn min_power_at_35m_is_truncated_smaller() {
        // Paper: deviation collapses at Ptx=3/35 m because the RSSI sits at
        // the sensitivity. Our calibrated mean there is −91 dBm (≈4 dB above
        // −95), so only the lower fading tail is truncated: the deviation
        // shrinks measurably but not to near-zero.
        let report = run(Scale::Quick);
        let truncated = cell(&report, 5, 1); // Ptx 3 @ 35 m
        let full = cell(&report, 5, 8); // Ptx 31 @ 35 m
        assert!(truncated < full - 0.3, "truncated={truncated} full={full}");
    }

    #[test]
    fn no_power_trend_away_from_sensitivity() {
        let report = run(Scale::Quick);
        // At 10 m every level is far above sensitivity: the deviation
        // spread across power levels stays within ~0.5 dB.
        let row: Vec<f64> = (1..=8).map(|c| cell(&report, 0, c)).collect();
        let max = row.iter().cloned().fold(f64::MIN, f64::max);
        let min = row.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.5, "spread={}", max - min);
    }
}
