//! Fig. 5 — the SNR distribution under the real (sampled) noise floor
//! versus the constant −95 dBm assumption.
//!
//! The paper analysed ~24 million noise samples and shows that assuming a
//! constant floor shifts and narrows the SNR distribution. We reproduce the
//! comparison by histogramming the SNR of one operating point under both
//! noise models.

use rand::SeedableRng;

use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::noise::NoiseModel;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};
use crate::sweep::{mean_of, std_of};

fn snr_samples(channel_cfg: ChannelConfig, n: usize, seed: u64) -> Vec<f64> {
    let mut channel = Channel::new(
        channel_cfg,
        PowerLevel::new(19).expect("valid"),
        Distance::from_meters(30.0).expect("valid"),
    );
    let mut fading = rand::rngs::StdRng::seed_from_u64(seed);
    let mut noise = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
    (0..n)
        .map(|_| channel.observe(&mut fading, &mut noise).snr_db)
        .collect()
}

fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let idx = (((s - lo) / (hi - lo)) * bins as f64).floor();
        let idx = idx.clamp(0.0, bins as f64 - 1.0) as usize;
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples.len() as f64)
        .collect()
}

/// Runs the Fig. 5 reproduction.
pub fn run(scale: Scale) -> Report {
    let n = match scale {
        Scale::Bench => 10_000usize,
        Scale::Quick => 50_000,
        Scale::Full => 1_000_000,
    };

    let real = snr_samples(ChannelConfig::paper_hallway(), n, 7);
    let mut const_cfg = ChannelConfig::paper_hallway();
    const_cfg.noise = NoiseModel::constant_default();
    let constant = snr_samples(const_cfg, n, 7);

    let lo = 10.0;
    let hi = 30.0;
    let bins = 20;
    let h_real = histogram(&real, lo, hi, bins);
    let h_const = histogram(&constant, lo, hi, bins);

    let mut table = Table::new(vec!["snr_bin_db", "real_noise_frac", "const_noise_frac"]);
    for b in 0..bins {
        let left = lo + (hi - lo) * b as f64 / bins as f64;
        table.push_row(vec![
            format!("{:.0}-{:.0}", left, left + 1.0),
            fnum(h_real[b]),
            fnum(h_const[b]),
        ]);
    }

    let mut summary = Table::new(vec!["noise model", "mean_snr_db", "snr_std_db"]);
    summary.push_row(vec![
        "sampled (mixture)".to_string(),
        fnum(mean_of(real.iter().copied())),
        fnum(std_of(&real)),
    ]);
    summary.push_row(vec![
        "constant -95 dBm".to_string(),
        fnum(mean_of(constant.iter().copied())),
        fnum(std_of(&constant)),
    ]);

    let mut report = Report::new(
        "fig05",
        "Fig. 5: real SNR distribution vs the constant-noise assumption",
    );
    report.push(
        "SNR histogram (Ptx = 19 at 30 m)",
        table,
        vec![
            "The interference tail of the real floor widens and left-shifts the SNR distribution."
                .into(),
        ],
    );
    report.push("Distribution summary", summary, vec![]);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_noise_widens_the_snr_distribution() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let real_std: f64 = rows[0][2].parse().unwrap();
        let const_std: f64 = rows[1][2].parse().unwrap();
        assert!(real_std > const_std, "{real_std} !> {const_std}");
    }

    #[test]
    fn means_are_near_the_budget_snr() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let real_mean: f64 = rows[0][1].parse().unwrap();
        // Ptx 19 (−5 dBm) at 30 m: PL = 32.2 + 21.9·log10(30) = 64.5;
        // SNR ≈ −5 − 64.5 + 95 = 25.5 dB.
        assert!((real_mean - 25.5).abs() < 1.0, "mean={real_mean}");
    }

    #[test]
    fn histogram_fractions_sum_to_about_one() {
        let report = run(Scale::Quick);
        let total: f64 = report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .sum();
        // Cells are rendered with 4 decimals, so allow rounding slack.
        assert!((total - 1.0).abs() < 0.01, "total={total}");
    }
}
