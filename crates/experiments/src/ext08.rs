//! Extension 8: node mobility.
//!
//! Sec. VIII-D's final deferred factor: "the mobility of a node also
//! [has] a possibly large impact on the performance". A sender walks down
//! the hallway away from the receiver while streaming; the windowed PRR
//! time series shows the link sliding through the Fig. 6(d) zones, and a
//! patrol trajectory shows the periodic quality swings that static tuning
//! cannot follow.

use wsn_link_sim::analysis::DeliverySequence;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_params::config::StackConfig;
use wsn_params::motion::Trajectory;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

fn config() -> StackConfig {
    StackConfig::builder()
        .distance_m(5.0) // starting point; the trajectory overrides motion
        .power_level(3)
        .payload_bytes(110)
        .max_tries(1) // raw channel view for the PRR series
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

fn windowed_prr(trajectory: Trajectory, packets: u64, seed: u64, windows: usize) -> Vec<f64> {
    let outcome = LinkSimulation::new(
        config(),
        SimOptions::quick(packets)
            .with_seed(seed)
            .with_trajectory(trajectory),
    )
    .run();
    let records = outcome.records.as_ref().expect("records requested");
    let sequence = DeliverySequence::from_records(records);
    let window = (sequence.len() / windows).max(1);
    sequence.windowed_prr(window)
}

/// Runs the mobility extension experiment.
pub fn run(scale: Scale) -> Report {
    let packets = (scale.packets() * 2).max(400);
    let windows = 10;

    // Walk 5 m → 60 m: the link must traverse all three zones and die.
    let walk_duration = packets as f64 * 0.05; // matches Tpkt = 50 ms
    let walk = Trajectory::Linear {
        start_m: 5.0,
        end_m: 60.0,
        duration_s: walk_duration,
    };
    let walk_prr = windowed_prr(walk, packets, 11, windows);

    // Patrol 10 m ↔ 35 m: periodic quality swings.
    let patrol = Trajectory::Patrol {
        near_m: 10.0,
        far_m: 35.0,
        leg_s: walk_duration / 4.0,
    };
    let patrol_prr = windowed_prr(patrol, packets, 13, windows);

    // Stationary control at the starting distance.
    let still_prr = windowed_prr(Trajectory::Stationary, packets, 17, windows);

    let mut table = Table::new(vec![
        "window",
        "stationary_prr",
        "walk_away_prr",
        "patrol_prr",
    ]);
    for w in 0..windows {
        table.push_row(vec![
            format!("{w}"),
            still_prr.get(w).copied().map_or("-".into(), fnum),
            walk_prr.get(w).copied().map_or("-".into(), fnum),
            patrol_prr.get(w).copied().map_or("-".into(), fnum),
        ]);
    }

    let mut report = Report::new("ext08", "Extension: node mobility (Sec. VIII-D)");
    report.push(
        "Windowed PRR over time (Ptx = 3, lD = 110, single transmission)",
        table,
        vec![
            "Walking away drags the link from lossless through the grey zone to outage within one trace.".into(),
            "The patrol trajectory produces periodic PRR swings — the regime where the ext03 adaptive tuner pays off.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_away_degrades_prr_monotonically_ish() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let first: f64 = rows[0][2].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(first > 0.9, "start PRR {first}");
        assert!(last < 0.3, "end PRR {last}");
    }

    #[test]
    fn stationary_control_stays_healthy() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let prr: f64 = row[1].parse().unwrap();
            assert!(prr > 0.85, "stationary PRR {prr}");
        }
    }

    #[test]
    fn patrol_prr_swings_with_position() {
        let report = run(Scale::Quick);
        let prrs: Vec<f64> = report.sections[0]
            .table
            .rows
            .iter()
            .map(|r| r[3].parse().unwrap())
            .collect();
        let max = prrs.iter().cloned().fold(f64::MIN, f64::max);
        let min = prrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.1, "patrol PRR flat: {prrs:?}");
    }
}
