//! Ablation 1: why is the measured PER transition *smooth*?
//!
//! Sec. III-B of the paper notes with surprise that the grey-zone→low-loss
//! transition is smoother than the "sharp cliff" reported by earlier
//! studies. This ablation demonstrates the mechanism with the
//! first-principles O-QPSK DSSS backend: with **no fading**, the physics
//! produces the textbook cliff; adding the measured shadowing variance
//! (σ = 1.8 / 3.5 dB) smears the aggregate PER into exactly the gradual
//! slope the paper measured — larger payloads smearing the most.

use rand::SeedableRng;

use wsn_params::types::{Distance, PayloadSize, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::noise::NoiseModel;
use wsn_radio::per::{DsssPer, PerBackend};
use wsn_radio::shadowing::SigmaProfile;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Mean SNR sweep for the cliff measurement, dB.
fn snr_points() -> Vec<f64> {
    (0..=16).map(|i| i as f64 * 0.75).collect()
}

/// Measures aggregate PER at a target mean SNR for a fading profile by
/// Monte-Carlo over channel observations.
fn aggregate_per(
    mean_snr: f64,
    sigma_db: f64,
    payload: PayloadSize,
    trials: usize,
    seed: u64,
) -> f64 {
    // Build a channel whose mean SNR is exactly `mean_snr`: constant noise
    // at −95 dBm and a distance solved from the path-loss model.
    let mut cfg = ChannelConfig::paper_hallway();
    cfg.per_backend = PerBackend::Dsss(DsssPer);
    cfg.noise = NoiseModel::constant_default();
    cfg.sigma_profile = SigmaProfile {
        base_db: sigma_db,
        shadowed_db: sigma_db,
        shadowed_from_m: 0.0,
    };
    // Reduce temporal correlation so the Monte-Carlo averages quickly.
    cfg.fading_correlation = 0.0;
    let target_loss = -(-95.0 + mean_snr); // Ptx = 0 dBm
    let d =
        10f64.powf((target_loss - cfg.pathloss.reference_loss_db) / (10.0 * cfg.pathloss.exponent));
    let mut channel = Channel::new(
        cfg,
        PowerLevel::MAX,
        Distance::from_meters(d.max(0.1)).expect("positive"),
    );
    let mut fading = rand::rngs::StdRng::seed_from_u64(seed);
    let mut noise = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut delivery = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCAFE);
    let mut lost = 0usize;
    for _ in 0..trials {
        let obs = channel.observe(&mut fading, &mut noise);
        if !channel.data_success(&obs, payload, &mut delivery) {
            lost += 1;
        }
    }
    lost as f64 / trials as f64
}

/// Runs the cliff-smoothing ablation.
pub fn run(scale: Scale) -> Report {
    let trials = match scale {
        Scale::Bench => 800,
        Scale::Quick => 4_000,
        Scale::Full => 40_000,
    };
    let payload = PayloadSize::new(110).expect("valid");
    let small = PayloadSize::new(5).expect("valid");

    let mut table = Table::new(vec![
        "mean_snr_db",
        "per_no_fading",
        "per_sigma1.8",
        "per_sigma3.5",
        "per_sigma3.5_lD5",
    ]);
    for (i, &snr) in snr_points().iter().enumerate() {
        table.push_row(vec![
            fnum(snr),
            fnum(aggregate_per(snr, 0.0, payload, trials, 100 + i as u64)),
            fnum(aggregate_per(snr, 1.8, payload, trials, 200 + i as u64)),
            fnum(aggregate_per(snr, 3.5, payload, trials, 300 + i as u64)),
            fnum(aggregate_per(snr, 3.5, small, trials, 400 + i as u64)),
        ]);
    }

    let mut report = Report::new(
        "ablation01",
        "Ablation: DSSS cliff vs fading-smoothed PER (explains Sec. III-B)",
    );
    report.push(
        "Aggregate PER vs mean SNR under the physics (DSSS) backend",
        table,
        vec![
            "Without fading the physics shows the textbook sharp cliff (~2 dB wide).".into(),
            "The measured shadowing variance smears the aggregate transition over >10 dB — the paper's 'smoother than expected' observation.".into(),
        ],
    );
    report
}

/// Width of the 0.9→0.1 PER transition in dB, estimated from a column of
/// the report (exposed for tests).
pub fn transition_width(report: &Report, column: usize) -> f64 {
    let rows = &report.sections[0].table.rows;
    let snr_at = |threshold: f64| -> f64 {
        for row in rows {
            let snr: f64 = row[0].parse().unwrap_or(f64::NAN);
            let per: f64 = row[column].parse().unwrap_or(f64::NAN);
            if per <= threshold {
                return snr;
            }
        }
        rows.last().unwrap()[0].parse().unwrap_or(f64::NAN)
    };
    snr_at(0.1) - snr_at(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fading_widens_the_transition() {
        let report = run(Scale::Quick);
        let cliff = transition_width(&report, 1);
        let smeared = transition_width(&report, 3);
        assert!(
            smeared > cliff + 2.0,
            "cliff width {cliff} dB vs smeared {smeared} dB"
        );
    }

    #[test]
    fn no_fading_cliff_is_sharp() {
        let report = run(Scale::Quick);
        let cliff = transition_width(&report, 1);
        assert!(cliff <= 3.0, "cliff width {cliff} dB");
    }

    #[test]
    fn small_payload_transitions_earlier() {
        // At equal mean SNR in the transition region, the 5-byte column
        // must show less loss than the 110-byte column.
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        let mid = &rows[rows.len() / 2];
        let large: f64 = mid[3].parse().unwrap();
        let small: f64 = mid[4].parse().unwrap();
        assert!(small <= large + 0.02, "small={small} large={large}");
    }
}
