//! Extension 11: golden vs. fast engine agreement.
//!
//! The fast engine (`--engine fast`, [`EngineMode::Fast`]) replaces the
//! golden event-driven replay with a coalesced per-packet sampler — same
//! stochastic process, different draw order — so its numbers can never be
//! compared to golden runs bit-for-bit. This experiment makes the actual
//! comparison contract visible: a stratified sample of the paper's grid
//! (strong/mid/grey-zone links, small/large payloads, tight/loose retry
//! budgets) simulated under both engines side by side, with the relative
//! deviation of every headline metric. The rigorous acceptance gate is the
//! tier-2 distributional suite (`tests/distributional.rs`); this table is
//! the human-readable view of the same equivalence.

use wsn_params::config::StackConfig;
use wsn_sim_engine::mode::EngineMode;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// The stratified comparison sample: corners and the centre of the paper's
/// Table I grid.
fn sample() -> Vec<StackConfig> {
    let mut configs = Vec::new();
    for (dist, power, payload, tries, interval) in [
        (10.0, 31u8, 50u16, 1u8, 50u32), // strong link, no retries
        (20.0, 11, 50, 3, 50),           // mid link, paper default budget
        (35.0, 3, 110, 8, 50),           // grey zone, heavy payload
        (35.0, 23, 50, 3, 20),           // shadowed distance, high offered load
        (30.0, 7, 110, 3, 100),          // weak-ish, slow arrivals
        (10.0, 31, 110, 3, 10),          // queue-pressure corner
    ] {
        configs.push(
            StackConfig::builder()
                .distance_m(dist)
                .power_level(power)
                .payload_bytes(payload)
                .max_tries(tries)
                .retry_delay_ms(0)
                .queue_cap(30)
                .packet_interval_ms(interval)
                .build()
                .expect("valid sample constants"),
        );
    }
    configs
}

fn relative(golden: f64, fast: f64) -> f64 {
    if golden.abs() < 1e-12 {
        (fast - golden).abs()
    } else {
        ((fast - golden) / golden).abs()
    }
}

/// Runs the golden-vs-fast comparison experiment.
pub fn run(scale: Scale) -> Report {
    let configs = sample();
    let golden = Campaign {
        threads: 1,
        ..Campaign::new(scale)
    }
    .run_configs(&configs);
    let fast = Campaign {
        threads: 1,
        ..Campaign::new(scale)
    }
    .with_engine(EngineMode::Fast)
    .run_configs(&configs);

    let mut table = Table::new(vec![
        "d_m",
        "ptx",
        "ld",
        "plr_g",
        "plr_f",
        "goodput_g",
        "goodput_f",
        "delay_ms_g",
        "delay_ms_f",
        "ueng_g",
        "ueng_f",
    ]);
    let mut worst_goodput = 0.0f64;
    let mut worst_plr = 0.0f64;
    for (g, f) in golden.iter().zip(&fast) {
        let (gm, fm) = (&g.metrics, &f.metrics);
        worst_goodput = worst_goodput.max(relative(gm.goodput_bps, fm.goodput_bps));
        worst_plr = worst_plr.max((gm.plr_total() - fm.plr_total()).abs());
        table.push_row(vec![
            format!("{}", g.config.distance.meters()),
            format!("{}", g.config.power.level()),
            format!("{}", g.config.payload.bytes()),
            fnum(gm.plr_total()),
            fnum(fm.plr_total()),
            fnum(gm.goodput_bps),
            fnum(fm.goodput_bps),
            fnum(gm.delay_mean_ms),
            fnum(fm.delay_mean_ms),
            fnum(gm.u_eng_uj_per_bit),
            fnum(fm.u_eng_uj_per_bit),
        ]);
    }

    let mut report = Report::new(
        "ext11",
        "Extension: golden vs. fast engine, stratified grid sample",
    );
    report.push(
        "Same (config, seed) under both engines — statistically equivalent, never bit-equal",
        table,
        vec![
            format!(
                "Worst relative goodput deviation across the sample: {:.3} \
                 (finite-sample noise at {} packets/config, not model drift).",
                worst_goodput,
                scale.packets()
            ),
            format!("Worst absolute PLR deviation across the sample: {worst_plr:.4}."),
            "The binding acceptance gate is the tier-2 distributional suite \
             (KS + CI-overlap, tests/distributional.rs); this table is its \
             human-readable companion."
                .into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_compares_every_sample_config() {
        let report = run(Scale::Bench);
        assert_eq!(report.sections[0].table.rows.len(), sample().len());
    }

    #[test]
    fn engines_agree_loosely_at_quick_scale() {
        // The rigorous bound lives in the distributional tier; this is a
        // coarse guard that the fast engine simulates the same physics
        // (identical seeds, 400 packets, per-config tolerance).
        let configs = sample();
        let golden = Campaign {
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .run_configs(&configs);
        let fast = Campaign {
            threads: 1,
            ..Campaign::new(Scale::Quick)
        }
        .with_engine(EngineMode::Fast)
        .run_configs(&configs);
        for (g, f) in golden.iter().zip(&fast) {
            assert!(f.metrics.conserves_packets());
            let dplr = (g.metrics.plr_total() - f.metrics.plr_total()).abs();
            assert!(dplr < 0.08, "PLR deviates by {dplr} on {:?}", g.config);
            let dgoodput = relative(g.metrics.goodput_bps, f.metrics.goodput_bps);
            assert!(
                dgoodput < 0.15,
                "goodput deviates by {dgoodput} on {:?}",
                g.config
            );
        }
    }
}
