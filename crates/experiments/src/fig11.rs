//! Fig. 11 — the average number of transmissions vs SNR and the Eq. 7 fit.
//!
//! The paper fits `N̄tries = 1 + α · lD · exp(β · SNR)` with α = 0.02,
//! β = −0.18 (95 % confidence). We measure mean tries from simulations
//! with a large retransmission budget and re-fit the surface.

use wsn_models::fit::{fit_exp_surface, SurfacePoint};
use wsn_models::service_time::ServiceTimeModel;
use wsn_params::config::StackConfig;
use wsn_params::types::PayloadSize;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::{GRID_DISTANCES, GRID_POWERS};

/// Payload sizes measured.
pub const PAYLOADS: [u16; 3] = [20, 65, 110];

/// Collects `(snr, lD, mean tries)` measurements.
pub fn measure(scale: Scale) -> Vec<(f64, u16, f64)> {
    let mut configs = Vec::new();
    for &d in &GRID_DISTANCES {
        for &p in &GRID_POWERS {
            for &l in &PAYLOADS {
                configs.push(
                    StackConfig::builder()
                        .distance_m(d)
                        .power_level(p)
                        .payload_bytes(l)
                        .max_tries(8)
                        .retry_delay_ms(0)
                        .queue_cap(30)
                        .packet_interval_ms(200)
                        .build()
                        .expect("grid values are valid"),
                );
            }
        }
    }
    Campaign::new(scale)
        .run_configs(&configs)
        .into_iter()
        .map(|r| {
            (
                r.metrics.mean_snr_db,
                r.config.payload.bytes(),
                r.metrics.mean_tries,
            )
        })
        .collect()
}

/// Runs the Fig. 11 reproduction.
pub fn run(scale: Scale) -> Report {
    let points = measure(scale);

    let mut table = Table::new(vec!["snr_db", "payload_B", "sim_mean_tries", "model_eq7"]);
    let model = ServiceTimeModel::paper();
    let mut rows: Vec<(f64, u16, f64)> = points.clone();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite snr"));
    for (snr, l, tries) in rows.iter().filter(|(s, ..)| *s >= 4.0) {
        let payload = PayloadSize::new(*l).expect("valid");
        table.push_row(vec![
            fnum(*snr),
            format!("{l}"),
            fnum(*tries),
            fnum(model.mean_tries(*snr, payload)),
        ]);
    }

    // Re-fit Eq. 7 on tries − 1 (only where retries were not truncated).
    let fit_points: Vec<SurfacePoint> = points
        .iter()
        .filter(|(snr, _, tries)| *snr >= 4.0 && *tries < 6.0)
        .map(|(snr, l, tries)| SurfacePoint {
            payload_bytes: *l as f64,
            snr_db: *snr,
            value: tries - 1.0,
        })
        .collect();
    let fit = fit_exp_surface(&fit_points).expect("enough points");

    let mut f = Table::new(vec!["constant", "paper", "refit"]);
    f.push_row(vec!["alpha".into(), "0.02".into(), fnum(fit.surface.alpha)]);
    f.push_row(vec!["beta".into(), "-0.18".into(), fnum(fit.surface.beta)]);

    let mut report = Report::new(
        "fig11",
        "Fig. 11: modeling the average number of transmissions",
    );
    report.push(
        "Mean transmissions vs SNR (NmaxTries = 8)",
        table,
        vec!["Tries decay exponentially with SNR and grow with payload.".into()],
    );
    report.push(
        "Eq. 7 re-fit",
        f,
        vec!["The exponential surface fits the simulated tries closely.".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tries_grow_with_payload_at_low_snr() {
        let points = measure(Scale::Quick);
        let mean_for = |l: u16| {
            let v: Vec<f64> = points
                .iter()
                .filter(|(s, pl, _)| *pl == l && (5.0..12.0).contains(s))
                .map(|(_, _, t)| *t)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(mean_for(110) > mean_for(20));
    }

    #[test]
    fn refit_lands_near_published_constants() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let alpha: f64 = rows[0][2].parse().unwrap();
        let beta: f64 = rows[1][2].parse().unwrap();
        // Ground truth for attempt failures is Eq. 3 (0.0128, −0.15) with
        // ACK losses on top; the paper's Eq. 7 (0.02, −0.18) sits in the
        // same neighbourhood.
        assert!(alpha > 0.004 && alpha < 0.05, "alpha={alpha}");
        assert!(beta > -0.3 && beta < -0.08, "beta={beta}");
    }
}
