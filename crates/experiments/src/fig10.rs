//! Fig. 10 — goodput vs SNR under four MAC configurations.
//!
//! The four configurations: (a) no queue & no retransmission, (b) no queue
//! with retransmission, (c) queue without retransmission, (d) queue with
//! retransmission. Each is driven by several workloads (`Tpkt`, `lD`), and
//! the SNR axis is swept by varying the output power on the 35 m link.

use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// The four MAC configurations of Figs. 10 and 16: `(label, Qmax, NmaxTries)`.
pub const MAC_CONFIGS: [(&str, u16, u8); 4] = [
    ("(a) Qmax=1, N=1", 1, 1),
    ("(b) Qmax=1, N=8", 1, 8),
    ("(c) Qmax=30, N=1", 30, 1),
    ("(d) Qmax=30, N=8", 30, 8),
];

/// Workloads: `(Tpkt ms, payload bytes)`.
pub const WORKLOADS: [(u32, u16); 4] = [(10, 110), (30, 110), (100, 110), (30, 20)];

fn build_configs() -> Vec<StackConfig> {
    let mut configs = Vec::new();
    for &(_, qmax, tries) in &MAC_CONFIGS {
        for &(tpkt, payload) in &WORKLOADS {
            for &p in &GRID_POWERS {
                configs.push(
                    StackConfig::builder()
                        .distance_m(35.0)
                        .power_level(p)
                        .payload_bytes(payload)
                        .max_tries(tries)
                        .retry_delay_ms(30)
                        .queue_cap(qmax)
                        .packet_interval_ms(tpkt)
                        .build()
                        .expect("grid values are valid"),
                );
            }
        }
    }
    configs
}

/// Runs the Fig. 10 reproduction.
pub fn run(scale: Scale) -> Report {
    let configs = build_configs();
    let results = Campaign::new(scale).run_configs(&configs);

    let mut report = Report::new("fig10", "Fig. 10: goodput under four MAC configurations");
    for &(label, qmax, tries) in &MAC_CONFIGS {
        let mut headers = vec!["Ptx".to_string(), "snr_db".to_string()];
        headers.extend(WORKLOADS.iter().map(|(t, l)| format!("kbps_T{t}_lD{l}")));
        let mut table = Table::new(headers);
        for &p in &GRID_POWERS {
            let mut row = vec![format!("{p}")];
            let mut snr = 0.0;
            for &(tpkt, payload) in &WORKLOADS {
                let r = results
                    .iter()
                    .find(|r| {
                        r.config.power.level() == p
                            && r.config.queue_cap.get() == qmax
                            && r.config.max_tries.get() == tries
                            && r.config.packet_interval.millis() == tpkt
                            && r.config.payload.bytes() == payload
                    })
                    .expect("config simulated");
                snr = r.metrics.mean_snr_db;
                if row.len() == 1 {
                    row.push(fnum(snr));
                }
                row.push(fnum(r.metrics.goodput_bps / 1e3));
            }
            let _ = snr;
            table.push_row(row);
        }
        table.rows.sort_by(|a, b| {
            a[1].parse::<f64>()
                .unwrap()
                .partial_cmp(&b[1].parse::<f64>().unwrap())
                .unwrap()
        });
        report.push(
            label,
            table,
            vec!["Goodput rises with SNR and saturates near 19 dB; smaller Tpkt = higher offered load = higher goodput.".into()],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_rises_with_snr_for_heaviest_load() {
        let report = run(Scale::Quick);
        // Config (d), workload Tpkt=10, lD=110 (column 2).
        let rows = &report.sections[3].table.rows;
        let first: f64 = rows[0][2].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(
            last > first,
            "goodput did not rise with SNR: {first}..{last}"
        );
    }

    #[test]
    fn smaller_interval_gives_higher_goodput_at_high_snr() {
        let report = run(Scale::Quick);
        let rows = &report.sections[3].table.rows;
        let last = &rows[rows.len() - 1];
        let t10: f64 = last[2].parse().unwrap();
        let t100: f64 = last[4].parse().unwrap();
        assert!(t10 > t100, "t10={t10} t100={t100}");
    }

    #[test]
    fn retransmission_helps_in_grey_zone_at_light_load() {
        let report = run(Scale::Quick);
        // Compare (c) N=1 vs (d) N=8 at the lowest power (grey zone) under
        // the light Tpkt=100 workload (column 4), where utilization stays
        // below 1 so retransmissions recover losses without queue overflow.
        let c: f64 = report.sections[2].table.rows[0][4].parse().unwrap();
        let d: f64 = report.sections[3].table.rows[0][4].parse().unwrap();
        assert!(d > c * 1.5, "retx did not help at light load: {d} vs {c}");
    }

    #[test]
    fn retransmission_backfires_in_grey_zone_under_heavy_load() {
        // The flip side the paper highlights in Sec. VII: at Tpkt=30 in the
        // deep grey zone, N=8 saturates the server and loses to N=1.
        let report = run(Scale::Quick);
        let c: f64 = report.sections[2].table.rows[0][3].parse().unwrap();
        let d: f64 = report.sections[3].table.rows[0][3].parse().unwrap();
        assert!(
            d < c,
            "expected retx to backfire under heavy load: {d} vs {c}"
        );
    }
}
