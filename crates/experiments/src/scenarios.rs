//! Named multi-link scenarios (`repro scenario <id>`): the curated
//! topologies the shared-channel network simulator ships with, plus a
//! small fan-out runner that simulates several scenarios across worker
//! threads the way [`Campaign`](crate::campaign::Campaign) fans out over
//! grid configurations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wsn_link_sim::network::{
    scenario_from_interference, NetOptions, NetworkOutcome, NetworkSimulation,
};
use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::interference::InterferenceModel;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The campaign seed, shared with [`Campaign`](crate::campaign::Campaign).
const SEED: u64 = 0x5EED;

fn link_config(power: u8, distance_m: f64, payload: u16) -> StackConfig {
    StackConfig::builder()
        .distance_m(distance_m)
        .power_level(power)
        .payload_bytes(payload)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

/// All builtin scenarios: `(id, description)` pairs.
pub fn all_scenarios() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "single",
            "one 35 m link — the N = 1 equivalence case (matches the single-link simulator bit-for-bit)",
        ),
        (
            "hidden-pair",
            "two senders 70 m apart, both receivers in the middle: CCA cannot see the rival, frames collide",
        ),
        (
            "exposed-pair",
            "the same two links side by side: senders carrier-sense each other and defer",
        ),
        (
            "parallel-4",
            "four 20 m links stacked 2 m apart — CCA-coupled contention without hidden terminals",
        ),
        (
            "interference",
            "a 20 m link plus a promoted in-network ZigBee interferer (10% duty) — the shared-channel form of the probabilistic model",
        ),
    ]
}

/// Builds a builtin scenario by id.
pub fn build_scenario(id: &str) -> Option<Scenario> {
    let contended = link_config(11, 35.0, 110);
    match id {
        "single" => Some(Scenario::single(contended)),
        "hidden-pair" => Some(Scenario::hidden_pair(contended)),
        "exposed-pair" => Some(Scenario::exposed_pair(contended)),
        "parallel-4" => {
            let c = link_config(31, 20.0, 50);
            Some(Scenario::parallel(&[c, c, c, c], 2.0))
        }
        "interference" => scenario_from_interference(
            link_config(31, 20.0, 110),
            &InterferenceModel::zigbee_neighbor(0.1),
            &ChannelConfig::paper_hallway(),
        ),
        _ => None,
    }
}

/// Simulates one builtin scenario at `scale` packets per link.
pub fn simulate(id: &str, scale: Scale) -> Option<NetworkOutcome> {
    let scenario = build_scenario(id)?;
    let options = NetOptions {
        seed: SEED,
        ..NetOptions::quick(scale.packets())
    };
    Some(NetworkSimulation::new(scenario, options).run())
}

/// Fans `ids` out over `threads` workers, one scenario per task, and
/// returns the outcomes in input order. Unknown ids yield `None`.
pub fn simulate_many(ids: &[&str], scale: Scale, threads: usize) -> Vec<Option<NetworkOutcome>> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<NetworkOutcome>>> = Mutex::new(vec![None; 0]);
    slots
        .lock()
        .expect("fresh mutex")
        .resize_with(ids.len(), || None);
    let workers = threads.clamp(1, ids.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                let outcome = simulate(ids[i], scale);
                slots.lock().expect("no poisoned workers")[i] = outcome;
            });
        }
    });
    slots.into_inner().expect("workers joined")
}

/// Runs one builtin scenario and renders it as a report.
///
/// # Errors
///
/// Returns the list of known scenario ids when `id` is unknown.
pub fn run_scenario(id: &str, scale: Scale) -> Result<Report, String> {
    let Some(outcome) = simulate(id, scale) else {
        let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "unknown scenario '{id}'; known: {}",
            known.join(", ")
        ));
    };
    let description = all_scenarios()
        .iter()
        .find(|(n, _)| *n == id)
        .map(|(_, d)| *d)
        .unwrap_or_default();

    let mut table = Table::new(vec![
        "link",
        "d_m",
        "Ptx",
        "generated",
        "delivered",
        "plr_radio",
        "goodput_bps",
        "frames_interfered",
        "capture_lost",
    ]);
    for (i, link) in outcome.links.iter().enumerate() {
        table.push_row(vec![
            format!("{i}"),
            fnum(link.config.distance.meters()),
            format!("{}", link.config.power.level()),
            format!("{}", link.metrics.generated),
            format!("{}", link.metrics.delivered),
            fnum(link.metrics.plr_radio),
            fnum(link.metrics.goodput_bps),
            format!("{}", link.frames_interfered),
            format!("{}", link.frames_capture_lost),
        ]);
    }

    let mut report = Report::new(
        &format!("scenario-{id}"),
        &format!("Multi-link scenario: {id}"),
    );
    report.push(
        &format!(
            "{} links, {} packets/link",
            outcome.links.len(),
            scale.packets()
        ),
        table,
        vec![
            description.to_string(),
            format!(
                "shared air: {} frames, {} overlapped, {} CCA busy deferrals",
                outcome.air.frames, outcome.air.overlapped_frames, outcome.air.cca_busy_hits
            ),
            format!(
                "network: plr_radio {:.4}, aggregate goodput {:.0} bit/s",
                outcome.plr_radio(),
                outcome.goodput_bps()
            ),
        ],
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_scenario_builds_and_runs() {
        for (id, _) in all_scenarios() {
            let outcome = simulate(id, Scale::Bench).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!outcome.links.is_empty(), "{id} has no links");
            assert!(outcome.air.frames > 0, "{id} put no frames on the air");
        }
    }

    #[test]
    fn unknown_scenario_lists_alternatives() {
        let err = run_scenario("nope", Scale::Bench).unwrap_err();
        assert!(err.contains("nope"));
        assert!(err.contains("hidden-pair"));
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let ids = ["hidden-pair", "single", "nope"];
        let outcomes = simulate_many(&ids, Scale::Bench, 4);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().unwrap().links.len(), 2);
        assert_eq!(outcomes[1].as_ref().unwrap().links.len(), 1);
        assert!(outcomes[2].is_none());
        // Deterministic regardless of worker interleaving.
        let again = simulate_many(&ids, Scale::Bench, 1);
        assert_eq!(
            outcomes[0].as_ref().unwrap().links[0].metrics,
            again[0].as_ref().unwrap().links[0].metrics
        );
    }

    #[test]
    fn scenario_report_renders() {
        let report = run_scenario("hidden-pair", Scale::Bench).unwrap();
        let text = report.render();
        assert!(text.contains("plr_radio"));
        assert!(text.contains("shared air"));
    }
}
