//! Named multi-link scenarios (`repro scenario <id>`): report rendering
//! and a small fan-out runner over the scenario catalog that ships with
//! the network simulator, fanning work across worker threads the way
//! [`Campaign`](crate::campaign::Campaign) fans out over grid
//! configurations.
//!
//! The catalog itself ([`all_scenarios`]/[`build_scenario`]) moved to
//! [`wsn_link_sim::catalog`] so non-harness consumers (the `wsn-serve`
//! query service, library users) can resolve scenario ids too; this module
//! re-exports it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wsn_link_sim::network::{NetOptions, NetworkOutcome, NetworkSimulation};

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

pub use wsn_link_sim::catalog::{all_scenarios, build_scenario};

/// The campaign seed, shared with [`Campaign`](crate::campaign::Campaign).
const SEED: u64 = 0x5EED;

/// Simulates one builtin scenario at `scale` packets per link.
pub fn simulate(id: &str, scale: Scale) -> Option<NetworkOutcome> {
    let scenario = build_scenario(id)?;
    let options = NetOptions {
        seed: SEED,
        ..NetOptions::quick(scale.packets())
    };
    Some(NetworkSimulation::new(scenario, options).run())
}

/// Fans `ids` out over `threads` workers, one scenario per task, and
/// returns the outcomes in input order. Unknown ids yield `None`.
pub fn simulate_many(ids: &[&str], scale: Scale, threads: usize) -> Vec<Option<NetworkOutcome>> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<NetworkOutcome>>> = Mutex::new(vec![None; 0]);
    slots
        .lock()
        .expect("fresh mutex")
        .resize_with(ids.len(), || None);
    let workers = threads.clamp(1, ids.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                let outcome = simulate(ids[i], scale);
                slots.lock().expect("no poisoned workers")[i] = outcome;
            });
        }
    });
    slots.into_inner().expect("workers joined")
}

/// Runs one builtin scenario and renders it as a report.
///
/// # Errors
///
/// Returns the list of known scenario ids when `id` is unknown.
pub fn run_scenario(id: &str, scale: Scale) -> Result<Report, String> {
    let Some(outcome) = simulate(id, scale) else {
        let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "unknown scenario '{id}'; known: {}",
            known.join(", ")
        ));
    };
    let description = all_scenarios()
        .iter()
        .find(|(n, _)| *n == id)
        .map(|(_, d)| *d)
        .unwrap_or_default();

    let mut table = Table::new(vec![
        "link",
        "d_m",
        "Ptx",
        "generated",
        "delivered",
        "plr_radio",
        "goodput_bps",
        "frames_interfered",
        "capture_lost",
    ]);
    for (i, link) in outcome.links.iter().enumerate() {
        table.push_row(vec![
            format!("{i}"),
            fnum(link.config.distance.meters()),
            format!("{}", link.config.power.level()),
            format!("{}", link.metrics.generated),
            format!("{}", link.metrics.delivered),
            fnum(link.metrics.plr_radio),
            fnum(link.metrics.goodput_bps),
            format!("{}", link.frames_interfered),
            format!("{}", link.frames_capture_lost),
        ]);
    }

    let mut report = Report::new(
        &format!("scenario-{id}"),
        &format!("Multi-link scenario: {id}"),
    );
    report.push(
        &format!(
            "{} links, {} packets/link",
            outcome.links.len(),
            scale.packets()
        ),
        table,
        vec![
            description.to_string(),
            format!(
                "shared air: {} frames, {} overlapped, {} CCA busy deferrals",
                outcome.air.frames, outcome.air.overlapped_frames, outcome.air.cca_busy_hits
            ),
            format!(
                "network: plr_radio {:.4}, aggregate goodput {:.0} bit/s",
                outcome.plr_radio(),
                outcome.goodput_bps()
            ),
        ],
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_scenario_builds_and_runs() {
        for (id, _) in all_scenarios() {
            let outcome = simulate(id, Scale::Bench).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!outcome.links.is_empty(), "{id} has no links");
            assert!(outcome.air.frames > 0, "{id} put no frames on the air");
        }
    }

    #[test]
    fn unknown_scenario_lists_alternatives() {
        let err = run_scenario("nope", Scale::Bench).unwrap_err();
        assert!(err.contains("nope"));
        assert!(err.contains("hidden-pair"));
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let ids = ["hidden-pair", "single", "nope"];
        let outcomes = simulate_many(&ids, Scale::Bench, 4);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().unwrap().links.len(), 2);
        assert_eq!(outcomes[1].as_ref().unwrap().links.len(), 1);
        assert!(outcomes[2].is_none());
        // Deterministic regardless of worker interleaving.
        let again = simulate_many(&ids, Scale::Bench, 1);
        assert_eq!(
            outcomes[0].as_ref().unwrap().links[0].metrics,
            again[0].as_ref().unwrap().links[0].metrics
        );
    }

    #[test]
    fn scenario_report_renders() {
        let report = run_scenario("hidden-pair", Scale::Bench).unwrap();
        let text = report.render();
        assert!(text.contains("plr_radio"));
        assert!(text.contains("shared air"));
    }
}
