//! Fig. 13 — maximum goodput vs payload size: the empirical model with a
//! saturating-traffic simulation check.
//!
//! The paper evaluates Eq. 4 across payload sizes for several SNR values,
//! with and without retransmissions, and reads off the goodput-optimal
//! payload. We reproduce both the model curves and a simulated
//! backlogged-sender validation at selected payloads.

use wsn_link_sim::traffic::TrafficModel;
use wsn_models::goodput::GoodputModel;
use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize, RetryDelay};

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// SNR operating points of the model curves, dB.
pub const SNRS: [f64; 4] = [6.0, 9.0, 12.0, 19.0];

/// Payload sizes for the simulation check.
const SIM_PAYLOADS: [u16; 4] = [20, 50, 80, 110];

/// Power levels whose 35 m mean SNR approximates each entry of [`SNRS`]
/// on the hallway budget (4.0, 14.0, 19.0, 22.0 dB ≈ nearest available).
const SIM_POWERS: [u8; 2] = [3, 11];

/// Runs the Fig. 13 reproduction.
pub fn run(scale: Scale) -> Report {
    let model = GoodputModel::paper();
    let mut report = Report::new("fig13", "Fig. 13: maxGoodput vs payload size (Eq. 4)");

    for &tries in &[1u8, 3] {
        let max_tries = MaxTries::new(tries).expect("valid");
        let mut headers = vec!["payload_B".to_string()];
        headers.extend(SNRS.iter().map(|s| format!("kbps_snr{s}")));
        let mut table = Table::new(headers);
        for bytes in (2..=114u16).step_by(8).chain(std::iter::once(114)) {
            let payload = PayloadSize::new(bytes).expect("valid");
            let mut row = vec![format!("{bytes}")];
            for &snr in &SNRS {
                row.push(fnum(
                    model.max_goodput_bps(snr, payload, max_tries, RetryDelay::ZERO) / 1e3,
                ));
            }
            table.push_row(row);
        }
        let mut optima = String::from("optimal lD: ");
        for &snr in &SNRS {
            let best = model.optimal_payload(snr, max_tries, RetryDelay::ZERO);
            optima.push_str(&format!("{}B@{snr}dB  ", best.bytes()));
        }
        report.push(
            &format!("Model curves, NmaxTries = {tries}"),
            table,
            vec![
                optima,
                "Outside the grey zone the maximum payload wins; inside it the optimum shrinks and grows with the retransmission budget.".into(),
            ],
        );
    }

    // Simulation check with a backlogged sender.
    let mut configs = Vec::new();
    for &p in &SIM_POWERS {
        for &l in &SIM_PAYLOADS {
            configs.push(
                StackConfig::builder()
                    .distance_m(35.0)
                    .power_level(p)
                    .payload_bytes(l)
                    .max_tries(3)
                    .retry_delay_ms(0)
                    .queue_cap(30)
                    .packet_interval_ms(10) // ignored by saturating traffic
                    .build()
                    .expect("grid values are valid"),
            );
        }
    }
    let results = Campaign::new(scale)
        .with_traffic(TrafficModel::Saturating)
        .run_configs(&configs);
    let mut sim = Table::new(vec!["Ptx", "snr_db", "payload_B", "sim_kbps", "model_kbps"]);
    for r in &results {
        let snr = r.metrics.mean_snr_db;
        let model_bps = model.max_goodput_bps(
            snr,
            r.config.payload,
            r.config.max_tries,
            r.config.retry_delay,
        );
        sim.push_row(vec![
            format!("{}", r.config.power.level()),
            fnum(snr),
            format!("{}", r.config.payload.bytes()),
            fnum(r.metrics.goodput_bps / 1e3),
            fnum(model_bps / 1e3),
        ]);
    }
    report.push(
        "Backlogged-sender simulation vs model (NmaxTries = 3)",
        sim,
        vec![
            "The saturating sender realises the model's maximum goodput within sampling noise."
                .into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_matches_model_within_25_percent() {
        let report = run(Scale::Quick);
        let rows = &report.sections[2].table.rows;
        for row in rows {
            let sim: f64 = row[3].parse().unwrap();
            let model: f64 = row[4].parse().unwrap();
            if model > 1.0 {
                let ratio = sim / model;
                assert!(
                    ratio > 0.7 && ratio < 1.35,
                    "sim={sim} model={model} (payload {})",
                    row[2]
                );
            }
        }
    }

    #[test]
    fn optimal_payload_is_114_outside_grey_zone() {
        let report = run(Scale::Quick);
        // NmaxTries = 3 section notes carry the optima string.
        let note = &report.sections[1].notes[0];
        assert!(note.contains("114B@19dB"), "note={note}");
    }

    #[test]
    fn goodput_larger_payload_wins_at_high_snr_in_sim() {
        let report = run(Scale::Quick);
        let rows = &report.sections[2].table.rows;
        // Ptx=11 rows (high SNR): payload 110 must beat payload 20.
        let g = |payload: &str| -> f64 {
            rows.iter()
                .find(|r| r[0] == "11" && r[2] == payload)
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(g("110") > g("20"));
    }
}
