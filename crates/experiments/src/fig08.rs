//! Fig. 8 — the impact of payload size on energy consumption at 35 m for a
//! grey-zone power (`Ptx = 3`) and a mid power (`Ptx = 7`).
//!
//! The paper's finding: in the grey zone, medium payloads minimise energy;
//! once the SNR clears the threshold, the largest payload is optimal.

use wsn_models::energy::EnergyModel;
use wsn_models::predict::LinkBudget;
use wsn_params::config::StackConfig;
use wsn_params::types::{Distance, PayloadSize, PowerLevel};

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_PAYLOADS;

/// The two power levels the figure contrasts.
pub const POWERS: [u8; 2] = [3, 7];

/// Runs the Fig. 8 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &p in &POWERS {
        for &l in &GRID_PAYLOADS {
            configs.push(
                StackConfig::builder()
                    .distance_m(35.0)
                    .power_level(p)
                    .payload_bytes(l)
                    .max_tries(3)
                    .retry_delay_ms(0)
                    .queue_cap(30)
                    .packet_interval_ms(200)
                    .build()
                    .expect("grid values are valid"),
            );
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);
    let model = EnergyModel::paper();
    let budget = LinkBudget::paper_hallway();
    let d35 = Distance::from_meters(35.0).expect("valid");

    let mut table = Table::new(vec![
        "payload_B",
        "sim_uJ_Ptx3",
        "model_uJ_Ptx3",
        "sim_uJ_Ptx7",
        "model_uJ_Ptx7",
    ]);
    for &l in &GRID_PAYLOADS {
        let payload = PayloadSize::new(l).expect("valid");
        let mut row = vec![format!("{l}")];
        for &p in &POWERS {
            let power = PowerLevel::new(p).expect("valid");
            let snr = budget.snr_db(power, d35);
            let sim = results
                .iter()
                .find(|r| r.config.power.level() == p && r.config.payload.bytes() == l)
                .expect("config simulated");
            row.push(fnum(sim.metrics.u_eng_uj_per_bit));
            row.push(fnum(model.u_eng_uj_per_bit(snr, payload, power)));
        }
        table.push_row(row);
    }

    let mut optima = Table::new(vec!["Ptx", "snr_db", "model_optimal_lD"]);
    for &p in &POWERS {
        let power = PowerLevel::new(p).expect("valid");
        let snr = budget.snr_db(power, d35);
        optima.push_row(vec![
            format!("{p}"),
            fnum(snr),
            format!("{}", model.optimal_payload(snr, power).bytes()),
        ]);
    }

    let mut report = Report::new("fig08", "Fig. 8: impact of payload size on energy at 35 m");
    report.push(
        "U_eng (uJ/bit) vs payload size",
        table,
        vec!["At Ptx=3 (grey zone) mid-size payloads win; at higher SNR the curve flattens towards the maximum size.".into()],
    );
    report.push(
        "Model-optimal payload per power",
        optima,
        vec!["The optimal payload grows with SNR (Sec. IV-B).".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grey_zone_optimum_is_interior() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let opt_p3: u16 = rows[0][2].parse().unwrap();
        assert!(opt_p3 < 114, "grey-zone optimal payload should be interior");
    }

    #[test]
    fn higher_power_shifts_optimum_up() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let opt_p3: u16 = rows[0][2].parse().unwrap();
        let opt_p7: u16 = rows[1][2].parse().unwrap();
        assert!(opt_p7 >= opt_p3, "{opt_p7} < {opt_p3}");
    }

    #[test]
    fn sim_tracks_model_within_factor_two() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let sim3: f64 = row[1].parse().unwrap_or(f64::INFINITY);
            let model3: f64 = row[2].parse().unwrap_or(f64::INFINITY);
            if sim3.is_finite() && model3.is_finite() && model3 > 0.0 {
                let ratio = sim3 / model3;
                assert!(ratio > 0.3 && ratio < 3.0, "ratio={ratio}");
            }
        }
    }
}
