//! Extension 13: dynamic topologies at scale.
//!
//! Two experiments ride the sparse timeline-driven network path:
//!
//! 1. **Density sweep with mobility** — 16 → 1024 links placed on a
//!    constant-density grid (25 m cells), each pair wandering under a
//!    random-waypoint timeline with the interference sets pruned at
//!    −85 dBm. The quantity under test is the *topology maintenance
//!    cost*: neighborhood edges touched per `Move`. On the sparse medium
//!    it tracks the (constant-density) neighborhood size instead of the
//!    link count — the property that lets a 1024-link scenario replay at
//!    all. Delivery statistics use a small fixed per-link budget; this
//!    sweep is about scaling, not sampling depth.
//! 2. **Failure storm** — a 64-link grid loses 20% of its links at
//!    t = 10 s and they rejoin at t = 18 s. Per-epoch snapshots give
//!    goodput and radio-loss before/during/after the storm and the
//!    recovery time: how long after the rejoin the per-epoch goodput
//!    climbs back to 90% of its pre-storm mean.

use wsn_link_sim::network::{NetOptions, NetworkOutcome, NetworkSimulation};
use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;
use wsn_params::timeline::{failure_storm, random_waypoint};
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::time::SimDuration;

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// The swept link counts.
const DENSITIES: [usize; 4] = [16, 64, 256, 1024];

/// Grid cell size, m: links sit on a √n × √n lattice of 25 m cells, so
/// the node density (and with it the −85 dBm neighborhood size) stays
/// constant as the sweep grows.
const CELL_M: f64 = 25.0;

/// Interference pruning floor for the sweep, dBm.
const PRUNE_DBM: f64 = -85.0;

/// Fixed per-link packet budget for the density sweep (the sweep measures
/// topology-maintenance scaling, not delivery statistics).
const DENSITY_PACKETS: u64 = 60;

/// Storm timing: 20% of links leave at `t = STORM_FAIL_S` and rejoin at
/// `t = STORM_RECOVER_S`; the run observes `STORM_HORIZON_S` seconds in
/// 1 s epochs.
const STORM_FAIL_S: f64 = 10.0;
const STORM_RECOVER_S: f64 = 18.0;
const STORM_HORIZON_S: f64 = 30.0;

fn config() -> StackConfig {
    StackConfig::builder()
        .distance_m(20.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

/// One density-sweep point: a constant-density grid under random-waypoint
/// mobility on the pruned (sparse) medium, fast engine.
fn simulate_density(links: usize) -> NetworkOutcome {
    let scenario = Scenario::grid(config(), links, CELL_M);
    let area_m = (links as f64).sqrt().ceil() * CELL_M;
    let mobility = random_waypoint(&scenario, area_m, 1.5, 1.0, 5.0, 0x0E13);
    let options = NetOptions {
        seed: 0x5EED,
        engine: EngineMode::Fast,
        ..NetOptions::quick(DENSITY_PACKETS)
    }
    .with_prune_floor_dbm(PRUNE_DBM);
    NetworkSimulation::new(scenario, options)
        .with_timeline(mobility)
        .run()
}

/// The failure-storm run: 64-link grid, golden engine, per-epoch
/// snapshots over the full horizon.
fn simulate_storm() -> NetworkOutcome {
    let links = 64;
    let scenario = Scenario::grid(config(), links, CELL_M);
    let storm = failure_storm(links, 0.20, STORM_FAIL_S, STORM_RECOVER_S, 0x13);
    // 700 packets × 50 ms spans the 30 s horizon with headroom.
    let options = NetOptions {
        seed: 0x5EED,
        horizon: Some(SimDuration::from_secs_f64(STORM_HORIZON_S)),
        epoch: Some(SimDuration::from_secs_f64(1.0)),
        ..NetOptions::quick(700)
    }
    .with_prune_floor_dbm(PRUNE_DBM);
    NetworkSimulation::new(scenario, options)
        .with_timeline(storm)
        .run()
}

/// Per-epoch deltas of `(generated, delivered, radio_lost)` summed over
/// all links.
fn epoch_deltas(outcome: &NetworkOutcome) -> Vec<(f64, u64, u64, u64)> {
    let mut prev = (0u64, 0u64, 0u64);
    outcome
        .epochs
        .iter()
        .map(|snap| {
            let now = snap.links.iter().fold((0, 0, 0), |acc, l| {
                (
                    acc.0 + l.generated,
                    acc.1 + l.delivered,
                    acc.2 + l.radio_lost,
                )
            });
            let delta = (now.0 - prev.0, now.1 - prev.1, now.2 - prev.2);
            prev = now;
            (snap.t_s, delta.0, delta.1, delta.2)
        })
        .collect()
}

/// Phase aggregates for the storm: `(mean epoch goodput bps, radio PLR)`
/// over the epochs selected by `keep`.
fn phase_stats(
    deltas: &[(f64, u64, u64, u64)],
    payload_bits: f64,
    keep: impl Fn(f64) -> bool,
) -> (f64, f64) {
    let selected: Vec<_> = deltas.iter().filter(|(t, ..)| keep(*t)).collect();
    if selected.is_empty() {
        return (0.0, 0.0);
    }
    let delivered: u64 = selected.iter().map(|(_, _, d, _)| d).sum();
    let generated: u64 = selected.iter().map(|(_, g, ..)| g).sum();
    let lost: u64 = selected.iter().map(|(.., l)| l).sum();
    let goodput = delivered as f64 * payload_bits / selected.len() as f64;
    let plr = if generated == 0 {
        0.0
    } else {
        lost as f64 / generated as f64
    };
    (goodput, plr)
}

/// Recovery time, seconds after the rejoin instant, until the per-epoch
/// goodput first reaches 90% of its pre-storm mean. `None` when the run
/// never recovers inside the horizon.
pub fn recovery_time_s(outcome: &NetworkOutcome) -> Option<f64> {
    let deltas = epoch_deltas(outcome);
    let pre: Vec<u64> = deltas
        .iter()
        .filter(|(t, ..)| *t <= STORM_FAIL_S)
        .map(|(_, _, d, _)| *d)
        .collect();
    if pre.is_empty() {
        return None;
    }
    let pre_mean = pre.iter().sum::<u64>() as f64 / pre.len() as f64;
    deltas
        .iter()
        .find(|(t, _, d, _)| *t > STORM_RECOVER_S && *d as f64 >= 0.9 * pre_mean)
        .map(|(t, ..)| t - STORM_RECOVER_S)
}

fn density_section(report: &mut Report, densities: &[usize]) {
    let mut table = Table::new(vec![
        "links",
        "goodput_bps",
        "plr_radio",
        "moves",
        "neighbor_updates",
        "updates_per_move",
    ]);
    let mut per_move = Vec::with_capacity(densities.len());
    for &n in densities {
        let outcome = simulate_density(n);
        let upm = outcome.topo.neighbor_updates as f64 / outcome.topo.moves.max(1) as f64;
        per_move.push(upm);
        table.push_row(vec![
            format!("{n}"),
            fnum(outcome.goodput_bps()),
            fnum(outcome.plr_radio()),
            format!("{}", outcome.topo.moves),
            format!("{}", outcome.topo.neighbor_updates),
            fnum(upm),
        ]);
    }
    let first = per_move.first().copied().unwrap_or(0.0);
    let last = per_move.last().copied().unwrap_or(0.0);
    report.push(
        &format!(
            "Constant-density grid ({CELL_M:.0} m cells), random-waypoint mobility, \
             prune floor {PRUNE_DBM:.0} dBm, fast engine"
        ),
        table,
        vec![
            format!(
                "Move cost tracks the neighborhood, not the fleet: {:.1} edges/move at {} links \
                 vs {:.1} at {} links (×{:.0} links, ×{:.1} cost).",
                first,
                densities.first().unwrap_or(&0),
                last,
                densities.last().unwrap_or(&0),
                *densities.last().unwrap_or(&1) as f64 / *densities.first().unwrap_or(&1) as f64,
                last / first.max(1e-9)
            ),
            "A dense N×N medium would touch every pair on every move; the sparse store re-derives one neighborhood.".into(),
        ],
    );
}

fn storm_section(report: &mut Report) {
    let outcome = simulate_storm();
    let payload_bits = config().payload.bytes() as f64 * 8.0;
    let deltas = epoch_deltas(&outcome);
    let pre = phase_stats(&deltas, payload_bits, |t| t <= STORM_FAIL_S);
    let during = phase_stats(&deltas, payload_bits, |t| {
        t > STORM_FAIL_S && t <= STORM_RECOVER_S
    });
    let post = phase_stats(&deltas, payload_bits, |t| t > STORM_RECOVER_S);
    let recovery = recovery_time_s(&outcome);

    let mut table = Table::new(vec!["phase", "epoch_goodput_bps", "plr_radio"]);
    table.push_row(vec!["pre-storm".to_string(), fnum(pre.0), fnum(pre.1)]);
    table.push_row(vec!["storm".to_string(), fnum(during.0), fnum(during.1)]);
    table.push_row(vec!["post-rejoin".to_string(), fnum(post.0), fnum(post.1)]);

    report.push(
        &format!(
            "Failure storm: 64-link grid, 20% leave at t = {STORM_FAIL_S:.0} s, \
             rejoin at t = {STORM_RECOVER_S:.0} s (seed 0x13)"
        ),
        table,
        vec![
            format!(
                "{} leaves, {} joins replayed; goodput drops {:.0} → {:.0} bit/s during the storm.",
                outcome.topo.leaves,
                outcome.topo.joins,
                pre.0,
                during.0
            ),
            match recovery {
                Some(t) => format!(
                    "Recovery time: {t:.1} s after the rejoin to regain 90% of pre-storm epoch goodput."
                ),
                None => "No recovery inside the horizon (goodput stayed below 90% of pre-storm).".into(),
            },
        ],
    );
}

/// Runs the dynamic-topology extension experiment.
pub fn run(_scale: Scale) -> Report {
    let mut report = Report::new(
        "ext13",
        "Extension: dynamic topologies at scale (mobility sweep + failure storm)",
    );
    density_section(&mut report, &DENSITIES);
    storm_section(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_cost_stays_in_the_neighborhood() {
        let small = simulate_density(16);
        let large = simulate_density(256);
        assert!(small.topo.moves > 0 && large.topo.moves > 0);
        let small_upm = small.topo.neighbor_updates as f64 / small.topo.moves as f64;
        let large_upm = large.topo.neighbor_updates as f64 / large.topo.moves as f64;
        // 16× the links at constant density: per-move cost must stay in
        // the same ballpark, nowhere near the ×16 a dense row scan pays.
        assert!(
            large_upm < small_upm.max(1.0) * 8.0,
            "per-move cost scaled with N: {small_upm:.1} -> {large_upm:.1}"
        );
    }

    #[test]
    fn storm_reports_recovery() {
        let outcome = simulate_storm();
        assert_eq!(outcome.topo.leaves, 13, "20% of 64, rounded");
        assert_eq!(outcome.topo.joins, 64 + 13);
        assert_eq!(outcome.epochs.len(), 30);
        let recovery = recovery_time_s(&outcome);
        assert!(
            recovery.is_some(),
            "the storm must recover inside the horizon"
        );
        assert!(recovery.unwrap() >= 0.0);
    }

    #[test]
    fn report_has_sweep_and_storm_sections() {
        let mut report = Report::new("ext13", "test");
        density_section(&mut report, &[16, 64]);
        storm_section(&mut report);
        assert_eq!(report.sections.len(), 2);
        assert_eq!(report.sections[0].table.rows.len(), 2);
        assert_eq!(report.sections[1].table.rows.len(), 3);
        assert!(report.sections[1].notes[1].contains("ecovery"));
    }
}
