//! Table I — the seven stack parameters and their experimented values.

use wsn_params::grid::ParamGrid;

use crate::campaign::Scale;
use crate::report::{Report, Table};

fn join<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs the Table I reproduction (scale has no effect).
pub fn run(_scale: Scale) -> Report {
    let grid = ParamGrid::paper();
    let mut table = Table::new(vec![
        "layer".to_string(),
        "parameter".to_string(),
        "values".to_string(),
    ]);
    table.push_row(vec![
        "PHY".to_string(),
        "distance d (m)".to_string(),
        join(&grid.distances_m),
    ]);
    table.push_row(vec![
        "PHY".to_string(),
        "output power Ptx (CC2420 PA level)".to_string(),
        join(&grid.power_levels),
    ]);
    table.push_row(vec![
        "MAC".to_string(),
        "max transmissions NmaxTries".to_string(),
        join(&grid.max_tries),
    ]);
    table.push_row(vec![
        "MAC".to_string(),
        "retry delay Dretry (ms)".to_string(),
        join(&grid.retry_delays_ms),
    ]);
    table.push_row(vec![
        "Queue".to_string(),
        "queue size Qmax (packets)".to_string(),
        join(&grid.queue_caps),
    ]);
    table.push_row(vec![
        "App".to_string(),
        "packet interval Tpkt (ms)".to_string(),
        join(&grid.packet_intervals_ms),
    ]);
    table.push_row(vec![
        "App".to_string(),
        "payload size lD (bytes)".to_string(),
        join(&grid.payloads),
    ]);

    let mut counts = Table::new(vec!["quantity", "value"]);
    counts.push_row(vec![
        "configurations per distance".to_string(),
        format!("{}", grid.per_distance_count()),
    ]);
    counts.push_row(vec![
        "total configurations".to_string(),
        format!("{}", grid.len()),
    ]);
    counts.push_row(vec![
        "packets per configuration (paper)".to_string(),
        "4500".to_string(),
    ]);

    let mut report = Report::new("table01", "Table I: stack parameters and value ranges");
    report.push("Parameter grid", table, vec![]);
    report.push(
        "Campaign size",
        counts,
        vec!["8064 per distance × 6 distances = 48,384 ≈ \"close to 50 thousand\".".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_counts_match_paper() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        assert_eq!(rows[0][1], "8064");
        assert_eq!(rows[1][1], "48384");
    }

    #[test]
    fn grid_has_seven_parameters() {
        let report = run(Scale::Quick);
        assert_eq!(report.sections[0].table.rows.len(), 7);
    }
}
