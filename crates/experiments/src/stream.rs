//! Streaming consumers of campaign results.
//!
//! A grid campaign produces one [`ConfigResult`] per configuration — up to
//! 48,384 for the paper's full grid. A [`CampaignSink`] receives each
//! result **in configuration order** as workers finish, so consumers
//! (progress lines, JSONL shard writers, collectors) never need the whole
//! result set in memory. The runner guarantees in-order delivery with a
//! bounded reorder buffer: at most `2 × threads` results are ever pending
//! (see [`Campaign::run_streamed`](crate::campaign::Campaign::run_streamed)).

use std::io::Write;
use std::time::Instant;

use crate::campaign::ConfigResult;

/// An in-order streaming consumer of campaign results.
pub trait CampaignSink {
    /// Consumes the result for the configuration at `index`. Called exactly
    /// once per configuration, in strictly increasing index order.
    fn on_result(&mut self, index: usize, result: &ConfigResult);

    /// Called once after the last result.
    fn on_complete(&mut self, _total: usize) {}
}

impl<S: CampaignSink + ?Sized> CampaignSink for &mut S {
    fn on_result(&mut self, index: usize, result: &ConfigResult) {
        (**self).on_result(index, result);
    }
    fn on_complete(&mut self, total: usize) {
        (**self).on_complete(total);
    }
}

/// Adapts a closure into a sink: `SinkFn::new(|index, result| { … })`.
#[derive(Debug)]
pub struct SinkFn<F: FnMut(usize, &ConfigResult)>(F);

impl<F: FnMut(usize, &ConfigResult)> SinkFn<F> {
    /// Wraps `f` as a sink.
    pub fn new(f: F) -> Self {
        SinkFn(f)
    }
}

impl<F: FnMut(usize, &ConfigResult)> CampaignSink for SinkFn<F> {
    fn on_result(&mut self, index: usize, result: &ConfigResult) {
        (self.0)(index, result);
    }
}

/// Collects results in memory, in configuration order — the compatibility
/// sink behind [`Campaign::run_configs`](crate::campaign::Campaign::run_configs).
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    results: Vec<ConfigResult>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The results collected so far.
    pub fn results(&self) -> &[ConfigResult] {
        &self.results
    }

    /// Consumes the sink, returning the ordered results.
    pub fn into_results(self) -> Vec<ConfigResult> {
        self.results
    }
}

impl CampaignSink for CollectSink {
    fn on_result(&mut self, index: usize, result: &ConfigResult) {
        debug_assert_eq!(index, self.results.len(), "delivery must be in order");
        self.results.push(result.clone());
    }
}

/// Statistics of one streaming run, for observability and memory-bound
/// assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Results delivered to the sink.
    pub delivered: usize,
    /// Largest number of finished-but-undelivered results ever held in the
    /// reorder buffer. Bounded by the runner's claim-ahead window
    /// (`2 × threads`), independent of grid size.
    pub max_pending: usize,
}

/// Decorator sink that writes a live progress line (rate + ETA) while
/// forwarding every result to an inner sink.
///
/// Progress is printed at most once per `report_every` results, so the
/// overhead is negligible even for fast Bench-scale configs.
pub struct ProgressSink<S, W: Write> {
    inner: S,
    out: W,
    total: usize,
    done: usize,
    report_every: usize,
    started: Instant,
}

impl<S: CampaignSink, W: Write> ProgressSink<S, W> {
    /// Wraps `inner`, reporting progress over `total` configurations to
    /// `out` every `report_every` results (clamped to ≥ 1).
    pub fn new(inner: S, out: W, total: usize, report_every: usize) -> Self {
        ProgressSink {
            inner,
            out,
            total,
            done: 0,
            report_every: report_every.max(1),
            started: Instant::now(),
        }
    }

    /// Consumes the decorator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn print_line(&mut self, last: bool) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(self.done);
        let eta_s = if rate > 0.0 {
            remaining as f64 / rate
        } else {
            0.0
        };
        let end = if last { '\n' } else { '\r' };
        let _ = write!(
            self.out,
            "config {}/{} ({rate:.1}/s, ETA {:02}:{:02}){end}",
            self.done,
            self.total,
            (eta_s as u64) / 60,
            (eta_s as u64) % 60,
        );
        let _ = self.out.flush();
    }
}

impl<S: CampaignSink, W: Write> CampaignSink for ProgressSink<S, W> {
    fn on_result(&mut self, index: usize, result: &ConfigResult) {
        self.inner.on_result(index, result);
        self.done += 1;
        if self.done.is_multiple_of(self.report_every) {
            self.print_line(false);
        }
    }

    fn on_complete(&mut self, total: usize) {
        self.print_line(true);
        self.inner.on_complete(total);
    }
}

/// Decorator sink that emits structured `campaign_progress` JSONL events
/// through a [`wsn_obs::log::EventLog`] while forwarding every result to
/// an inner sink — the machine-readable sibling of [`ProgressSink`]'s
/// terminal line, sharing one log file (and one event vocabulary) with
/// the serve access log and the shard runner.
pub struct EventLogSink<'a, S> {
    inner: S,
    log: &'a wsn_obs::log::EventLog,
    total: usize,
    done: usize,
    report_every: usize,
    started: Instant,
}

impl<'a, S: CampaignSink> EventLogSink<'a, S> {
    /// Wraps `inner`, logging progress over `total` configurations every
    /// `report_every` results (clamped to ≥ 1).
    pub fn new(
        inner: S,
        log: &'a wsn_obs::log::EventLog,
        total: usize,
        report_every: usize,
    ) -> Self {
        EventLogSink {
            inner,
            log,
            total,
            done: 0,
            report_every: report_every.max(1),
            started: Instant::now(),
        }
    }

    /// Consumes the decorator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn emit(&self, event: &str) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        self.log
            .info(event)
            .u64("done", self.done as u64)
            .u64("total", self.total as u64)
            .f64("rate_per_s", rate)
            .f64("elapsed_s", elapsed)
            .emit();
    }
}

impl<S: CampaignSink> CampaignSink for EventLogSink<'_, S> {
    fn on_result(&mut self, index: usize, result: &ConfigResult) {
        self.inner.on_result(index, result);
        self.done += 1;
        if self.done.is_multiple_of(self.report_every) {
            self.emit("campaign_progress");
        }
    }

    fn on_complete(&mut self, total: usize) {
        self.emit("campaign_complete");
        self.inner.on_complete(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, Scale};
    use wsn_params::config::StackConfig;

    fn result() -> ConfigResult {
        Campaign {
            packets: 30,
            threads: 1,
            ..Campaign::new(Scale::Bench)
        }
        .run_one(StackConfig::default(), 0)
    }

    #[test]
    fn collect_sink_preserves_order() {
        let r = result();
        let mut sink = CollectSink::new();
        sink.on_result(0, &r);
        sink.on_result(1, &r);
        assert_eq!(sink.results().len(), 2);
        assert_eq!(sink.into_results().len(), 2);
    }

    #[test]
    fn closure_is_a_sink() {
        let r = result();
        let mut seen = Vec::new();
        {
            let mut sink = SinkFn::new(|index: usize, _r: &ConfigResult| seen.push(index));
            sink.on_result(0, &r);
            sink.on_result(1, &r);
        }
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn event_log_sink_emits_progress_and_completion() {
        use std::io;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let r = result();
        let buf = Buf::default();
        let log =
            wsn_obs::log::EventLog::to_writer(Box::new(buf.clone()), wsn_obs::log::Level::Info);
        let mut sink = EventLogSink::new(CollectSink::new(), &log, 4, 2);
        for i in 0..4 {
            sink.on_result(i, &r);
        }
        sink.on_complete(4);
        assert_eq!(sink.into_inner().into_results().len(), 4);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let progress_lines = text
            .lines()
            .filter(|l| l.contains("\"event\":\"campaign_progress\""))
            .count();
        assert_eq!(progress_lines, 2, "every 2nd of 4 results: {text}");
        assert!(text.contains("\"event\":\"campaign_complete\""), "{text}");
        assert!(text.contains("\"done\":4,\"total\":4"), "{text}");
    }

    #[test]
    fn progress_sink_reports_rate_and_eta() {
        let r = result();
        let mut sink = ProgressSink::new(CollectSink::new(), Vec::new(), 3, 1);
        sink.on_result(0, &r);
        sink.on_result(1, &r);
        sink.on_result(2, &r);
        sink.on_complete(3);
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        assert!(text.contains("config 3/3"), "got: {text}");
        assert!(text.contains("ETA"), "got: {text}");
        assert_eq!(sink.into_inner().into_results().len(), 3);
    }
}
