//! Fig. 9 — the empirical energy model: optimal payload size vs SNR.
//!
//! A pure model figure (no simulation): Eq. 2 + Eq. 3 evaluated across the
//! SNR range. The paper's reading: the optimal payload stays at the
//! maximum (114 B) down to ≈17 dB, then shrinks to below ~40 B at 5 dB —
//! so payload adaptation to link quality is an effective energy lever.

use wsn_models::constants::ENERGY_MAX_PAYLOAD_SNR_DB;
use wsn_models::energy::EnergyModel;
use wsn_params::types::{PayloadSize, PowerLevel};

use crate::campaign::Scale;
use crate::report::{fnum, Report, Table};

/// Runs the Fig. 9 reproduction (scale has no effect: model-only).
pub fn run(_scale: Scale) -> Report {
    let model = EnergyModel::paper();
    let power = PowerLevel::MAX;

    let mut curve = Table::new(vec![
        "snr_db",
        "optimal_lD_B",
        "u_eng_at_opt_uJ",
        "u_eng_lD40_uJ",
        "u_eng_lD114_uJ",
    ]);
    let mut threshold_snr = None;
    for snr10 in (50..=250).step_by(10) {
        let snr = snr10 as f64 / 10.0;
        let best = model.optimal_payload(snr, power);
        if threshold_snr.is_none() && best.bytes() == 114 {
            threshold_snr = Some(snr);
        }
        curve.push_row(vec![
            fnum(snr),
            format!("{}", best.bytes()),
            fnum(model.u_eng_uj_per_bit(snr, best, power)),
            fnum(model.u_eng_uj_per_bit(snr, PayloadSize::new(40).expect("valid"), power)),
            fnum(model.u_eng_uj_per_bit(snr, PayloadSize::MAX, power)),
        ]);
    }

    let mut report = Report::new(
        "fig09",
        "Fig. 9: model-optimal payload size vs SNR (empirical energy model)",
    );
    let threshold = threshold_snr.unwrap_or(f64::NAN);
    report.push(
        "Energy-optimal payload across the SNR range (Ptx = 31)",
        curve,
        vec![
            format!(
                "The maximum payload becomes optimal at ≈{threshold:.1} dB (paper: 17 dB, constant {ENERGY_MAX_PAYLOAD_SNR_DB})."
            ),
            "Below the threshold the optimum shrinks towards ~40 bytes at 5 dB.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal_at(report: &Report, snr: f64) -> u16 {
        report.sections[0]
            .table
            .rows
            .iter()
            .find(|r| (r[0].parse::<f64>().unwrap() - snr).abs() < 1e-9)
            .map(|r| r[1].parse().unwrap())
            .expect("snr row present")
    }

    #[test]
    fn optimum_is_monotone_in_snr_and_hits_max() {
        let report = run(Scale::Quick);
        let mut prev = 0u16;
        for row in &report.sections[0].table.rows {
            let opt: u16 = row[1].parse().unwrap();
            assert!(opt >= prev, "optimal payload not monotone");
            prev = opt;
        }
        assert_eq!(optimal_at(&report, 25.0), 114);
        assert!(optimal_at(&report, 5.0) <= 45);
    }

    #[test]
    fn threshold_near_17db() {
        let report = run(Scale::Quick);
        // The note carries the detected threshold.
        let note = &report.sections[0].notes[0];
        let value: f64 = note
            .split('≈')
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((value - 17.0).abs() <= 2.0, "threshold={value}");
    }
}
