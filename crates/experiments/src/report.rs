//! Report structures and text/CSV rendering for reproduced experiments.
//!
//! Every experiment module produces a [`Report`] — a titled collection of
//! [`Section`]s, each holding one aligned text [`Table`] plus prose notes.
//! The `repro` binary renders reports to the terminal and optionally dumps
//! them as CSV/JSON for downstream plotting.

use serde::{Deserialize, Serialize};

/// A rectangular table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (quoting cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// One titled table with accompanying notes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Section {
    /// Section heading (e.g. "Fig. 6(b): PER vs SNR per payload").
    pub heading: String,
    /// The data.
    pub table: Table,
    /// Observations / comparisons against the paper.
    pub notes: Vec<String>,
}

/// A reproduced experiment: identifier, title and sections.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Report {
    /// Short id used for filenames and CLI selection (e.g. "fig06").
    pub id: String,
    /// The paper artifact this reproduces.
    pub title: String,
    /// The data sections.
    pub sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            sections: Vec::new(),
        }
    }

    /// Adds a section.
    pub fn push(&mut self, heading: &str, table: Table, notes: Vec<String>) {
        self.sections.push(Section {
            heading: heading.to_string(),
            table,
            notes,
        });
    }

    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("==== {} — {} ====\n\n", self.id, self.title));
        for s in &self.sections {
            out.push_str(&format!("-- {}\n", s.heading));
            out.push_str(&s.table.render());
            for note in &s.notes {
                out.push_str(&format!("  note: {note}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else if a >= 0.01 || a == 0.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["snr", "per"]);
        t.push_row(vec!["5", "0.61"]);
        t.push_row(vec!["19", "0.08"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("snr"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned values line up.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn report_renders_sections_and_notes() {
        let mut r = Report::new("fig99", "A test figure");
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["1"]);
        r.push("section one", t, vec!["matches the paper".to_string()]);
        let text = r.render();
        assert!(text.contains("fig99"));
        assert!(text.contains("section one"));
        assert!(text.contains("note: matches the paper"));
    }

    #[test]
    fn fnum_scales() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(0.12345), "0.1235");
        assert_eq!(fnum(0.00012), "1.20e-4");
        assert_eq!(fnum(f64::INFINITY), "inf");
        assert_eq!(fnum(0.0), "0.0000");
    }
}
