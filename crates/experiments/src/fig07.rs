//! Fig. 7 — the energy-optimal transmission power at 35 m, per payload
//! size.
//!
//! The paper's finding: the optimal output power is reached as soon as the
//! link leaves the grey zone; larger payloads need a *higher* optimal
//! power (at 35 m: level 11 for 110-byte payloads vs level 7 for small and
//! medium ones).

use wsn_models::energy::EnergyModel;
use wsn_models::predict::LinkBudget;
use wsn_params::config::StackConfig;
use wsn_params::types::{Distance, PayloadSize, PowerLevel};

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// Payloads compared in the figure: small, medium, large.
pub const PAYLOADS: [u16; 3] = [20, 65, 110];

/// Runs the Fig. 7 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &l in &PAYLOADS {
        for &p in &GRID_POWERS {
            configs.push(
                StackConfig::builder()
                    .distance_m(35.0)
                    .power_level(p)
                    .payload_bytes(l)
                    .max_tries(3)
                    .retry_delay_ms(0)
                    .queue_cap(30)
                    .packet_interval_ms(100)
                    .build()
                    .expect("grid values are valid"),
            );
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);

    let model = EnergyModel::paper();
    let budget = LinkBudget::paper_hallway();
    let d35 = Distance::from_meters(35.0).expect("valid");

    let mut headers = vec!["Ptx".to_string(), "snr_db".to_string()];
    for &l in &PAYLOADS {
        headers.push(format!("sim_uJ_lD{l}"));
        headers.push(format!("model_uJ_lD{l}"));
    }
    let mut table = Table::new(headers);

    let mut sim_best: Vec<(u16, u8, f64)> = Vec::new(); // (payload, best power, u)
    for &l in &PAYLOADS {
        sim_best.push((l, 0, f64::INFINITY));
    }

    for &p in &GRID_POWERS {
        let power = PowerLevel::new(p).expect("valid");
        let snr = budget.snr_db(power, d35);
        let mut row = vec![format!("{p}"), fnum(snr)];
        for (pi, &l) in PAYLOADS.iter().enumerate() {
            let payload = PayloadSize::new(l).expect("valid");
            let sim = results
                .iter()
                .find(|r| r.config.power.level() == p && r.config.payload.bytes() == l)
                .expect("config simulated");
            let sim_u = sim.metrics.u_eng_uj_per_bit;
            let model_u = model.u_eng_uj_per_bit(snr, payload, power);
            row.push(fnum(sim_u));
            row.push(fnum(model_u));
            if sim_u < sim_best[pi].2 {
                sim_best[pi] = (l, p, sim_u);
            }
        }
        table.push_row(row);
    }

    let mut optima = Table::new(vec!["payload_B", "sim_optimal_Ptx", "model_optimal_Ptx"]);
    let candidates: Vec<PowerLevel> = GRID_POWERS
        .iter()
        .map(|&p| PowerLevel::new(p).expect("valid"))
        .collect();
    for (l, best_p, _) in &sim_best {
        let payload = PayloadSize::new(*l).expect("valid");
        let model_best = model
            .optimal_power(
                &budget.pathloss,
                d35,
                budget.noise_dbm,
                payload,
                &candidates,
            )
            .expect("non-empty candidates");
        optima.push_row(vec![
            format!("{l}"),
            format!("{best_p}"),
            format!("{}", model_best.level()),
        ]);
    }

    let mut report = Report::new(
        "fig07",
        "Fig. 7: optimal transmission power for energy at 35 m",
    );
    report.push(
        "U_eng (uJ/bit) vs power level, simulated and modeled",
        table,
        vec![
            "Energy falls steeply while leaving the grey zone, then creeps back up with power."
                .into(),
        ],
    );
    report.push(
        "Energy-optimal power level per payload",
        optima,
        vec!["Larger payloads require a higher optimal power (paper: level 11 for lD=110 vs 7 for smaller).".into()],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_power_is_interior_not_maximal() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        for row in rows {
            let sim_p: u8 = row[1].parse().unwrap();
            assert!(sim_p < 31, "optimal power should be interior, got {sim_p}");
            assert!(sim_p >= 7, "optimal power too low: {sim_p}");
        }
    }

    #[test]
    fn larger_payload_does_not_need_lower_power() {
        let report = run(Scale::Quick);
        let rows = &report.sections[1].table.rows;
        let p_small: u8 = rows[0][2].parse().unwrap(); // model column is stable
        let p_large: u8 = rows[2][2].parse().unwrap();
        assert!(p_large >= p_small, "large {p_large} < small {p_small}");
    }
}
