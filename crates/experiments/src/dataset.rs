//! Per-packet dataset export/import.
//!
//! The paper publishes its raw measurement data (per-packet RSSI, LQI,
//! transmission counts, queue sizes, timestamps). This module writes the
//! simulator's per-packet records in an equivalent CSV schema and reads
//! them back, so downstream analyses can treat the synthetic campaign
//! exactly like the published dataset.

use std::io::{BufRead, Write};

use wsn_link_sim::record::{PacketFate, PacketRecord};
use wsn_link_sim::simulation::SimOutcome;
use wsn_params::config::StackConfig;
use wsn_sim_engine::time::SimTime;

/// The CSV header of the per-packet schema.
pub const HEADER: &str = "seq,t_arrival_us,t_service_start_us,t_done_us,tries,queue_depth,fate,sender_acked,rssi_dbm,snr_db,lqi";

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (line number, description).
    Parse(usize, String),
    /// The outcome carried no records (run with `record_packets = true`).
    NoRecords,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetError::Parse(line, what) => {
                write!(f, "dataset parse error at line {line}: {what}")
            }
            DatasetError::NoRecords => {
                write!(f, "simulation outcome has no per-packet records")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn fate_str(fate: PacketFate) -> &'static str {
    match fate {
        PacketFate::QueueDropped => "queue_dropped",
        PacketFate::RadioLost => "radio_lost",
        PacketFate::Delivered => "delivered",
    }
}

fn fate_from(s: &str) -> Option<PacketFate> {
    match s {
        "queue_dropped" => Some(PacketFate::QueueDropped),
        "radio_lost" => Some(PacketFate::RadioLost),
        "delivered" => Some(PacketFate::Delivered),
        _ => None,
    }
}

/// Writes one record as a CSV line.
fn write_record<W: Write>(out: &mut W, r: &PacketRecord) -> std::io::Result<()> {
    let opt = |t: Option<SimTime>| t.map_or(String::new(), |v| v.as_micros().to_string());
    let flt = |v: f64| {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            String::new()
        }
    };
    writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{}",
        r.seq,
        r.t_arrival.as_micros(),
        opt(r.t_service_start),
        opt(r.t_done),
        r.tries,
        r.queue_depth,
        fate_str(r.fate),
        r.sender_acked,
        flt(r.last_rssi_dbm),
        flt(r.last_snr_db),
        r.last_lqi,
    )
}

/// Writes a full trace: a `# config: …` comment, the header, one line per
/// packet.
///
/// # Errors
///
/// Returns [`DatasetError::NoRecords`] when the outcome was produced with
/// `record_packets = false`, or any I/O error.
pub fn write_trace<W: Write>(out: &mut W, outcome: &SimOutcome) -> Result<usize, DatasetError> {
    let records = outcome.records.as_ref().ok_or(DatasetError::NoRecords)?;
    writeln!(out, "# config: {}", outcome.config)?;
    writeln!(out, "{HEADER}")?;
    for r in records {
        write_record(out, r)?;
    }
    Ok(records.len())
}

/// A parsed trace: the config line (free text) and the records.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The `# config: …` description, if present.
    pub config_line: Option<String>,
    /// The per-packet records.
    pub records: Vec<PacketRecord>,
}

impl Trace {
    /// Aggregate delivery ratio over the trace.
    pub fn delivery_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let delivered = self
            .records
            .iter()
            .filter(|r| r.fate == PacketFate::Delivered)
            .count();
        delivered as f64 / self.records.len() as f64
    }

    /// Mean transmissions over completed (non-queue-dropped) packets.
    pub fn mean_tries(&self) -> f64 {
        let completed: Vec<&PacketRecord> = self
            .records
            .iter()
            .filter(|r| r.fate != PacketFate::QueueDropped)
            .collect();
        if completed.is_empty() {
            return 0.0;
        }
        completed.iter().map(|r| r.tries as f64).sum::<f64>() / completed.len() as f64
    }
}

/// Reads a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`DatasetError::Parse`] carrying the first malformed line.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, DatasetError> {
    let mut config_line = None;
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        if line.starts_with("# config:") {
            config_line = Some(line.trim_start_matches("# config:").trim().to_string());
            continue;
        }
        if line.is_empty() || line == HEADER || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(DatasetError::Parse(
                lineno,
                format!("expected 11 fields, got {}", fields.len()),
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, DatasetError> {
            s.parse()
                .map_err(|_| DatasetError::Parse(lineno, format!("bad {what}: '{s}'")))
        };
        let opt_time = |s: &str, what: &str| -> Result<Option<SimTime>, DatasetError> {
            if s.is_empty() {
                Ok(None)
            } else {
                Ok(Some(SimTime::from_micros(parse_u64(s, what)?)))
            }
        };
        let opt_f64 = |s: &str| -> f64 {
            if s.is_empty() {
                f64::NAN
            } else {
                s.parse().unwrap_or(f64::NAN)
            }
        };
        let fate = fate_from(fields[6])
            .ok_or_else(|| DatasetError::Parse(lineno, format!("bad fate '{}'", fields[6])))?;
        records.push(PacketRecord {
            seq: parse_u64(fields[0], "seq")?,
            t_arrival: SimTime::from_micros(parse_u64(fields[1], "t_arrival")?),
            t_service_start: opt_time(fields[2], "t_service_start")?,
            t_done: opt_time(fields[3], "t_done")?,
            tries: parse_u64(fields[4], "tries")? as u8,
            queue_depth: parse_u64(fields[5], "queue_depth")? as usize,
            fate,
            sender_acked: fields[7] == "true",
            last_rssi_dbm: opt_f64(fields[8]),
            last_snr_db: opt_f64(fields[9]),
            last_lqi: parse_u64(fields[10], "lqi")? as u8,
        });
    }
    Ok(Trace {
        config_line,
        records,
    })
}

/// Convenience: simulates `config` with records on and writes the trace to
/// `path`.
///
/// # Errors
///
/// Propagates dataset and I/O errors.
pub fn export_to_file(
    config: StackConfig,
    options: wsn_link_sim::simulation::SimOptions,
    path: &std::path::Path,
) -> Result<usize, DatasetError> {
    let mut options = options;
    options.record_packets = true;
    let outcome = wsn_link_sim::simulation::LinkSimulation::new(config, options).run();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut file, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_link_sim::simulation::{LinkSimulation, SimOptions};

    fn outcome() -> SimOutcome {
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(11)
            .payload_bytes(80)
            .build()
            .unwrap();
        LinkSimulation::new(cfg, SimOptions::quick(120)).run()
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let out = outcome();
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, &out).unwrap();
        assert_eq!(written, 120);
        let trace = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace.records.len(), 120);
        assert!(trace.config_line.unwrap().contains("35m"));
        let original = out.records.unwrap();
        for (a, b) in original.iter().zip(&trace.records) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.t_arrival, b.t_arrival);
            assert_eq!(a.t_done, b.t_done);
            assert_eq!(a.tries, b.tries);
            assert_eq!(a.fate, b.fate);
            assert_eq!(a.sender_acked, b.sender_acked);
            // Floats round-trip at 2 decimals.
            if a.last_rssi_dbm.is_finite() {
                assert!((a.last_rssi_dbm - b.last_rssi_dbm).abs() < 0.01);
            }
        }
    }

    #[test]
    fn trace_statistics_match_metrics() {
        let out = outcome();
        let mut buf = Vec::new();
        write_trace(&mut buf, &out).unwrap();
        let trace = read_trace(buf.as_slice()).unwrap();
        let m = out.metrics();
        let expected_ratio = m.delivered as f64 / m.generated as f64;
        assert!((trace.delivery_ratio() - expected_ratio).abs() < 1e-12);
    }

    #[test]
    fn missing_records_is_an_error() {
        let cfg = StackConfig::default();
        let out = LinkSimulation::new(
            cfg,
            SimOptions {
                record_packets: false,
                ..SimOptions::quick(10)
            },
        )
        .run();
        let mut buf = Vec::new();
        assert!(matches!(
            write_trace(&mut buf, &out),
            Err(DatasetError::NoRecords)
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad = format!("{HEADER}\n1,2,3\n");
        match read_trace(bad.as_bytes()) {
            Err(DatasetError::Parse(line, what)) => {
                assert_eq!(line, 2);
                assert!(what.contains("11 fields"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_fate = format!("{HEADER}\n0,0,,,0,0,vanished,false,,,0\n");
        assert!(matches!(
            read_trace(bad_fate.as_bytes()),
            Err(DatasetError::Parse(2, _))
        ));
    }

    #[test]
    fn export_to_file_writes_csv() {
        let dir = std::env::temp_dir().join("wsn_linkconf_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let cfg = StackConfig::default();
        let n = export_to_file(cfg, SimOptions::quick(40), &path).unwrap();
        assert_eq!(n, 40);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# config:"));
        assert!(text.lines().count() >= 42);
        std::fs::remove_file(&path).unwrap();
    }
}
