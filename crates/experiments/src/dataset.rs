//! Per-packet dataset export/import.
//!
//! The paper publishes its raw measurement data (per-packet RSSI, LQI,
//! transmission counts, queue sizes, timestamps). This module writes the
//! simulator's per-packet records in an equivalent CSV schema and reads
//! them back, so downstream analyses can treat the synthetic campaign
//! exactly like the published dataset.
//!
//! Two write paths exist: [`write_trace`] serialises an in-memory record
//! vector, and [`CsvStreamSink`] implements
//! [`PacketSink`](wsn_link_sim::sink::PacketSink) so the simulation can
//! stream records straight to disk in O(1) memory. Floats are written in
//! shortest-round-trip form, so a write → read cycle is lossless.

use std::io::{BufRead, Write};

use wsn_link_sim::record::{PacketFate, PacketRecord};
use wsn_link_sim::simulation::SimOutcome;
use wsn_link_sim::sink::PacketSink;
use wsn_params::config::StackConfig;
use wsn_sim_engine::time::SimTime;

/// The CSV header of the per-packet schema.
pub const HEADER: &str = "seq,t_arrival_us,t_service_start_us,t_done_us,tries,queue_depth,fate,sender_acked,rssi_dbm,snr_db,lqi";

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (line number, description).
    Parse(usize, String),
    /// The outcome carried no records (run with `record_packets = true`).
    NoRecords,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetError::Parse(line, what) => {
                write!(f, "dataset parse error at line {line}: {what}")
            }
            DatasetError::NoRecords => {
                write!(f, "simulation outcome has no per-packet records")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn fate_str(fate: PacketFate) -> &'static str {
    match fate {
        PacketFate::QueueDropped => "queue_dropped",
        PacketFate::RadioLost => "radio_lost",
        PacketFate::Delivered => "delivered",
    }
}

fn fate_from(s: &str) -> Option<PacketFate> {
    match s {
        "queue_dropped" => Some(PacketFate::QueueDropped),
        "radio_lost" => Some(PacketFate::RadioLost),
        "delivered" => Some(PacketFate::Delivered),
        _ => None,
    }
}

/// Writes one record as a CSV line.
fn write_record<W: Write>(out: &mut W, r: &PacketRecord) -> std::io::Result<()> {
    let opt = |t: Option<SimTime>| t.map_or(String::new(), |v| v.as_micros().to_string());
    // Shortest round-trip formatting: parsing the text reproduces the exact
    // f64 bits. Non-finite values map to the empty field (read as NaN).
    let flt = |v: f64| {
        if v.is_finite() {
            format!("{v}")
        } else {
            String::new()
        }
    };
    writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{}",
        r.seq,
        r.t_arrival.as_micros(),
        opt(r.t_service_start),
        opt(r.t_done),
        r.tries,
        r.queue_depth,
        fate_str(r.fate),
        r.sender_acked,
        flt(r.last_rssi_dbm),
        flt(r.last_snr_db),
        r.last_lqi,
    )
}

/// Writes a full trace: a `# config: …` comment, the header, one line per
/// packet.
///
/// # Errors
///
/// Returns [`DatasetError::NoRecords`] when the outcome was produced with
/// `record_packets = false`, or any I/O error.
pub fn write_trace<W: Write>(out: &mut W, outcome: &SimOutcome) -> Result<usize, DatasetError> {
    let records = outcome.records.as_ref().ok_or(DatasetError::NoRecords)?;
    writeln!(out, "# config: {}", outcome.config)?;
    writeln!(out, "{HEADER}")?;
    for r in records {
        write_record(out, r)?;
    }
    Ok(records.len())
}

/// A [`PacketSink`] that streams records to CSV as they are produced.
///
/// Memory use is O(1) in the number of packets: each record is formatted
/// and handed to the writer immediately. Because [`PacketSink::on_packet`]
/// cannot return an error, I/O failures are deferred: the sink stops
/// writing on the first error and [`finish`](Self::finish) reports it.
///
/// ```
/// use wsn_experiments::dataset::CsvStreamSink;
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::default();
/// let mut opts = SimOptions::quick(50);
/// opts.record_packets = false;
/// let mut sink = CsvStreamSink::with_config(Vec::new(), &cfg)?;
/// LinkSimulation::new(cfg, opts).run_with_sink(&mut sink);
/// let (csv, written) = sink.finish()?;
/// assert_eq!(written, 50);
/// assert!(String::from_utf8(csv).unwrap().starts_with("# config:"));
/// # Ok::<(), wsn_experiments::dataset::DatasetError>(())
/// ```
#[derive(Debug)]
pub struct CsvStreamSink<W: Write> {
    out: W,
    written: usize,
    error: Option<std::io::Error>,
}

impl<W: Write> CsvStreamSink<W> {
    /// Creates a sink writing the CSV header to `out`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from writing the header.
    pub fn new(out: W) -> Result<Self, DatasetError> {
        Self::start(out, None)
    }

    /// Creates a sink writing a `# config: …` comment and the CSV header.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from writing the preamble.
    pub fn with_config(out: W, config: &StackConfig) -> Result<Self, DatasetError> {
        Self::start(out, Some(config))
    }

    fn start(mut out: W, config: Option<&StackConfig>) -> Result<Self, DatasetError> {
        if let Some(cfg) = config {
            writeln!(out, "# config: {cfg}")?;
        }
        writeln!(out, "{HEADER}")?;
        Ok(CsvStreamSink {
            out,
            written: 0,
            error: None,
        })
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes the writer and returns it with the record count.
    ///
    /// # Errors
    ///
    /// Surfaces any I/O error deferred from [`PacketSink::on_packet`], or
    /// the flush failure.
    pub fn finish(mut self) -> Result<(W, usize), DatasetError> {
        if let Some(e) = self.error {
            return Err(DatasetError::Io(e));
        }
        self.out.flush()?;
        Ok((self.out, self.written))
    }
}

impl<W: Write> PacketSink for CsvStreamSink<W> {
    fn on_packet(&mut self, record: &PacketRecord) {
        if self.error.is_some() {
            return;
        }
        match write_record(&mut self.out, record) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// A parsed trace: the config line (free text) and the records.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The `# config: …` description, if present.
    pub config_line: Option<String>,
    /// The per-packet records.
    pub records: Vec<PacketRecord>,
}

impl Trace {
    /// Aggregate delivery ratio over the trace.
    pub fn delivery_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let delivered = self
            .records
            .iter()
            .filter(|r| r.fate == PacketFate::Delivered)
            .count();
        delivered as f64 / self.records.len() as f64
    }

    /// Mean transmissions over completed (non-queue-dropped) packets.
    pub fn mean_tries(&self) -> f64 {
        let completed: Vec<&PacketRecord> = self
            .records
            .iter()
            .filter(|r| r.fate != PacketFate::QueueDropped)
            .collect();
        if completed.is_empty() {
            return 0.0;
        }
        completed.iter().map(|r| r.tries as f64).sum::<f64>() / completed.len() as f64
    }
}

/// Reads a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`DatasetError::Parse`] carrying the first malformed line.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, DatasetError> {
    let mut config_line = None;
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        if line.starts_with("# config:") {
            config_line = Some(line.trim_start_matches("# config:").trim().to_string());
            continue;
        }
        if line.is_empty() || line == HEADER || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(DatasetError::Parse(
                lineno,
                format!("expected 11 fields, got {}", fields.len()),
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, DatasetError> {
            s.parse()
                .map_err(|_| DatasetError::Parse(lineno, format!("bad {what}: '{s}'")))
        };
        let opt_time = |s: &str, what: &str| -> Result<Option<SimTime>, DatasetError> {
            if s.is_empty() {
                Ok(None)
            } else {
                Ok(Some(SimTime::from_micros(parse_u64(s, what)?)))
            }
        };
        let opt_f64 = |s: &str| -> f64 {
            if s.is_empty() {
                f64::NAN
            } else {
                s.parse().unwrap_or(f64::NAN)
            }
        };
        let fate = fate_from(fields[6])
            .ok_or_else(|| DatasetError::Parse(lineno, format!("bad fate '{}'", fields[6])))?;
        records.push(PacketRecord {
            seq: parse_u64(fields[0], "seq")?,
            t_arrival: SimTime::from_micros(parse_u64(fields[1], "t_arrival")?),
            t_service_start: opt_time(fields[2], "t_service_start")?,
            t_done: opt_time(fields[3], "t_done")?,
            tries: parse_u64(fields[4], "tries")? as u8,
            queue_depth: parse_u64(fields[5], "queue_depth")? as usize,
            fate,
            sender_acked: fields[7] == "true",
            last_rssi_dbm: opt_f64(fields[8]),
            last_snr_db: opt_f64(fields[9]),
            last_lqi: parse_u64(fields[10], "lqi")? as u8,
        });
    }
    Ok(Trace {
        config_line,
        records,
    })
}

/// Convenience: simulates `config` and streams the trace to `path`.
///
/// Records flow through a [`CsvStreamSink`] as the simulation produces
/// them, so peak memory stays O(1) in the packet count.
///
/// # Errors
///
/// Propagates dataset and I/O errors.
pub fn export_to_file(
    config: StackConfig,
    options: wsn_link_sim::simulation::SimOptions,
    path: &std::path::Path,
) -> Result<usize, DatasetError> {
    let mut options = options;
    options.record_packets = false;
    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut sink = CsvStreamSink::with_config(file, &config)?;
    wsn_link_sim::simulation::LinkSimulation::new(config, options).run_with_sink(&mut sink);
    let (_, written) = sink.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_link_sim::simulation::{LinkSimulation, SimOptions};

    fn outcome() -> SimOutcome {
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(11)
            .payload_bytes(80)
            .build()
            .unwrap();
        LinkSimulation::new(cfg, SimOptions::quick(120)).run()
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let out = outcome();
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, &out).unwrap();
        assert_eq!(written, 120);
        let trace = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace.records.len(), 120);
        assert!(trace.config_line.unwrap().contains("35m"));
        let original = out.records.unwrap();
        for (a, b) in original.iter().zip(&trace.records) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.t_arrival, b.t_arrival);
            assert_eq!(a.t_done, b.t_done);
            assert_eq!(a.tries, b.tries);
            assert_eq!(a.fate, b.fate);
            assert_eq!(a.sender_acked, b.sender_acked);
            // Shortest-round-trip formatting reproduces the exact bits.
            if a.last_rssi_dbm.is_finite() {
                assert_eq!(a.last_rssi_dbm.to_bits(), b.last_rssi_dbm.to_bits());
                assert_eq!(a.last_snr_db.to_bits(), b.last_snr_db.to_bits());
            }
        }
    }

    #[test]
    fn stream_sink_matches_batch_write() {
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(11)
            .payload_bytes(80)
            .build()
            .unwrap();

        // Batch path: record in memory, then write.
        let out = LinkSimulation::new(cfg, SimOptions::quick(120)).run();
        let mut batch = Vec::new();
        write_trace(&mut batch, &out).unwrap();

        // Streaming path: identical bytes, no record buffering.
        let mut opts = SimOptions::quick(120);
        opts.record_packets = false;
        let mut sink = CsvStreamSink::with_config(Vec::new(), &cfg).unwrap();
        LinkSimulation::new(cfg, opts).run_with_sink(&mut sink);
        let (streamed, written) = sink.finish().unwrap();

        assert_eq!(written, 120);
        assert_eq!(batch, streamed);
    }

    #[test]
    fn trace_statistics_match_metrics() {
        let out = outcome();
        let mut buf = Vec::new();
        write_trace(&mut buf, &out).unwrap();
        let trace = read_trace(buf.as_slice()).unwrap();
        let m = out.metrics();
        let expected_ratio = m.delivered as f64 / m.generated as f64;
        assert!((trace.delivery_ratio() - expected_ratio).abs() < 1e-12);
    }

    #[test]
    fn missing_records_is_an_error() {
        let cfg = StackConfig::default();
        let out = LinkSimulation::new(
            cfg,
            SimOptions {
                record_packets: false,
                ..SimOptions::quick(10)
            },
        )
        .run();
        let mut buf = Vec::new();
        assert!(matches!(
            write_trace(&mut buf, &out),
            Err(DatasetError::NoRecords)
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad = format!("{HEADER}\n1,2,3\n");
        match read_trace(bad.as_bytes()) {
            Err(DatasetError::Parse(line, what)) => {
                assert_eq!(line, 2);
                assert!(what.contains("11 fields"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_fate = format!("{HEADER}\n0,0,,,0,0,vanished,false,,,0\n");
        assert!(matches!(
            read_trace(bad_fate.as_bytes()),
            Err(DatasetError::Parse(2, _))
        ));
    }

    #[test]
    fn export_to_file_writes_csv() {
        let dir = std::env::temp_dir().join("wsn_linkconf_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let cfg = StackConfig::default();
        let n = export_to_file(cfg, SimOptions::quick(40), &path).unwrap();
        assert_eq!(n, 40);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# config:"));
        assert!(text.lines().count() >= 42);
        std::fs::remove_file(&path).unwrap();
    }
}
