//! Table II — system utilization examples from the service-time model,
//! with a simulated cross-check.
//!
//! Paper rows (`Tpkt = 30 ms`, `lD = 110`, `NmaxTries = 3`):
//!
//! | SNR | T_service | ρ |
//! |-----|-----------|------|
//! | 10  | 37.08 ms  | 1.236 |
//! | 20  | 21.39 ms  | 0.713 |
//! | 30  | 18.52 ms  | 0.617 |
//!
//! The simulation check pins the mean SNR exactly by placing the ideal
//! (fading-free, constant-noise) channel at the distance that produces
//! each target SNR at maximum power.

use wsn_link_sim::traffic::TrafficModel;
use wsn_models::service_time::ServiceTimeModel;
use wsn_params::config::StackConfig;
use wsn_radio::cc2420;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::pathloss::PathLoss;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// The SNR rows of the paper's table, dB.
pub const SNRS: [f64; 3] = [10.0, 20.0, 30.0];

/// Paper values for comparison: `(T_service ms, rho)`.
pub const PAPER: [(f64, f64); 3] = [(37.08, 1.236), (21.39, 0.713), (18.52, 0.617)];

/// Distance at which the ideal channel at max power yields `snr` dB.
fn distance_for_snr(snr: f64) -> f64 {
    // SNR = Ptx_dBm − PL(d) + 95 with Ptx = 0 dBm.
    let pl = PathLoss::paper_hallway();
    let target_loss = -cc2420::SENSITIVITY_DBM - snr; // 95 − snr
    10f64.powf((target_loss - pl.reference_loss_db) / (10.0 * pl.exponent))
}

fn config_at(snr: f64) -> StackConfig {
    StackConfig::builder()
        .distance_m(distance_for_snr(snr))
        .power_level(31)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()
        .expect("values are valid")
}

/// Runs the Table II reproduction.
pub fn run(scale: Scale) -> Report {
    let model = ServiceTimeModel::paper();
    let configs: Vec<StackConfig> = SNRS.iter().map(|&s| config_at(s)).collect();
    let campaign = Campaign::new(scale).with_channel(ChannelConfig::ideal());
    // Use periodic traffic like the paper's workload.
    let results = campaign
        .with_traffic(TrafficModel::Periodic)
        .run_configs(&configs);

    let mut table = Table::new(vec![
        "snr_db",
        "paper_Tservice_ms",
        "model_Tservice_ms",
        "sim_Tservice_ms",
        "paper_rho",
        "model_rho",
        "sim_utilization",
    ]);
    for ((&snr, &(paper_t, paper_rho)), result) in SNRS.iter().zip(PAPER.iter()).zip(results.iter())
    {
        let cfg = config_at(snr);
        let model_t =
            model.plugin_service_time_s(snr, cfg.payload, cfg.max_tries, cfg.retry_delay) * 1e3;
        let model_rho = model.utilization(snr, &cfg);
        table.push_row(vec![
            fnum(snr),
            fnum(paper_t),
            fnum(model_t),
            fnum(result.metrics.service_mean_ms),
            fnum(paper_rho),
            fnum(model_rho),
            fnum(result.metrics.utilization),
        ]);
    }

    let mut report = Report::new(
        "table02",
        "Table II: system utilization via the service-time model (Eqs. 5-6, 9)",
    );
    report.push(
        "Tpkt = 30 ms, lD = 110, NmaxTries = 3",
        table,
        vec![
            "The SNR=10 row exceeds capacity (rho > 1): its delay explodes in Fig. 15.".into(),
            "Simulated service times confirm the plug-in model within a few percent.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_within_ten_percent() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let paper_t: f64 = row[1].parse().unwrap();
            let model_t: f64 = row[2].parse().unwrap();
            assert!(
                (model_t - paper_t).abs() / paper_t < 0.10,
                "model {model_t} vs paper {paper_t}"
            );
        }
    }

    #[test]
    fn sim_matches_model_within_ten_percent() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let model_t: f64 = row[2].parse().unwrap();
            let sim_t: f64 = row[3].parse().unwrap();
            assert!(
                (sim_t - model_t).abs() / model_t < 0.10,
                "sim {sim_t} vs model {model_t}"
            );
        }
    }

    #[test]
    fn snr10_row_is_overloaded() {
        let report = run(Scale::Quick);
        let rho: f64 = report.sections[0].table.rows[0][5].parse().unwrap();
        assert!(rho > 1.0, "rho={rho}");
        // Measured utilization saturates at ~1 under overload.
        let sim_util: f64 = report.sections[0].table.rows[0][6].parse().unwrap();
        assert!(sim_util > 0.9, "sim_util={sim_util}");
    }
}
