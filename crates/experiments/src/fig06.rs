//! Fig. 6 — the joint effects of SNR and payload size on PER, including
//! the three joint-effect zones, plus the Eq. 3 re-fit.
//!
//! Sub-figures reproduced:
//! * (a) PER vs SNR pooled over payloads (grey zone / low-loss zone),
//! * (b) PER vs SNR per payload — the transition is *smoother* for larger
//!   payloads,
//! * (c) PER vs payload at fixed SNR levels — positive correlation whose
//!   magnitude depends on SNR,
//! * (d) the three joint-effect zones (5–12, 12–19, ≥19 dB),
//! * a re-fit of `PER = α · lD · exp(β · SNR)` against the paper's
//!   α = 0.0128, β = −0.15.

use wsn_models::fit::{fit_exp_surface, SurfacePoint};
use wsn_models::zones::Zone;
use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::{mean_of, GRID_DISTANCES, GRID_PAYLOADS, GRID_POWERS};

/// One PER measurement point.
#[derive(Debug, Clone, Copy)]
pub struct PerPoint {
    /// Mean SNR of the configuration, dB.
    pub snr_db: f64,
    /// Payload size, bytes.
    pub payload_bytes: u16,
    /// Measured packet error rate (Eq. 1).
    pub per: f64,
}

/// Measures PER across the grid (single transmission, light load).
pub fn measure(scale: Scale) -> Vec<PerPoint> {
    let mut configs: Vec<StackConfig> = Vec::new();
    let base = |d: f64, p: u8, l: u16| {
        StackConfig::builder()
            .distance_m(d)
            .power_level(p)
            .payload_bytes(l)
            .max_tries(1)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(100)
            .build()
            .expect("grid values are valid")
    };
    // Coarse coverage of the whole grid at three payloads…
    for &d in &GRID_DISTANCES {
        for &p in &GRID_POWERS {
            for l in [5u16, 50, 110] {
                configs.push(base(d, p, l));
            }
        }
    }
    // …plus the full payload axis on the 35 m link.
    for &p in &GRID_POWERS {
        for &l in &GRID_PAYLOADS {
            if ![5u16, 50, 110].contains(&l) {
                configs.push(base(35.0, p, l));
            }
        }
    }

    let campaign = Campaign::new(scale);
    campaign
        .run_configs(&configs)
        .into_iter()
        .map(|r| PerPoint {
            snr_db: r.metrics.mean_snr_db,
            payload_bytes: r.config.payload.bytes(),
            per: r.metrics.per,
        })
        .collect()
}

fn bucket(snr: f64) -> i64 {
    snr.round() as i64
}

fn bucket_mean(points: &[PerPoint], b: i64, payload: Option<u16>) -> Option<f64> {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| bucket(p.snr_db) == b && payload.is_none_or(|l| p.payload_bytes == l))
        .map(|p| p.per)
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(mean_of(vals.into_iter()))
    }
}

/// Runs the Fig. 6 reproduction.
pub fn run(scale: Scale) -> Report {
    let points = measure(scale);
    let mut report = Report::new("fig06", "Fig. 6: joint effects of SNR and payload on PER");

    // (a)+(b): PER vs SNR, pooled and per payload.
    let buckets: Vec<i64> = {
        let mut bs: Vec<i64> = points.iter().map(|p| bucket(p.snr_db)).collect();
        bs.sort_unstable();
        bs.dedup();
        bs
    };
    let mut ab = Table::new(vec![
        "snr_db",
        "per_all",
        "per_lD5",
        "per_lD50",
        "per_lD110",
    ]);
    for &b in &buckets {
        let cells = [
            bucket_mean(&points, b, None),
            bucket_mean(&points, b, Some(5)),
            bucket_mean(&points, b, Some(50)),
            bucket_mean(&points, b, Some(110)),
        ];
        if cells[0].is_none() {
            continue;
        }
        let mut row = vec![format!("{b}")];
        for c in cells {
            row.push(c.map_or("-".to_string(), fnum));
        }
        ab.push_row(row);
    }
    report.push(
        "(a)/(b): PER vs SNR, pooled and per payload",
        ab,
        vec![
            "PER falls with SNR; for lD = 110 it only reaches ~0.1 near 19 dB.".into(),
            "The transition is smoother (shallower in SNR) for larger payloads.".into(),
        ],
    );

    // (c): PER vs payload at fixed SNR levels.
    let targets = [6i64, 9, 12, 15, 19, 25];
    let mut c = Table::new({
        let mut h = vec!["payload_B".to_string()];
        h.extend(targets.iter().map(|t| format!("snr~{t}dB")));
        h
    });
    for &l in &GRID_PAYLOADS {
        let mut row = vec![format!("{l}")];
        for &t in &targets {
            // Pool the three nearest buckets for stability.
            let vals: Vec<f64> = points
                .iter()
                .filter(|p| p.payload_bytes == l && (bucket(p.snr_db) - t).abs() <= 1)
                .map(|p| p.per)
                .collect();
            row.push(if vals.is_empty() {
                "-".to_string()
            } else {
                fnum(mean_of(vals.into_iter()))
            });
        }
        c.push_row(row);
    }
    report.push(
        "(c): PER vs payload size at fixed SNR",
        c,
        vec!["PER grows with payload; the magnitude of the effect shrinks as SNR rises.".into()],
    );

    // (d): the three joint-effect zones.
    let mut d = Table::new(vec!["zone", "per_minimal_lD", "per_maximal_lD", "per_avg"]);
    for zone in [Zone::HighImpact, Zone::MediumImpact, Zone::LowImpact] {
        let in_zone = |p: &&PerPoint| Zone::of(p.snr_db) == zone;
        let min_ld = mean_of(
            points
                .iter()
                .filter(in_zone)
                .filter(|p| p.payload_bytes == 5)
                .map(|p| p.per),
        );
        let max_ld = mean_of(
            points
                .iter()
                .filter(in_zone)
                .filter(|p| p.payload_bytes == 110)
                .map(|p| p.per),
        );
        let avg = mean_of(points.iter().filter(in_zone).map(|p| p.per));
        d.push_row(vec![
            zone.to_string(),
            fnum(min_ld),
            fnum(max_ld),
            fnum(avg),
        ]);
    }
    report.push(
        "(d): the three joint-effect zones",
        d,
        vec!["High-impact: large average PER, strongly payload dependent; low-impact: both effects vanish.".into()],
    );

    // Eq. 3 re-fit.
    let fit_points: Vec<SurfacePoint> = points
        .iter()
        .filter(|p| p.snr_db >= 5.0 && p.per < 0.98)
        .map(|p| SurfacePoint {
            payload_bytes: p.payload_bytes as f64,
            snr_db: p.snr_db,
            value: p.per,
        })
        .collect();
    let fit = fit_exp_surface(&fit_points).expect("enough PER points");
    let mut f = Table::new(vec!["constant", "paper", "refit"]);
    f.push_row(vec![
        "alpha".to_string(),
        "0.0128".to_string(),
        fnum(fit.surface.alpha),
    ]);
    f.push_row(vec![
        "beta".to_string(),
        "-0.15".to_string(),
        fnum(fit.surface.beta),
    ]);
    f.push_row(vec![
        "rss/n".to_string(),
        "-".to_string(),
        fnum(fit.rss / fit.n as f64),
    ]);
    report.push(
        "Eq. 3 re-fit from simulated measurements",
        f,
        vec![
            "Constants re-fitted from the synthetic campaign land near the published values."
                .into(),
        ],
    );
    report
}

/// Exposes the PER model-vs-paper check used by integration tests: the
/// refit α and β from a quick campaign.
pub fn refit_constants(scale: Scale) -> (f64, f64) {
    let points = measure(scale);
    let fit_points: Vec<SurfacePoint> = points
        .iter()
        .filter(|p| p.snr_db >= 5.0 && p.per < 0.98)
        .map(|p| SurfacePoint {
            payload_bytes: p.payload_bytes as f64,
            snr_db: p.snr_db,
            value: p.per,
        })
        .collect();
    let fit = fit_exp_surface(&fit_points).expect("enough PER points");
    (fit.surface.alpha, fit.surface.beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_larger_payload_larger_per() {
        let points = measure(Scale::Quick);
        // Compare payload 5 vs 110 within the 10-14 dB band.
        let small = mean_of(
            points
                .iter()
                .filter(|p| p.payload_bytes == 5 && (10.0..14.0).contains(&p.snr_db))
                .map(|p| p.per),
        );
        let large = mean_of(
            points
                .iter()
                .filter(|p| p.payload_bytes == 110 && (10.0..14.0).contains(&p.snr_db))
                .map(|p| p.per),
        );
        assert!(large > small, "large={large} small={small}");
    }

    #[test]
    fn refit_is_near_published_constants() {
        let (alpha, beta) = refit_constants(Scale::Quick);
        // The channel ground truth is Eq. 3 + fading + ACK loss, so the
        // refit should land in the neighbourhood of the published fit.
        assert!((alpha - 0.0128).abs() < 0.012, "alpha={alpha}");
        assert!((beta - -0.15).abs() < 0.08, "beta={beta}");
    }

    #[test]
    fn zone_table_shows_decreasing_average_per() {
        let report = run(Scale::Quick);
        let zone_rows = &report.sections[2].table.rows;
        let avg: Vec<f64> = zone_rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(avg[0] > avg[1] && avg[1] > avg[2], "{avg:?}");
    }
}
