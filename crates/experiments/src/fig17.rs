//! Fig. 17 — the decomposition of packet loss into queuing loss and radio
//! loss (`lD = 110`, `Tpkt = 30 ms`).
//!
//! The paper's trade-off: in the grey zone, each extra allowed
//! transmission cuts `PLR_radio` but drives the utilization towards 1,
//! converting the saved radio loss into queue overflow — unless a large
//! queue absorbs it.

use wsn_models::loss::LossModel;
use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};
use crate::sweep::GRID_POWERS;

/// The `(NmaxTries, Qmax)` combinations of the four sub-plots.
pub const COMBOS: [(u8, u16); 4] = [(1, 1), (8, 1), (1, 30), (8, 30)];

/// Runs the Fig. 17 reproduction.
pub fn run(scale: Scale) -> Report {
    let mut configs = Vec::new();
    for &(tries, qmax) in &COMBOS {
        for &p in &GRID_POWERS {
            configs.push(
                StackConfig::builder()
                    .distance_m(35.0)
                    .power_level(p)
                    .payload_bytes(110)
                    .max_tries(tries)
                    .retry_delay_ms(30)
                    .queue_cap(qmax)
                    .packet_interval_ms(30)
                    .build()
                    .expect("grid values are valid"),
            );
        }
    }
    let results = Campaign::new(scale).run_configs(&configs);
    let model = LossModel::paper();

    let mut report = Report::new(
        "fig17",
        "Fig. 17: queuing loss vs radio loss (lD = 110, Tpkt = 30 ms)",
    );
    for &(tries, qmax) in &COMBOS {
        let mut table = Table::new(vec![
            "snr_db",
            "sim_plr_queue",
            "sim_plr_radio",
            "model_plr_queue",
            "model_plr_radio",
            "model_rho",
        ]);
        for &p in &GRID_POWERS {
            let r = results
                .iter()
                .find(|r| {
                    r.config.power.level() == p
                        && r.config.max_tries.get() == tries
                        && r.config.queue_cap.get() == qmax
                })
                .expect("config simulated");
            let snr = r.metrics.mean_snr_db;
            let est = model.estimate(snr, &r.config);
            table.push_row(vec![
                fnum(snr),
                fnum(r.metrics.plr_queue),
                fnum(r.metrics.plr_radio),
                fnum(est.plr_queue),
                fnum(est.plr_radio),
                fnum(est.rho),
            ]);
        }
        table.rows.sort_by(|a, b| {
            a[0].parse::<f64>()
                .unwrap()
                .partial_cmp(&b[0].parse::<f64>().unwrap())
                .unwrap()
        });
        report.push(
            &format!("NmaxTries = {tries}, Qmax = {qmax}"),
            table,
            vec!["Retransmissions trade radio loss for queue loss once rho approaches 1.".into()],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grey_row(report: &Report, section: usize) -> (f64, f64) {
        let row = &report.sections[section].table.rows[0];
        (row[1].parse().unwrap(), row[2].parse().unwrap())
    }

    #[test]
    fn retx_converts_radio_loss_into_queue_loss() {
        let report = run(Scale::Quick);
        // Sections: 0 = (N1,Q1), 1 = (N8,Q1).
        let (q_loss_n1, r_loss_n1) = grey_row(&report, 0);
        let (q_loss_n8, r_loss_n8) = grey_row(&report, 1);
        assert!(r_loss_n8 < r_loss_n1, "radio loss did not fall with retx");
        assert!(q_loss_n8 > q_loss_n1, "queue loss did not rise with retx");
    }

    #[test]
    fn large_queue_absorbs_queue_loss_at_moderate_load() {
        // In the deepest grey zone rho >> 1 and no finite buffer helps
        // (both configurations lose ~1 − 1/rho), so look for a mid-SNR row
        // where the 30-deep queue clearly absorbs overflow that Qmax=1
        // cannot.
        let report = run(Scale::Quick);
        let small_rows = &report.sections[1].table.rows; // (N8, Q1)
        let large_rows = &report.sections[3].table.rows; // (N8, Q30)
        let mut absorbed = false;
        for (s, l) in small_rows.iter().zip(large_rows.iter()) {
            let q_small: f64 = s[1].parse().unwrap();
            let q_large: f64 = l[1].parse().unwrap();
            if q_small > 0.1 && q_large < q_small - 0.1 {
                absorbed = true;
            }
        }
        assert!(
            absorbed,
            "no SNR row where the deep queue absorbed overflow"
        );
    }

    #[test]
    fn high_snr_rows_are_nearly_lossless() {
        let report = run(Scale::Quick);
        for section in &report.sections {
            let last = section.table.rows.last().unwrap();
            let q: f64 = last[1].parse().unwrap();
            let r: f64 = last[2].parse().unwrap();
            assert!(q + r < 0.1, "{}: residual loss {q}+{r}", section.heading);
        }
    }
}
