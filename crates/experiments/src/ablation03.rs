//! Ablation 3: arrival-process sensitivity.
//!
//! The paper's workload is strictly periodic; its queue-loss reasoning
//! (Sec. VI–VII) leans on ρ = T_service/Tpkt. This ablation replays the
//! same configurations under Poisson arrivals of equal mean rate: burstier
//! arrivals overflow small queues *before* ρ reaches 1, quantifying how
//! far the paper's periodic-traffic numbers transfer to irregular
//! workloads.

use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;

use crate::campaign::{Campaign, Scale};
use crate::report::{fnum, Report, Table};

/// The `(Tpkt ms, Qmax)` operating points compared.
pub const POINTS: [(u32, u16); 4] = [(30, 1), (30, 30), (50, 1), (50, 30)];

fn config(tpkt: u32, qmax: u16) -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(11) // ≈19 dB: stable but not idle
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(qmax)
        .packet_interval_ms(tpkt)
        .build()
        .expect("valid constants")
}

/// Runs the arrival-process ablation.
pub fn run(scale: Scale) -> Report {
    let mut table = Table::new(vec![
        "Tpkt_ms",
        "Qmax",
        "periodic_plr_queue",
        "poisson_plr_queue",
        "periodic_delay_ms",
        "poisson_delay_ms",
    ]);
    for (i, &(tpkt, qmax)) in POINTS.iter().enumerate() {
        let cfg = config(tpkt, qmax);
        let periodic = Campaign::new(scale)
            .with_traffic(TrafficModel::Periodic)
            .with_seed(1000 + i as u64)
            .run_one(cfg, 0)
            .metrics;
        let poisson = Campaign::new(scale)
            .with_traffic(TrafficModel::Poisson)
            .with_seed(2000 + i as u64)
            .run_one(cfg, 0)
            .metrics;
        table.push_row(vec![
            format!("{tpkt}"),
            format!("{qmax}"),
            fnum(periodic.plr_queue),
            fnum(poisson.plr_queue),
            fnum(periodic.delay_mean_ms),
            fnum(poisson.delay_mean_ms),
        ]);
    }

    let mut report = Report::new(
        "ablation03",
        "Ablation: periodic vs Poisson arrivals (burstiness sensitivity)",
    );
    report.push(
        "Queue loss and delay at equal mean rate (Ptx = 11 at 35 m, lD = 110)",
        table,
        vec![
            "With Qmax = 1, Poisson bursts overflow the queue even though rho < 1 — the paper's periodic workload is the best case for small buffers.".into(),
            "With Qmax = 30 both processes are absorbed; delay rises moderately under Poisson.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_overflows_small_queues_more() {
        let report = run(Scale::Quick);
        // Row 0: Tpkt=30, Qmax=1.
        let row = &report.sections[0].table.rows[0];
        let periodic: f64 = row[2].parse().unwrap();
        let poisson: f64 = row[3].parse().unwrap();
        assert!(
            poisson > periodic + 0.02,
            "poisson {poisson} !> periodic {periodic}"
        );
    }

    #[test]
    fn deep_queue_absorbs_both() {
        let report = run(Scale::Quick);
        // Row 1: Tpkt=30, Qmax=30.
        let row = &report.sections[0].table.rows[1];
        let periodic: f64 = row[2].parse().unwrap();
        let poisson: f64 = row[3].parse().unwrap();
        assert!(periodic < 0.02 && poisson < 0.1, "{periodic} / {poisson}");
    }

    #[test]
    fn poisson_delay_not_lower() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let periodic: f64 = row[4].parse().unwrap();
            let poisson: f64 = row[5].parse().unwrap();
            assert!(poisson > periodic * 0.8, "{poisson} vs {periodic}");
        }
    }
}
