//! Extension 4: model generalization — cross-validated Eq. 3.
//!
//! The paper fits its empirical models on the *whole* campaign; its
//! discussion (Sec. VIII-D) asks how generic the models are. This
//! experiment answers the in-domain half of that question by
//! cross-validation: fit the PER surface on a *subset* of payload sizes
//! (or the low-SNR half of the range) and score the predictions on the
//! held-out data. Small held-out error means the `α·lD·exp(β·SNR)` form
//! itself captures the payload/SNR structure, rather than memorising the
//! grid.

use wsn_models::fit::{fit_exp_surface, SurfaceFit, SurfacePoint};

use crate::campaign::Scale;
use crate::fig06::{measure, PerPoint};
use crate::report::{fnum, Report, Table};

fn to_surface_points<'a>(points: impl Iterator<Item = &'a PerPoint>) -> Vec<SurfacePoint> {
    points
        .filter(|p| p.snr_db >= 5.0 && p.per < 0.98)
        .map(|p| SurfacePoint {
            payload_bytes: p.payload_bytes as f64,
            snr_db: p.snr_db,
            value: p.per,
        })
        .collect()
}

fn rmse(fit: &SurfaceFit, points: &[SurfacePoint]) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    let sse: f64 = points
        .iter()
        .map(|p| {
            let pred = fit.surface.alpha * p.payload_bytes * (fit.surface.beta * p.snr_db).exp();
            (pred - p.value).powi(2)
        })
        .sum();
    (sse / points.len() as f64).sqrt()
}

/// One cross-validation split: fit on `train`, score on both.
fn split_row(
    label: &str,
    train: Vec<SurfacePoint>,
    test: Vec<SurfacePoint>,
) -> Option<(String, SurfaceFit, f64, f64)> {
    let fit = fit_exp_surface(&train).ok()?;
    let train_rmse = rmse(&fit, &train);
    let test_rmse = rmse(&fit, &test);
    Some((label.to_string(), fit, train_rmse, test_rmse))
}

/// Runs the cross-validation extension experiment.
pub fn run(scale: Scale) -> Report {
    let data = measure(scale);

    let mut table = Table::new(vec!["split", "alpha", "beta", "train_rmse", "heldout_rmse"]);

    // Split 1: hold out large payloads (extrapolate the lD axis up).
    let rows = vec![
        split_row(
            "fit lD<=50, test lD>50",
            to_surface_points(data.iter().filter(|p| p.payload_bytes <= 50)),
            to_surface_points(data.iter().filter(|p| p.payload_bytes > 50)),
        ),
        // Split 2: hold out small payloads (extrapolate down).
        split_row(
            "fit lD>=50, test lD<50",
            to_surface_points(data.iter().filter(|p| p.payload_bytes >= 50)),
            to_surface_points(data.iter().filter(|p| p.payload_bytes < 50)),
        ),
        // Split 3: hold out the high-SNR half (extrapolate along SNR).
        split_row(
            "fit snr<15, test snr>=15",
            to_surface_points(data.iter().filter(|p| p.snr_db < 15.0)),
            to_surface_points(data.iter().filter(|p| p.snr_db >= 15.0)),
        ),
        // Reference: fit and test on everything.
        split_row(
            "fit all, test all",
            to_surface_points(data.iter()),
            to_surface_points(data.iter()),
        ),
    ];

    for row in rows.into_iter().flatten() {
        let (label, fit, train_rmse, test_rmse) = row;
        table.push_row(vec![
            label,
            fnum(fit.surface.alpha),
            fnum(fit.surface.beta),
            fnum(train_rmse),
            fnum(test_rmse),
        ]);
    }

    let mut report = Report::new(
        "ext04",
        "Extension: cross-validated PER model (generalization of Eq. 3)",
    );
    report.push(
        "Held-out prediction error of alpha*lD*exp(beta*SNR)",
        table,
        vec![
            "Held-out RMSE stays within a small factor of the in-sample RMSE: the exponential surface generalizes across payload sizes and along the SNR axis.".into(),
            "This is the in-domain half of the paper's Sec. VIII-D genericity question; cross-environment transfer would need new campaigns.".into(),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heldout_error_is_bounded() {
        let report = run(Scale::Quick);
        let rows = &report.sections[0].table.rows;
        assert_eq!(rows.len(), 4);
        let reference_rmse: f64 = rows[3][4].parse().unwrap();
        for row in &rows[..3] {
            let heldout: f64 = row[4].parse().unwrap();
            // Extrapolation costs accuracy but stays the same order of
            // magnitude as the full fit.
            assert!(
                heldout < reference_rmse * 6.0 + 0.05,
                "{}: heldout rmse {heldout} vs reference {reference_rmse}",
                row[0]
            );
        }
    }

    #[test]
    fn fitted_constants_stay_in_the_published_neighbourhood() {
        let report = run(Scale::Quick);
        for row in &report.sections[0].table.rows {
            let alpha: f64 = row[1].parse().unwrap();
            let beta: f64 = row[2].parse().unwrap();
            assert!(alpha > 0.001 && alpha < 0.05, "{}: alpha={alpha}", row[0]);
            assert!(beta > -0.35 && beta < -0.05, "{}: beta={beta}", row[0]);
        }
    }
}
