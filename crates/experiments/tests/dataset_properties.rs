//! Property tests for the per-packet dataset codec: writing any packet
//! record as CSV and reading it back must be lossless — including absent
//! service timestamps, every [`PacketFate`], and exact f64 bits.

use proptest::prelude::*;

use wsn_experiments::dataset::{read_trace, write_trace};
use wsn_link_sim::record::{PacketFate, PacketRecord};
use wsn_link_sim::simulation::{LinkSimulation, SimOptions, SimOutcome};
use wsn_params::config::StackConfig;
use wsn_sim_engine::time::SimTime;

/// Strategy for an arbitrary record covering the whole schema: optional
/// timestamps, all three fates, finite floats of either sign.
fn arb_record() -> impl Strategy<Value = PacketRecord> {
    (
        any::<u64>(),
        0u64..10_000_000,
        (
            prop::option::of(0u64..10_000_000),
            prop::option::of(0u64..10_000_000),
        ),
        (0u8..8, 0usize..100),
        prop::sample::select(vec![
            PacketFate::QueueDropped,
            PacketFate::RadioLost,
            PacketFate::Delivered,
        ]),
        any::<bool>(),
        (-120.0f64..10.0, -30.0f64..40.0, any::<u8>()),
    )
        .prop_map(
            |(seq, arrival, (service, done), (tries, depth), fate, acked, (rssi, snr, lqi))| {
                PacketRecord {
                    seq,
                    t_arrival: SimTime::from_micros(arrival),
                    t_service_start: service.map(SimTime::from_micros),
                    t_done: done.map(SimTime::from_micros),
                    tries,
                    queue_depth: depth,
                    fate,
                    sender_acked: acked,
                    last_rssi_dbm: rssi,
                    last_snr_db: snr,
                    last_lqi: lqi,
                }
            },
        )
}

/// Builds a [`SimOutcome`] shell carrying exactly `records`, so the batch
/// writer can serialise them.
fn outcome_with(records: Vec<PacketRecord>) -> SimOutcome {
    let mut outcome = LinkSimulation::new(StackConfig::default(), SimOptions::quick(1)).run();
    outcome.records = Some(records);
    outcome
}

proptest! {
    #[test]
    fn csv_round_trip_is_lossless(records in prop::collection::vec(arb_record(), 0..40)) {
        let outcome = outcome_with(records.clone());
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, &outcome).unwrap();
        prop_assert_eq!(written, records.len());

        let trace = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(trace.records.len(), records.len());
        for (a, b) in records.iter().zip(&trace.records) {
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(a.t_arrival, b.t_arrival);
            prop_assert_eq!(a.t_service_start, b.t_service_start);
            prop_assert_eq!(a.t_done, b.t_done);
            prop_assert_eq!(a.tries, b.tries);
            prop_assert_eq!(a.queue_depth, b.queue_depth);
            prop_assert_eq!(a.fate, b.fate);
            prop_assert_eq!(a.sender_acked, b.sender_acked);
            // Shortest-round-trip float formatting: exact bit equality.
            prop_assert_eq!(a.last_rssi_dbm.to_bits(), b.last_rssi_dbm.to_bits());
            prop_assert_eq!(a.last_snr_db.to_bits(), b.last_snr_db.to_bits());
            prop_assert_eq!(a.last_lqi, b.last_lqi);
        }
    }

    #[test]
    fn non_finite_floats_become_nan(seq in any::<u64>()) {
        let mut record = PacketRecord {
            seq,
            t_arrival: SimTime::from_micros(0),
            t_service_start: None,
            t_done: None,
            tries: 0,
            queue_depth: 0,
            fate: PacketFate::QueueDropped,
            sender_acked: false,
            last_rssi_dbm: f64::NEG_INFINITY,
            last_snr_db: f64::NAN,
            last_lqi: 0,
        };
        record.last_rssi_dbm = f64::INFINITY;
        let outcome = outcome_with(vec![record]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &outcome).unwrap();
        let trace = read_trace(buf.as_slice()).unwrap();
        prop_assert!(trace.records[0].last_rssi_dbm.is_nan());
        prop_assert!(trace.records[0].last_snr_db.is_nan());
    }
}
