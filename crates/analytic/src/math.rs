//! Numeric helpers for the closed-form evaluator: an `erf`
//! approximation (libm is unavailable in `std` Rust), Gaussian quadrature
//! nodes, and quantiles of normal mixtures.

use std::f64::consts::SQRT_2;

/// Error function, Abramowitz & Stegun 7.1.26 (|error| < 1.5 × 10⁻⁷ —
/// three orders of magnitude below the analytic-vs-sim error budget).
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / SQRT_2))
}

/// Quadrature nodes `(z, w)` for `E[f(Z)]`, `Z ~ N(0, 1)`: composite
/// Simpson over `z ∈ [−4, 4]` with the Gaussian density folded into the
/// weights, renormalized so `Σw = 1` (the ±4σ truncation carries
/// 6 × 10⁻⁵ of mass; renormalizing removes the bias).
///
/// `points` is rounded up to the next odd count (Simpson needs an even
/// number of intervals).
pub fn std_normal_nodes(points: usize) -> Vec<(f64, f64)> {
    let n = if points.is_multiple_of(2) {
        points + 1
    } else {
        points.max(3)
    };
    let h = 8.0 / (n - 1) as f64;
    let mut nodes = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        let z = -4.0 + i as f64 * h;
        let simpson = if i == 0 || i == n - 1 {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        let density = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let w = simpson * h / 3.0 * density;
        total += w;
        nodes.push((z, w));
    }
    for node in &mut nodes {
        node.1 /= total;
    }
    nodes
}

/// One component of a normal mixture (a degenerate `sd == 0` component is
/// a point mass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureComponent {
    /// Component weight (the caller normalizes the mixture).
    pub weight: f64,
    /// Component mean.
    pub mean: f64,
    /// Component standard deviation (0 = point mass).
    pub sd: f64,
}

/// CDF of a normal mixture at `t` (weights assumed to sum to 1).
pub fn mixture_cdf(components: &[MixtureComponent], t: f64) -> f64 {
    let mut acc = 0.0;
    for c in components {
        if c.weight == 0.0 {
            continue;
        }
        acc += if c.sd == 0.0 {
            if t >= c.mean {
                c.weight
            } else {
                0.0
            }
        } else {
            c.weight * normal_cdf((t - c.mean) / c.sd)
        };
    }
    acc
}

/// `q`-quantile of a normal mixture by bisection over `[lo, hi]`.
pub fn mixture_quantile(components: &[MixtureComponent], q: f64, lo: f64, hi: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..64 {
        if hi - lo < 1e-9 * hi.abs().max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if mixture_cdf(components, mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // (x, erf(x)) reference pairs.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ] {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn nodes_reproduce_gaussian_moments() {
        let nodes = std_normal_nodes(17);
        let m0: f64 = nodes.iter().map(|(_, w)| w).sum();
        let m1: f64 = nodes.iter().map(|(z, w)| w * z).sum();
        let m2: f64 = nodes.iter().map(|(z, w)| w * z * z).sum();
        assert!((m0 - 1.0).abs() < 1e-12);
        assert!(m1.abs() < 1e-12);
        // The ±4σ window clips ~1e-3 of z²-weighted mass; bounded
        // integrands (the PER curve) see only the 6e-5 tail.
        assert!((m2 - 1.0).abs() < 2e-3, "second moment {m2}");
    }

    #[test]
    fn nodes_integrate_smooth_functionals() {
        // E[e^{aZ}] = e^{a²/2}, the lognormal identity the PER curve hits.
        let nodes = std_normal_nodes(17);
        for a in [0.25, 0.5, 1.0] {
            let got: f64 = nodes.iter().map(|(z, w)| w * (a * z).exp()).sum();
            let want = (a * a / 2.0).exp();
            // e^z grows through the ±4σ clip, so the tolerance reflects
            // truncation, not Simpson error.
            assert!((got - want).abs() / want < 5e-3, "a={a}: {got} vs {want}");
        }
    }

    #[test]
    fn single_normal_quantiles_invert_the_cdf() {
        let comps = [MixtureComponent {
            weight: 1.0,
            mean: 10.0,
            sd: 2.0,
        }];
        let p50 = mixture_quantile(&comps, 0.5, 0.0, 100.0);
        let p95 = mixture_quantile(&comps, 0.95, 0.0, 100.0);
        assert!((p50 - 10.0).abs() < 1e-6);
        assert!((p95 - (10.0 + 1.6448536 * 2.0)).abs() < 1e-4, "p95={p95}");
    }

    #[test]
    fn point_mass_mixture_quantiles_are_exact() {
        let comps = [
            MixtureComponent {
                weight: 0.8,
                mean: 5.0,
                sd: 0.0,
            },
            MixtureComponent {
                weight: 0.2,
                mean: 20.0,
                sd: 0.0,
            },
        ];
        assert!((mixture_quantile(&comps, 0.5, 0.0, 30.0) - 5.0).abs() < 1e-6);
        assert!((mixture_quantile(&comps, 0.9, 0.0, 30.0) - 20.0).abs() < 1e-6);
    }
}
