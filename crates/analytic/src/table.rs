//! A shared memo of analytic evaluations.
//!
//! The evaluator is a pure function of `(config, channel, traffic,
//! packets)` — the campaign seed never enters it — so caching results is
//! semantically invisible: a hit is bit-identical to a recomputation.
//! This table is what turns the analytic engine's "microseconds per
//! configuration" into "nanoseconds per repeat": grid scans, benchmark
//! reps and serve traffic all revisit the same configurations, and a
//! revisit is one hash and one clone.
//!
//! Like [`LinkBudgetTable`](wsn_radio::budget::LinkBudgetTable), the table
//! is pinned to one [`ChannelConfig`]; callers must check
//! [`AnalyticTable::config`] before trusting a lookup for their channel
//! (the engine seams in `wsn-analytic` and `wsn-experiments` do).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::RwLock;

use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::simulation::SimOptions;
use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;
use wsn_radio::budget::LinkBudget;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::rng::splitmix64;

use crate::{evaluate, AnalyticReport};

/// Entry cap; past it the table is cleared wholesale. Grid campaigns top
/// out at a few thousand configurations, so eviction is a backstop against
/// unbounded serve workloads, not a tuning knob.
const MAX_ENTRIES: usize = 16_384;

/// A splitmix64-chained hasher: the keys are already uniformly-distributed
/// words (float bits, counters), so one multiply-xor round per word
/// replaces SipHash without losing spread — and the memo lookup is on the
/// bench-critical path.
#[derive(Default)]
pub struct SplitmixHasher(u64);

impl Hasher for SplitmixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64(self.0 ^ u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }
}

/// The semantic identity of one evaluation: the seven configuration words
/// (the same canonicalization `fast_seed` hashes), the packet budget and
/// the traffic model. Seed, horizon and trajectory are excluded because
/// the evaluator ignores them.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    words: [u64; 9],
}

fn key_of(config: &StackConfig, options: &SimOptions) -> Key {
    let traffic = match options.traffic {
        TrafficModel::Periodic => 0u64,
        TrafficModel::Poisson => 1,
        TrafficModel::Saturating => 2,
    };
    Key {
        words: [
            config.distance.meters().to_bits(),
            config.power.level() as u64,
            config.max_tries.get() as u64,
            config.retry_delay.millis() as u64,
            config.queue_cap.get() as u64,
            config.packet_interval.millis() as u64,
            config.payload.bytes() as u64,
            options.packets,
            traffic,
        ],
    }
}

/// A concurrent memo of `(config, packets, traffic) → (metrics, report)`
/// for one channel.
pub struct AnalyticTable {
    config: ChannelConfig,
    entries:
        RwLock<HashMap<Key, (LinkMetrics, AnalyticReport), BuildHasherDefault<SplitmixHasher>>>,
}

impl AnalyticTable {
    /// An empty table pinned to `config`.
    pub fn new(config: ChannelConfig) -> Self {
        AnalyticTable {
            config,
            entries: RwLock::new(HashMap::default()),
        }
    }

    /// The channel this table's entries were evaluated under.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Number of memoized evaluations.
    pub fn len(&self) -> usize {
        self.entries.read().expect("analytic table poisoned").len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the memoized evaluation of `config` under `options`,
    /// computing and storing it on first sight.
    ///
    /// `budget` is only called on a miss — a warm lookup costs one hash,
    /// one shared-lock read and one clone, never a link-budget
    /// computation. The caller is responsible for two contracts:
    /// `options.channel` matches [`AnalyticTable::config`], and the
    /// closure's budget describes `config`'s operating point under that
    /// channel.
    pub fn lookup_or_eval(
        &self,
        config: &StackConfig,
        options: &SimOptions,
        budget: impl FnOnce() -> LinkBudget,
    ) -> (LinkMetrics, AnalyticReport) {
        let key = key_of(config, options);
        if let Some(hit) = self
            .entries
            .read()
            .expect("analytic table poisoned")
            .get(&key)
        {
            return hit.clone();
        }
        let value = evaluate(config, options, budget());
        let mut entries = self.entries.write().expect("analytic table poisoned");
        if entries.len() >= MAX_ENTRIES {
            entries.clear();
        }
        entries.insert(key, value.clone());
        value
    }
}

impl std::fmt::Debug for AnalyticTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticTable")
            .field("config", &self.config)
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .build()
            .unwrap()
    }

    fn budget_for(options: &SimOptions, config: &StackConfig) -> LinkBudget {
        LinkBudget::compute(&options.channel, config.power, config.distance)
    }

    #[test]
    fn lookup_memoizes_and_repeats_bit_identically() {
        let options = SimOptions::quick(200);
        let table = AnalyticTable::new(options.channel);
        let config = cfg(23, 30.0);
        let budget = budget_for(&options, &config);
        let first = table.lookup_or_eval(&config, &options, || budget);
        assert_eq!(table.len(), 1);
        let second = table.lookup_or_eval(&config, &options, || budget);
        assert_eq!(table.len(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn key_distinguishes_every_semantic_dimension() {
        let options = SimOptions::quick(200);
        let table = AnalyticTable::new(options.channel);
        let base = cfg(23, 30.0);
        let budget = budget_for(&options, &base);
        table.lookup_or_eval(&base, &options, || budget);

        // A different configuration, packet budget or traffic model each
        // claims its own slot.
        let far = cfg(23, 35.0);
        table.lookup_or_eval(&far, &options, || budget_for(&options, &far));
        let more = SimOptions::quick(400);
        table.lookup_or_eval(&base, &more, || budget);
        let poisson = SimOptions::quick(200).with_traffic(TrafficModel::Poisson);
        table.lookup_or_eval(&base, &poisson, || budget);
        assert_eq!(table.len(), 4);

        // A different seed is the same evaluation.
        let reseeded = SimOptions::quick(200).with_seed(77);
        table.lookup_or_eval(&base, &reseeded, || budget);
        assert_eq!(table.len(), 4);
    }
}
