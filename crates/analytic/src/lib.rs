//! # wsn-analytic
//!
//! The analytic link engine: the third [`EngineMode`] next to the golden
//! event-driven simulator and the coalesced fast simulator. Instead of
//! sampling the CSMA-CA transaction, it *integrates* it — composing the
//! same per-attempt terms the fast engine draws (SPI load, uniform initial
//! backoff, geometric CCA busy loop, turnaround, frame airtime, ACK
//! receive/timeout, retry gap) as moments of a service-time distribution,
//! folding the paper's Eq. 3/7/8 loss chain through Gaussian quadrature
//! over the shadowing and noise mixtures, and feeding the first two service
//! moments into an M/G/1 queue (Pollaczek–Khinchine / Kingman, Eq. 9's ρ)
//! with an M/M/1/K blocking term for the finite transmit queue.
//!
//! The payoff is speed: a full [`LinkMetrics`] — loss split, goodput, the
//! delay distribution, utilization and energy per bit — in microseconds
//! per configuration instead of milliseconds, which turns exhaustive
//! parameter-grid scans (the `tune` pre-scan in `wsn-serve`) from a
//! simulation campaign into a function call.
//!
//! ## Where the closed form is honest — and where it approximates
//!
//! Exact (relative to the fast engine's sampling law):
//! - per-attempt timing terms and their first two moments,
//! - the truncated-geometric attempt count given per-attempt success
//!   probabilities,
//! - the M/M/1/K queue-blocking form (shared with [`wsn_models::predict`]).
//!
//! Approximate, by construction:
//! - **Quasi-static shadowing**: the simulators evolve shadowing as an
//!   AR(1) process *across attempts*; the analytic engine freezes one
//!   shadowing draw per packet (exact marginal, full intra-packet
//!   correlation). At the paper's 0.9 attempt-to-attempt correlation this
//!   brackets the truth from the correlated side.
//! - **Mean-wait queueing**: waiting time enters as its Kingman mean, so
//!   delay *quantiles* shift by the mean wait rather than convolving the
//!   wait distribution. In the stable region (ρ < 1) the service mixture
//!   dominates the quantiles.
//! - **Horizon and motion are ignored**: the evaluator assumes an
//!   unbounded window and the initial distance. Campaigns with
//!   [`SimOptions::horizon`] or a non-stationary trajectory should use a
//!   sampling engine.
//!
//! Experiment `ext12` (`wsn-experiments`) holds the engine to an explicit
//! error budget against the fast simulator across a stratified grid.
//!
//! ## Determinism
//!
//! The evaluator is a pure function of `(config, options.channel,
//! options.traffic, options.packets)` — the seed never changes its output.
//! That purity is what makes the [`table::AnalyticTable`] memo safe: a
//! cache hit is bit-identical to a recomputation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;
pub mod table;

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::simulation::SimOptions;
use wsn_link_sim::traffic::TrafficModel;
use wsn_mac::timing;
use wsn_models::queueing::{finite_queue_outcome, QueueOutcome, ServiceMoments};
use wsn_params::config::StackConfig;
use wsn_radio::budget::{LinkBudget, LinkBudgetTable};
use wsn_radio::channel::ChannelConfig;
use wsn_radio::energy::EnergyMeter;
use wsn_radio::per::PerModel;
use wsn_sim_engine::time::SimDuration;

use crate::math::MixtureComponent;
use crate::table::AnalyticTable;

/// Convenient glob-import of the analytic engine.
pub mod prelude {
    pub use crate::table::AnalyticTable;
    pub use crate::{evaluate, AnalyticLinkSimulation, AnalyticOutcome, AnalyticReport};
}

/// Quadrature resolution over the shadowing marginal.
const SHADOW_NODES: usize = 17;
/// Quadrature resolution over each noise-mixture component.
const NOISE_NODES: usize = 17;

/// The CCA retry budget, mirroring `wsn_mac::transaction::MAX_CCA_RETRIES`
/// (and the fast engine's copy of it).
const MAX_CCA_RETRIES: u32 = 16;

/// CCA assessment-slot cost when the channel reads busy, µs.
const CCA_SLOT_US: f64 = 128.0;

/// Diagnostics the closed form produces beyond the [`LinkMetrics`] set —
/// the intermediate quantities a sampling engine can only estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticReport {
    /// Offered utilization `ρ = λ·E[S]` (may exceed 1; saturating traffic
    /// reports 1).
    pub rho: f64,
    /// True when the queue is driven at or beyond capacity (`ρ ≥ 1` or a
    /// saturating source): waiting time is the full-queue bound, not an
    /// equilibrium mean.
    pub saturated: bool,
    /// Mean MAC service time `E[S]`, ms.
    pub service_mean_ms: f64,
    /// Squared coefficient of variation of the service time.
    pub service_scv: f64,
    /// Mean queue waiting time, ms.
    pub wait_mean_ms: f64,
    /// Hard lower bound on any delivered packet's delay, ms.
    pub delay_min_ms: f64,
    /// Hard upper bound on any delivered packet's delay, ms
    /// (full queue ahead, every backoff and CCA loop maximal).
    pub delay_max_ms: f64,
    /// Probability an admitted packet exhausts `NmaxTries` undelivered
    /// (Eq. 8's radio loss, per admitted packet).
    pub p_radio_loss: f64,
    /// Expected transmissions per admitted packet (`N̄tries`).
    pub expected_attempts: f64,
}

/// Result of one analytic evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticOutcome {
    /// The evaluated configuration.
    pub config: StackConfig,
    metrics: LinkMetrics,
    /// Closed-form diagnostics alongside the standard metric set.
    pub report: AnalyticReport,
}

impl AnalyticOutcome {
    /// The summary metrics of the evaluation.
    pub fn metrics(&self) -> &LinkMetrics {
        &self.metrics
    }

    /// Consumes the outcome, returning the metrics.
    pub fn into_metrics(self) -> LinkMetrics {
        self.metrics
    }
}

/// A configured, runnable analytic evaluation of one link — the
/// closed-form sibling of `FastLinkSimulation`, same construction surface.
///
/// ```
/// use wsn_analytic::AnalyticLinkSimulation;
/// use wsn_link_sim::simulation::SimOptions;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(23)
///     .build()?;
/// let outcome = AnalyticLinkSimulation::new(cfg, SimOptions::quick(400)).run();
/// assert!(outcome.metrics().conserves_packets());
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticLinkSimulation {
    config: StackConfig,
    options: SimOptions,
    budgets: Option<Arc<LinkBudgetTable>>,
    cache: Option<Arc<AnalyticTable>>,
}

impl AnalyticLinkSimulation {
    /// Creates an evaluation of `config` under `options`.
    pub fn new(config: StackConfig, options: SimOptions) -> Self {
        AnalyticLinkSimulation {
            config,
            options,
            budgets: None,
            cache: None,
        }
    }

    /// Attaches a shared link-budget memo (used when its channel matches
    /// the options' channel, exactly like the sampling engines).
    pub fn with_budget_table(mut self, budgets: Arc<LinkBudgetTable>) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// Attaches a shared result memo: repeat evaluations of the same
    /// `(config, packets, traffic)` under the table's channel become a
    /// lookup (used when its channel matches the options' channel).
    pub fn with_cache(mut self, cache: Arc<AnalyticTable>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the evaluation.
    ///
    /// The link budget is resolved lazily: a result-memo hit never pays
    /// for a budget-table lookup (the budget is baked into the memoized
    /// metrics), which keeps the warm serve/campaign path to one hash,
    /// one shared-lock read and one clone.
    pub fn run(&self) -> AnalyticOutcome {
        let budget = || match &self.budgets {
            Some(table) if *table.config() == self.options.channel => {
                table.budget(self.config.power, self.config.distance)
            }
            _ => LinkBudget::compute(
                &self.options.channel,
                self.config.power,
                self.config.distance,
            ),
        };
        let (metrics, report) = match &self.cache {
            Some(cache) if *cache.config() == self.options.channel => {
                cache.lookup_or_eval(&self.config, &self.options, budget)
            }
            _ => evaluate(&self.config, &self.options, budget()),
        };
        AnalyticOutcome {
            config: self.config,
            metrics,
            report,
        }
    }
}

/// One noise-mixture branch after folding in the interference split.
struct NoiseComp {
    weight: f64,
    mean_dbm: f64,
    sigma_db: f64,
    /// An interferer is active: the sampled floor is lifted through
    /// [`InterferenceModel::effective_noise_dbm`] node by node.
    interfered: bool,
}

/// Expands the channel's noise model (and interference, if any) into
/// weighted Gaussian branches.
fn noise_components(channel: &ChannelConfig) -> Vec<NoiseComp> {
    let base: Vec<(f64, f64, f64)> = match channel.noise {
        wsn_radio::noise::NoiseModel::Constant { floor_dbm } => vec![(1.0, floor_dbm, 0.0)],
        wsn_radio::noise::NoiseModel::Mixture {
            quiet_mean_dbm,
            quiet_sigma_db,
            busy_mean_dbm,
            busy_sigma_db,
            busy_prob,
        } => vec![
            (1.0 - busy_prob, quiet_mean_dbm, quiet_sigma_db),
            (busy_prob, busy_mean_dbm, busy_sigma_db),
        ],
    };
    let mut comps = Vec::with_capacity(base.len() * 2);
    let collision = if channel.interference.is_none() {
        0.0
    } else {
        channel.interference.collision_probability()
    };
    for (weight, mean_dbm, sigma_db) in base {
        if weight == 0.0 {
            continue;
        }
        if collision > 0.0 {
            comps.push(NoiseComp {
                weight: weight * (1.0 - collision),
                mean_dbm,
                sigma_db,
                interfered: false,
            });
            comps.push(NoiseComp {
                weight: weight * collision,
                mean_dbm,
                sigma_db,
                interfered: true,
            });
        } else {
            comps.push(NoiseComp {
                weight,
                mean_dbm,
                sigma_db,
                interfered: false,
            });
        }
    }
    comps
}

/// Moments of the CCA busy-round count `M`: geometric with busy
/// probability `p`, truncated at [`MAX_CCA_RETRIES`] (after which the MAC
/// transmits anyway).
fn cca_round_moments(p: f64) -> (f64, f64) {
    if p <= 0.0 {
        return (0.0, 0.0);
    }
    let cap = MAX_CCA_RETRIES as i32;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    // pmf: P(M = m) = p^m (1 − p) for m < cap, P(M = cap) = p^cap.
    for m in 0..cap {
        let w = p.powi(m) * (1.0 - p);
        mean += w * m as f64;
        m2 += w * (m as f64) * (m as f64);
    }
    let tail = p.powi(cap);
    mean += tail * cap as f64;
    m2 += tail * (cap as f64) * (cap as f64);
    (mean, (m2 - mean * mean).max(0.0))
}

/// Rounds a non-negative expectation into a count, clamped to `limit`.
fn count(expected: f64, limit: u64) -> u64 {
    (expected.max(0.0).round() as u64).min(limit)
}

/// Evaluates one configuration in closed form.
///
/// `budget` must describe `config`'s operating point under
/// `options.channel` (use [`LinkBudget::compute`] or a
/// [`LinkBudgetTable`]). See the crate docs for the model's validity
/// envelope; `options.seed`, `options.horizon`, `options.record_packets`
/// and any motion profile are ignored.
pub fn evaluate(
    config: &StackConfig,
    options: &SimOptions,
    budget: LinkBudget,
) -> (LinkMetrics, AnalyticReport) {
    let channel = &options.channel;
    let n = config.max_tries.get() as usize;
    let nf = n as f64;
    let packets = options.packets;
    let packets_f = packets as f64;

    // ── deterministic timing terms, µs ───────────────────────────────
    let spi_us = timing::spi_load(config.payload).as_micros() as f64;
    let frame_us = timing::frame_time(config.payload).as_micros() as f64;
    let turnaround_us = timing::TURNAROUND.as_micros() as f64;
    let ack_rx_us = timing::ACK_RECEIVE.as_micros() as f64;
    let ack_timeout_us = timing::ACK_TIMEOUT.as_micros() as f64;
    let retry_us = config.retry_delay.millis() as f64 * 1_000.0;

    // ── per-attempt random part: initial backoff + CCA busy loop ─────
    let backoff = timing::initial_backoff_moments();
    let congestion = timing::congestion_backoff_moments();
    let cca_prob = channel.interference.cca_busy_probability();
    let (cca_rounds_mean, cca_rounds_var) = cca_round_moments(cca_prob);
    let round_mean = CCA_SLOT_US + congestion.mean_us;
    let cca_mean = cca_rounds_mean * round_mean;
    let cca_var = cca_rounds_mean * congestion.var_us2 + cca_rounds_var * round_mean * round_mean;
    // R = initial backoff + CCA loop: the listening prologue of an attempt.
    let r_mean = backoff.mean_us + cca_mean;
    let r_var = backoff.var_us2 + cca_var;

    // ── attempt-success probabilities under shadowing × noise ────────
    let comps = noise_components(channel);
    let noise_nodes = math::std_normal_nodes(NOISE_NODES);
    let sigma_sh = budget.sigma_db;
    let shadow_nodes: Vec<(f64, f64)> = if sigma_sh > 0.0 {
        math::std_normal_nodes(SHADOW_NODES)
    } else {
        vec![(0.0, 1.0)]
    };

    // Mean *observed* noise floor (interference lift included), for the
    // SNR bookkeeping the simulators do per attempt.
    let mut mean_noise_dbm = 0.0;
    for c in &comps {
        if c.sigma_db == 0.0 {
            let v = if c.interfered {
                channel.interference.effective_noise_dbm(c.mean_dbm)
            } else {
                c.mean_dbm
            };
            mean_noise_dbm += c.weight * v;
        } else {
            for &(z, w) in &noise_nodes {
                let raw = c.mean_dbm + z * c.sigma_db;
                let v = if c.interfered {
                    channel.interference.effective_noise_dbm(raw)
                } else {
                    raw
                };
                mean_noise_dbm += c.weight * w * v;
            }
        }
    }

    // Per-packet attempt algebra, marginalized over the shadowing draw X
    // (quasi-static: one X per packet, fresh noise per attempt).
    let mut acked_at = vec![0.0; n]; // P(first ACK at attempt k)
    let mut p_unacked = 0.0; // P(no ACK in n tries)
    let mut p_lost = 0.0; // P(no delivery in n tries)
    let mut e_attempts = 0.0; // E[transmissions]
    let mut e_copies = 0.0; // E[delivered copies]
    let mut snr_wsum = 0.0; // Σ w·E[A|X]·SNR(X)
    let mut rssi_wsum = 0.0; // Σ w·E[A|X]·RSSI(X)
    for &(z, wx) in &shadow_nodes {
        let rssi_dbm = budget.mean_rssi_dbm + z * sigma_sh;
        // Per-attempt success probabilities at this shadowing level.
        let mut p_data = 0.0; // data frame received
        let mut p_joint = 0.0; // data received AND ACK received
        for c in &comps {
            let mut fold = |raw_noise: f64, w: f64| {
                let noise = if c.interfered {
                    channel.interference.effective_noise_dbm(raw_noise)
                } else {
                    raw_noise
                };
                let snr = rssi_dbm - noise;
                let qd = 1.0 - channel.per_backend.per(snr, config.payload);
                let qj = if channel.ack_loss {
                    qd * (1.0 - channel.per_backend.ack_per(snr))
                } else {
                    qd
                };
                p_data += w * qd;
                p_joint += w * qj;
            };
            if c.sigma_db == 0.0 {
                fold(c.mean_dbm, c.weight);
            } else {
                for &(zn, wn) in &noise_nodes {
                    fold(c.mean_dbm + zn * c.sigma_db, c.weight * wn);
                }
            }
        }
        let fail = 1.0 - p_joint;
        let mut fail_pow = 1.0; // fail^(k−1)
        let mut e_attempts_x = 0.0;
        for slot in acked_at.iter_mut() {
            *slot += wx * fail_pow * p_joint;
            e_attempts_x += fail_pow;
            fail_pow *= fail;
        }
        // fail_pow is now fail^n.
        p_unacked += wx * fail_pow;
        p_lost += wx * (1.0 - p_data).powi(n as i32);
        e_attempts += wx * e_attempts_x;
        e_copies += wx * p_data * e_attempts_x;
        snr_wsum += wx * e_attempts_x * (rssi_dbm - mean_noise_dbm);
        rssi_wsum += wx * e_attempts_x * rssi_dbm;
    }
    let p_acked = 1.0 - p_unacked;
    let p_delivered = 1.0 - p_lost;
    let e_unacked_attempts = (e_attempts - p_acked).max(0.0);
    // Delivered but never ACKed: the sender exhausts its tries yet at
    // least one copy landed (possible only when ACKs can be lost).
    let p_fail_delivered = (p_unacked - p_lost).max(0.0);

    // ── service-time mixture over the attempt count ──────────────────
    // Conditioned on the attempt count, the service time no longer
    // depends on X, so the mixture has at most n + 1 components.
    let per_attempt_us = r_mean + turnaround_us + frame_us;
    let d_acked_us =
        |k: f64| spi_us + k * per_attempt_us + (k - 1.0) * (ack_timeout_us + retry_us) + ack_rx_us;
    let d_fail_us = spi_us + nf * per_attempt_us + nf * ack_timeout_us + (nf - 1.0) * retry_us;

    let mut service_mean_us = p_unacked * d_fail_us;
    let mut service_m2_us2 = p_unacked * (d_fail_us * d_fail_us + nf * r_var);
    for k in 1..=n {
        let w = acked_at[k - 1];
        let m = d_acked_us(k as f64);
        service_mean_us += w * m;
        service_m2_us2 += w * (m * m + k as f64 * r_var);
    }
    let service = ServiceMoments {
        mean_s: service_mean_us / 1e6,
        second_moment_s2: service_m2_us2 / 1e12,
    };

    // ── queueing ─────────────────────────────────────────────────────
    let cap = config.queue_cap.get() as usize;
    let interval_s = config.packet_interval.millis() as f64 / 1e3;
    let (queue, wait_s, duration_s) = if options.traffic.is_saturating() {
        // The saturating source refills the queue on every departure:
        // back-to-back service, no drops (generation is slot-driven), and
        // a deterministic wait of (slots ahead)·E[S].
        let filled = cap.min(packets.max(1) as usize) as f64;
        let ramp = filled * (filled - 1.0) / 2.0;
        let steady = (packets_f - filled).max(0.0) * (filled - 1.0);
        let wait_s = (ramp + steady) / packets_f.max(1.0) * service.mean_s;
        let queue = QueueOutcome {
            rho: 1.0,
            wait_s,
            plr_queue: 0.0,
            saturated: true,
        };
        (queue, wait_s, packets_f * service.mean_s)
    } else {
        let lambda = 1.0 / interval_s;
        let ca2 = match options.traffic {
            TrafficModel::Periodic => 0.0,
            TrafficModel::Poisson => 1.0,
            TrafficModel::Saturating => unreachable!("handled above"),
        };
        let queue = finite_queue_outcome(ca2, lambda, service, cap);
        let wait_s = queue.wait_s;
        // Window length: last arrival plus its sojourn — unless the
        // backlog outlives it (ρ ≥ 1), where drain time dominates.
        let admitted_f = packets_f * (1.0 - queue.plr_queue);
        let span = (packets_f - 1.0).max(0.0) * interval_s + wait_s + service.mean_s;
        (queue, wait_s, span.max(admitted_f * service.mean_s))
    };

    // ── packet accounting (conservation by construction) ─────────────
    let queue_dropped = count(packets_f * queue.plr_queue, packets);
    let admitted = packets - queue_dropped;
    let admitted_f = admitted as f64;
    let radio_lost = count(admitted_f * p_lost, admitted);
    let delivered = admitted - radio_lost;
    let acked = count(admitted_f * p_acked, delivered);
    let attempts = count(admitted_f * e_attempts, u64::MAX);
    let attempts_unacked = count(admitted_f * e_unacked_attempts, attempts);
    let duplicates = count(admitted_f * (e_copies - p_delivered), u64::MAX);

    // ── energy: expected µs per radio state, scaled by admissions ────
    let tx_us = admitted_f * e_attempts * frame_us;
    let rx_us = admitted_f
        * (e_attempts * (r_mean + turnaround_us)
            + p_acked * ack_rx_us
            + e_unacked_attempts * ack_timeout_us);
    let idle_us = admitted_f * (spi_us + (e_attempts - 1.0).max(0.0) * retry_us);
    let duration = SimDuration::from_secs_f64(duration_s.max(0.0));
    let mut meter = EnergyMeter::new();
    meter.add_tx(
        config.power,
        SimDuration::from_micros(tx_us.max(0.0) as u64),
    );
    meter.add_rx(SimDuration::from_micros(rx_us.max(0.0) as u64));
    meter.add_idle(SimDuration::from_micros(idle_us.max(0.0) as u64));
    let accounted = meter.accounted_time();
    if duration > accounted {
        meter.add_idle(duration - accounted);
    }

    // ── delays: wait mean + the delivered-conditional service mixture ─
    let wait_ms = wait_s * 1e3;
    let backoff_max_us =
        (timing::INITIAL_BACKOFF_MAX_UNITS * timing::BACKOFF_UNIT.as_micros() as u32) as f64;
    let cca_max_us = if cca_prob > 0.0 {
        MAX_CCA_RETRIES as f64
            * (CCA_SLOT_US
                + (timing::CONGESTION_BACKOFF_MAX_UNITS * timing::BACKOFF_UNIT.as_micros() as u32)
                    as f64)
    } else {
        0.0
    };
    let service_min_us =
        spi_us + timing::BACKOFF_UNIT.as_micros() as f64 + turnaround_us + frame_us + ack_rx_us;
    let service_max_us = spi_us
        + nf * (backoff_max_us + cca_max_us + turnaround_us + frame_us)
        + nf * ack_timeout_us
        + (nf - 1.0).max(0.0) * retry_us
        + ack_rx_us;

    let (delay_mean_ms, delay_p50_ms, delay_p95_ms, delay_p99_ms) =
        if delivered > 0 && p_delivered > 1e-12 {
            let mut mix = Vec::with_capacity(n + 1);
            let mut delivered_service_us = 0.0;
            for k in 1..=n {
                let w = acked_at[k - 1] / p_delivered;
                let m = d_acked_us(k as f64);
                delivered_service_us += w * m;
                mix.push(MixtureComponent {
                    weight: w,
                    mean: m,
                    sd: (k as f64 * r_var).sqrt(),
                });
            }
            let w_fail = p_fail_delivered / p_delivered;
            delivered_service_us += w_fail * d_fail_us;
            mix.push(MixtureComponent {
                weight: w_fail,
                mean: d_fail_us,
                sd: (nf * r_var).sqrt(),
            });
            let q = |q: f64| wait_ms + math::mixture_quantile(&mix, q, 0.0, service_max_us) / 1e3;
            (
                wait_ms + delivered_service_us / 1e3,
                q(0.50),
                q(0.95),
                q(0.99),
            )
        } else {
            (0.0, 0.0, 0.0, 0.0)
        };

    // ── assembly, mirroring `MetricsAccumulator::finish` ─────────────
    let duration_metric_s = duration_s.max(f64::MIN_POSITIVE);
    let energy = meter.breakdown();
    let delivered_bits = delivered as f64 * config.payload.bits() as f64;
    let u_eng_uj_per_bit = if delivered_bits > 0.0 {
        energy.tx_j * 1e6 / delivered_bits
    } else {
        f64::INFINITY
    };
    let total_energy_uj_per_bit = if delivered_bits > 0.0 {
        energy.total_j() * 1e6 / delivered_bits
    } else {
        f64::INFINITY
    };
    let denom = packets.max(1) as f64;
    let busy_s = admitted_f * service.mean_s;

    let metrics = LinkMetrics {
        duration_s: duration_metric_s,
        generated: packets,
        queue_dropped,
        radio_lost,
        delivered,
        acked,
        residual: 0,
        attempts,
        attempts_unacked,
        duplicates,
        mean_tries: if admitted > 0 { e_attempts } else { 0.0 },
        goodput_bps: delivered_bits / duration_metric_s,
        offered_bps: config.offered_load_bps(),
        delay_mean_ms,
        delay_p50_ms,
        delay_p95_ms,
        delay_p99_ms,
        service_mean_ms: if admitted > 0 {
            service_mean_us / 1e3
        } else {
            0.0
        },
        queueing_mean_ms: if admitted > 0 { wait_ms } else { 0.0 },
        u_eng_uj_per_bit,
        total_energy_uj_per_bit,
        energy,
        plr_queue: queue_dropped as f64 / denom,
        plr_radio: radio_lost as f64 / denom,
        per: if attempts > 0 {
            e_unacked_attempts / e_attempts
        } else {
            0.0
        },
        mean_snr_db: if attempts > 0 {
            snr_wsum / e_attempts
        } else {
            budget.mean_rssi_dbm - mean_noise_dbm
        },
        mean_rssi_dbm: if attempts > 0 {
            rssi_wsum / e_attempts
        } else {
            budget.mean_rssi_dbm
        },
        utilization: (busy_s / duration_metric_s).min(1.0),
    };
    let report = AnalyticReport {
        rho: queue.rho,
        saturated: queue.saturated,
        service_mean_ms: service_mean_us / 1e3,
        service_scv: service.scv(),
        wait_mean_ms: wait_ms,
        delay_min_ms: service_min_us / 1e3,
        delay_max_ms: (cap as f64 * service_max_us) / 1e3,
        p_radio_loss: p_lost,
        expected_attempts: e_attempts,
    };
    (metrics, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_link_sim::fast::FastLinkSimulation;

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    fn run(config: StackConfig, options: SimOptions) -> AnalyticOutcome {
        AnalyticLinkSimulation::new(config, options).run()
    }

    #[test]
    fn evaluation_is_deterministic_and_seed_free() {
        let a = run(cfg(23, 35.0), SimOptions::quick(400));
        let b = run(cfg(23, 35.0), SimOptions::quick(400).with_seed(99));
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn conserves_packets_across_link_qualities() {
        for (power, dist) in [(31u8, 10.0), (23, 35.0), (3, 35.0)] {
            let out = run(cfg(power, dist), SimOptions::quick(300));
            assert_eq!(out.metrics().generated, 300);
            assert!(out.metrics().conserves_packets(), "{power}/{dist}");
        }
    }

    #[test]
    fn good_link_delivers_nearly_everything() {
        let out = run(cfg(31, 10.0), SimOptions::quick(300));
        assert!(
            out.metrics().plr_total() < 0.02,
            "plr={}",
            out.metrics().plr_total()
        );
        assert!(out.metrics().goodput_bps > 0.9 * out.metrics().offered_bps);
        assert!(!out.report.saturated);
    }

    #[test]
    fn weak_link_loses_packets_over_radio() {
        let out = run(cfg(3, 35.0), SimOptions::quick(300));
        assert!(
            out.metrics().plr_radio > 0.01,
            "plr_radio={}",
            out.metrics().plr_radio
        );
        assert!(
            out.metrics().mean_tries > 1.05,
            "tries={}",
            out.metrics().mean_tries
        );
        assert!(out.report.p_radio_loss > 0.01);
    }

    #[test]
    fn delay_quantiles_are_ordered_and_bounded() {
        let out = run(cfg(23, 30.0), SimOptions::quick(300));
        let m = out.metrics();
        assert!(m.delay_p50_ms <= m.delay_p95_ms && m.delay_p95_ms <= m.delay_p99_ms);
        assert!(
            m.delay_p50_ms >= out.report.delay_min_ms,
            "p50 below the hard floor"
        );
        assert!(
            m.delay_p99_ms <= out.report.delay_max_ms,
            "p99 above the hard ceiling"
        );
        assert!(m.delay_mean_ms > 0.0);
    }

    #[test]
    fn overload_reports_saturation_with_finite_fields() {
        // 50-byte frames retried up to 8 times every 10 ms cannot keep up.
        let config = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(0)
            .queue_cap(10)
            .packet_interval_ms(10)
            .build()
            .unwrap();
        let out = run(config, SimOptions::quick(300));
        assert!(out.report.saturated, "rho={}", out.report.rho);
        assert!(out.report.rho >= 1.0);
        let m = out.metrics();
        assert!(m.plr_queue > 0.1, "plr_queue={}", m.plr_queue);
        let json = serde_json::to_string(m).unwrap();
        assert!(!json.contains("NaN") && !json.contains("null") && !json.contains("inf"));
        assert!(m.conserves_packets());
    }

    #[test]
    fn saturating_source_pins_utilization() {
        let out = run(
            cfg(31, 10.0),
            SimOptions::quick(200).with_traffic(TrafficModel::Saturating),
        );
        assert!(out.report.saturated);
        assert!((out.metrics().utilization - 1.0).abs() < 1e-9);
        assert_eq!(out.metrics().queue_dropped, 0);
        assert!(out.metrics().conserves_packets());
    }

    #[test]
    fn budget_table_run_matches_direct_run() {
        let options = SimOptions::quick(300);
        let table = Arc::new(LinkBudgetTable::new(options.channel));
        let direct = run(cfg(23, 35.0), options.clone());
        let via_table = AnalyticLinkSimulation::new(cfg(23, 35.0), options)
            .with_budget_table(table)
            .run();
        assert_eq!(direct.metrics(), via_table.metrics());
    }

    #[test]
    fn cache_hit_is_bit_identical_to_recomputation() {
        let options = SimOptions::quick(300);
        let cache = Arc::new(AnalyticTable::new(options.channel));
        let cold = AnalyticLinkSimulation::new(cfg(23, 35.0), options.clone())
            .with_cache(Arc::clone(&cache))
            .run();
        assert_eq!(cache.len(), 1);
        let warm = AnalyticLinkSimulation::new(cfg(23, 35.0), options.clone())
            .with_cache(Arc::clone(&cache))
            .run();
        assert_eq!(cache.len(), 1, "second run must be a lookup");
        assert_eq!(cold.metrics(), warm.metrics());
        let fresh = run(cfg(23, 35.0), options);
        assert_eq!(cold.metrics(), fresh.metrics());
    }

    #[test]
    fn agrees_loosely_with_the_fast_engine() {
        // The tight, stratified budget lives in experiment ext12; this is
        // the in-crate smoke version on one mid-quality link.
        let config = cfg(23, 30.0);
        let options = SimOptions::quick(2_000);
        let analytic = run(config, options.clone());
        let fast = FastLinkSimulation::new(config, options).run();
        let (a, f) = (analytic.metrics(), fast.metrics());
        assert!(
            (a.plr_total() - f.plr_total()).abs() < 0.05,
            "plr: analytic {} vs fast {}",
            a.plr_total(),
            f.plr_total()
        );
        let goodput_rel = (a.goodput_bps - f.goodput_bps).abs() / f.goodput_bps;
        assert!(goodput_rel < 0.15, "goodput rel err {goodput_rel}");
        let delay_rel = (a.delay_mean_ms - f.delay_mean_ms).abs() / f.delay_mean_ms;
        assert!(delay_rel < 0.25, "delay rel err {delay_rel}");
    }
}
