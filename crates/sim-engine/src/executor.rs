//! The simulation executor: drives a [`Model`] by draining the event queue.

use std::time::{Duration, Instant};

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle through which a [`Model`] schedules future events while handling
/// the current one.
///
/// The scheduler enforces causality: events may only be scheduled at or after
/// the current instant.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E: Eq> Scheduler<'a, E> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (causality violation).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Requests that the executor stop after the current event returns.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A discrete-event model: owns all mutable simulation state and reacts to
/// events by updating state and scheduling more events.
pub trait Model {
    /// The event alphabet of this model.
    type Event: Eq;

    /// Handles one event at its due time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Statistics gathered by the executor over one [`Executor::run`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Events handled during the run.
    pub events_handled: u64,
    /// Events ever scheduled on the queue (including seeds and events left
    /// pending when the run stopped).
    pub events_scheduled: u64,
    /// Largest pending-queue length ever reached, tracked at push time —
    /// seed events scheduled before the first handled event count, so a
    /// run seeded with N simultaneous events reports at least N even if
    /// handling them never grows the queue.
    pub queue_high_water: usize,
    /// Simulated time that elapsed during the run.
    pub sim_elapsed: SimDuration,
    /// Wall-clock time the run took.
    pub wall_elapsed: Duration,
}

impl ExecStats {
    /// Simulated seconds advanced per wall-clock second; `f64::INFINITY`
    /// when the run finished faster than the clock resolution.
    pub fn sim_wall_ratio(&self) -> f64 {
        let wall = self.wall_elapsed.as_secs_f64();
        if wall > 0.0 {
            self.sim_elapsed.as_secs_f64() / wall
        } else {
            f64::INFINITY
        }
    }
}

/// Hook for watching an executor run without owning the model.
///
/// All methods default to no-ops, so an observer implements only what it
/// needs. With the no-op observer the calls compile away: [`Executor::run`]
/// costs the same as before the hook existed.
pub trait ExecutorObserver {
    /// Called after each handled event with the clock and the number of
    /// events still pending.
    fn on_event(&mut self, _now: SimTime, _pending: usize) {}

    /// Called once when the run stops, with the full run statistics.
    fn on_run_end(&mut self, _stats: &ExecStats) {}
}

/// The do-nothing observer used by [`Executor::run`].
impl ExecutorObserver for () {}

/// Why [`Executor::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueEmpty,
    /// The configured horizon was reached before the queue drained.
    HorizonReached,
    /// The model called [`Scheduler::stop`].
    ModelRequested,
    /// The event budget was exhausted (runaway-model guard).
    EventBudgetExhausted,
}

/// Drives a [`Model`] until the queue drains, a horizon passes, the model
/// stops itself, or an event budget runs out.
///
/// ```
/// use wsn_sim_engine::executor::{Executor, Model, Scheduler, StopReason};
/// use wsn_sim_engine::time::{SimDuration, SimTime};
///
/// struct Counter { ticks: u32 }
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
///         self.ticks += 1;
///         if self.ticks < 5 {
///             sched.schedule_in(SimDuration::from_millis(1), ());
///         }
///     }
/// }
///
/// let mut exec = Executor::new(Counter { ticks: 0 });
/// exec.seed_at(SimTime::ZERO, ());
/// let (reason, end) = exec.run();
/// assert_eq!(reason, StopReason::QueueEmpty);
/// assert_eq!(exec.model().ticks, 5);
/// assert_eq!(end, SimTime::from_millis(4));
/// ```
#[derive(Debug)]
pub struct Executor<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    horizon: SimTime,
    event_budget: u64,
    events_handled: u64,
    last_stats: Option<ExecStats>,
}

impl<M: Model> Executor<M> {
    /// Default guard against runaway models: 2^40 events.
    pub const DEFAULT_EVENT_BUDGET: u64 = 1 << 40;

    /// Creates an executor with an unbounded horizon.
    pub fn new(model: M) -> Self {
        Executor {
            model,
            // Enough heap headroom behind the front slot for every model in
            // the workspace; sized once so steady-state scheduling never
            // reallocates.
            queue: EventQueue::with_capacity(8),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            events_handled: 0,
            last_stats: None,
        }
    }

    /// Sets the latest instant at which events may still fire. Events due
    /// strictly after the horizon are left unprocessed.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Caps the number of handled events (guards against runaway models).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Schedules an initial event before the run starts.
    pub fn seed_at(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// The model under simulation.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to extract results after a run).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the executor and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// The current clock value (end time after a run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Statistics from the most recent [`run`](Self::run) /
    /// [`run_observed`](Self::run_observed) call, if any.
    pub fn last_stats(&self) -> Option<&ExecStats> {
        self.last_stats.as_ref()
    }

    /// Runs to completion; returns why the run stopped and the final clock.
    pub fn run(&mut self) -> (StopReason, SimTime) {
        self.run_observed(&mut ())
    }

    /// Runs to completion while reporting progress to `observer`; returns
    /// why the run stopped and the final clock. Run statistics are also
    /// retained on the executor (see [`last_stats`](Self::last_stats)).
    pub fn run_observed<O: ExecutorObserver>(&mut self, observer: &mut O) -> (StopReason, SimTime) {
        let wall_start = Instant::now();
        let sim_start = self.now;
        let handled_before = self.events_handled;
        let mut stop_requested = false;
        let reason = loop {
            if self.events_handled >= self.event_budget {
                break StopReason::EventBudgetExhausted;
            }
            let Some(next_time) = self.queue.peek_time() else {
                break StopReason::QueueEmpty;
            };
            if next_time > self.horizon {
                // Leave post-horizon events unprocessed; clock stops at the
                // horizon so rate metrics use the intended window length.
                self.now = self.horizon;
                break StopReason::HorizonReached;
            }
            let scheduled = self.queue.pop().expect("peeked event must pop");
            debug_assert!(scheduled.time >= self.now, "event queue went backwards");
            self.now = scheduled.time;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop_requested,
            };
            self.model.handle(scheduled.event, &mut sched);
            self.events_handled += 1;
            observer.on_event(self.now, self.queue.len());
            if stop_requested {
                break StopReason::ModelRequested;
            }
        };
        let stats = ExecStats {
            events_handled: self.events_handled - handled_before,
            events_scheduled: self.queue.scheduled_total(),
            queue_high_water: self.queue.high_water(),
            sim_elapsed: self.now - sim_start,
            wall_elapsed: wall_start.elapsed(),
        };
        observer.on_run_end(&stats);
        self.last_stats = Some(stats);
        (reason, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that fires `n` ticks spaced 1 ms apart and records fire times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
        stop_at_tick: Option<u32>,
    }

    impl Model for Ticker {
        type Event = u32;
        fn handle(&mut self, id: u32, sched: &mut Scheduler<'_, u32>) {
            self.fired_at.push(sched.now());
            if Some(id) == self.stop_at_tick {
                sched.stop();
                return;
            }
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(SimDuration::from_millis(1), id + 1);
            }
        }
    }

    fn ticker(n: u32) -> Executor<Ticker> {
        let mut exec = Executor::new(Ticker {
            remaining: n,
            fired_at: Vec::new(),
            stop_at_tick: None,
        });
        exec.seed_at(SimTime::ZERO, 0);
        exec
    }

    #[test]
    fn runs_until_queue_empty() {
        let mut exec = ticker(3);
        let (reason, end) = exec.run();
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(end, SimTime::from_millis(3));
        assert_eq!(exec.model().fired_at.len(), 4);
        assert_eq!(exec.events_handled(), 4);
    }

    #[test]
    fn horizon_cuts_run_short_and_clamps_clock() {
        let mut exec = ticker(100).with_horizon(SimTime::from_millis(5));
        let (reason, end) = exec.run();
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(end, SimTime::from_millis(5));
        // ticks at 0..=5 ms fired; the 6 ms tick did not.
        assert_eq!(exec.model().fired_at.len(), 6);
    }

    #[test]
    fn model_can_stop_itself() {
        let mut exec = Executor::new(Ticker {
            remaining: 100,
            fired_at: Vec::new(),
            stop_at_tick: Some(2),
        });
        exec.seed_at(SimTime::ZERO, 0);
        let (reason, end) = exec.run();
        assert_eq!(reason, StopReason::ModelRequested);
        assert_eq!(end, SimTime::from_millis(2));
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut exec = ticker(1_000_000).with_event_budget(10);
        let (reason, _) = exec.run();
        assert_eq!(reason, StopReason::EventBudgetExhausted);
        assert_eq!(exec.events_handled(), 10);
    }

    #[test]
    fn clock_is_monotone() {
        let mut exec = ticker(50);
        exec.run();
        let times = &exec.model().fired_at;
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Observer that counts callbacks and tracks the reported high water.
    #[derive(Default)]
    struct Probe {
        events_seen: u64,
        max_pending: usize,
        run_ends: u32,
        final_stats: Option<ExecStats>,
    }

    impl ExecutorObserver for Probe {
        fn on_event(&mut self, _now: SimTime, pending: usize) {
            self.events_seen += 1;
            self.max_pending = self.max_pending.max(pending);
        }
        fn on_run_end(&mut self, stats: &ExecStats) {
            self.run_ends += 1;
            self.final_stats = Some(*stats);
        }
    }

    #[test]
    fn observer_sees_every_event_and_final_stats() {
        let mut exec = ticker(9);
        let mut probe = Probe::default();
        let (reason, end) = exec.run_observed(&mut probe);
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(probe.events_seen, 10);
        assert_eq!(probe.run_ends, 1);
        let stats = probe.final_stats.expect("run end reported");
        assert_eq!(stats.events_handled, 10);
        assert_eq!(stats.events_scheduled, 10);
        assert_eq!(stats.sim_elapsed, end - SimTime::ZERO);
        assert!(stats.sim_wall_ratio() > 0.0);
        assert_eq!(exec.last_stats(), Some(&stats));
    }

    #[test]
    fn observer_queue_high_water_tracks_pending_events() {
        // Seed 7 simultaneous events; while handling the first, 6 remain
        // pending, so the high-water mark must be at least 6.
        let mut exec = Executor::new(Ticker {
            remaining: 0,
            fired_at: Vec::new(),
            stop_at_tick: None,
        });
        for i in 0..7 {
            exec.seed_at(SimTime::ZERO, i);
        }
        let mut probe = Probe::default();
        exec.run_observed(&mut probe);
        assert_eq!(probe.max_pending, 6);
        assert_eq!(probe.final_stats.unwrap().queue_high_water, 7);
    }

    #[test]
    fn plain_run_records_stats_too() {
        let mut exec = ticker(3);
        assert!(exec.last_stats().is_none());
        exec.run();
        let stats = exec.last_stats().expect("stats retained");
        assert_eq!(stats.events_handled, 4);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
                sched.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut exec = Executor::new(Bad);
        exec.seed_at(SimTime::from_millis(1), ());
        exec.run();
    }
}
