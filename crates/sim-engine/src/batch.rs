//! A chunk-claiming batch executor for embarrassingly-parallel sweeps.
//!
//! The streaming campaign runner pays per-configuration synchronisation
//! (a claim, a reorder-buffer insert, a condvar wake) that is invisible
//! next to a multi-millisecond golden simulation but dominates a
//! microsecond-scale fast-mode run — the source of the negative thread
//! scaling recorded in `BENCH_campaign.json`. [`BatchExecutor`] amortises
//! that cost: workers claim *chunks* of the item range from one atomic
//! counter (one `fetch_add` per `chunk` items), keep all per-worker state
//! (RNG, scratch buffers, memo tables) thread-local via an `init` factory,
//! and publish each finished chunk with a single lock acquisition. Results
//! are reassembled into input order at the end, so the output is
//! position-for-position identical to a serial map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default items claimed per atomic increment.
const DEFAULT_CHUNK: usize = 64;

/// Runs an indexed map over a slice, serially or across scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
    chunk: usize,
}

impl BatchExecutor {
    /// An executor using `threads` workers (values below 1 mean serial).
    pub fn new(threads: usize) -> Self {
        BatchExecutor {
            threads: threads.max(1),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Overrides the per-claim chunk size (minimum 1).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Maps `run` over `items`, returning results in input order.
    ///
    /// `init` builds one private state value per worker (per-worker RNG
    /// scratch, cloned memo tables, …); `run` receives that state, the
    /// item's index and the item. With one thread (or a batch smaller than
    /// one chunk) everything runs inline on the caller's thread.
    pub fn map_init<I, S, T, FI, FR>(&self, items: &[I], init: FI, run: FR) -> Vec<T>
    where
        I: Sync,
        T: Send,
        FI: Fn() -> S + Sync,
        FR: Fn(&mut S, usize, &I) -> T + Sync,
    {
        let total = items.len();
        if self.threads <= 1 || total <= self.chunk {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| run(&mut state, i, item))
                .collect();
        }

        let next_claim = AtomicUsize::new(0);
        // Finished chunks, tagged with their start index; reassembled
        // below. A coarse Mutex is fine: it is taken once per chunk, not
        // once per item.
        let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        let workers = self.threads.min(total.div_ceil(self.chunk));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    let mut finished: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let start = next_claim.fetch_add(self.chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        let end = (start + self.chunk).min(total);
                        let results: Vec<T> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(off, item)| run(&mut state, start + off, item))
                            .collect();
                        finished.push((start, results));
                    }
                    if !finished.is_empty() {
                        done.lock()
                            .expect("batch result lock")
                            .append(&mut finished);
                    }
                });
            }
        });

        let mut chunks = done.into_inner().expect("workers joined");
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(total);
        for (_, mut results) in chunks {
            out.append(&mut results);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// [`map_init`](Self::map_init) without per-worker state.
    pub fn map<I, T, FR>(&self, items: &[I], run: FR) -> Vec<T>
    where
        I: Sync,
        T: Send,
        FR: Fn(usize, &I) -> T + Sync,
    {
        self.map_init(items, || (), |_, i, item| run(i, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let exec = BatchExecutor::new(4).with_chunk(7);
        let out = exec.map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..513).collect();
        let f = |_i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = BatchExecutor::new(1).map(&items, f);
        let parallel = BatchExecutor::new(8).with_chunk(16).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_worker_state_is_initialised_per_worker() {
        // Every worker's state starts from the same `init`, so an
        // accumulating counter must show each item observed a
        // worker-local count no larger than its index.
        let items: Vec<usize> = (0..200).collect();
        let out = BatchExecutor::new(4).with_chunk(8).map_init(
            &items,
            || 0usize,
            |seen, i, _item| {
                *seen += 1;
                (*seen, i)
            },
        );
        assert_eq!(out.len(), items.len());
        for (seen, i) in out {
            assert!(seen <= i + 1, "worker-local count {seen} at item {i}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let exec = BatchExecutor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.map(&[41u32], |_, &x| x + 1), vec![42]);
    }
}
