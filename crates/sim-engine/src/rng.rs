//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (channel fading, noise floor,
//! CSMA backoff, packet jitter, …) draws from its own named stream derived
//! from a single experiment seed. This gives two properties the experiment
//! harness relies on:
//!
//! 1. **Reproducibility** — the same seed regenerates the same 48k-config
//!    campaign bit-for-bit.
//! 2. **Variance isolation** — changing one parameter (say `NmaxTries`) does
//!    not perturb the random sequence seen by unrelated components, which is
//!    the discrete-event analogue of common random numbers in simulation
//!    methodology.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies an independent random stream within one simulation.
///
/// Streams are derived by mixing the stream label into the experiment seed
/// with SplitMix64, so any two distinct labels yield statistically
/// independent `StdRng` instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Slow-fading (shadowing) deviations of the channel.
    Fading,
    /// Noise-floor sampling at the receiver.
    Noise,
    /// Per-bit / per-packet delivery coin flips.
    Delivery,
    /// CSMA-CA backoff draws at the sender MAC.
    Backoff,
    /// Application traffic jitter.
    Traffic,
    /// Anything else; carries a caller-chosen discriminator.
    Custom(u64),
}

impl StreamId {
    fn label(self) -> u64 {
        match self {
            StreamId::Fading => 0x01,
            StreamId::Noise => 0x02,
            StreamId::Delivery => 0x03,
            StreamId::Backoff => 0x04,
            StreamId::Traffic => 0x05,
            StreamId::Custom(x) => 0x1000_0000_0000_0000 ^ x,
        }
    }
}

/// SplitMix64 finalizer; a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Factory for the named deterministic streams of one simulation run.
///
/// ```
/// use wsn_sim_engine::rng::{RngFactory, StreamId};
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream(StreamId::Backoff);
/// let mut b = factory.stream(StreamId::Backoff);
/// // Same seed + same stream => identical sequences.
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory derives streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Instantiates the RNG for `stream`.
    pub fn stream(&self, stream: StreamId) -> StdRng {
        let mixed = splitmix64(self.seed ^ splitmix64(stream.label()));
        StdRng::seed_from_u64(mixed)
    }

    /// Derives a sub-factory, e.g. one per simulated configuration, so each
    /// grid point gets independent streams while remaining reproducible.
    pub fn derive(&self, index: u64) -> RngFactory {
        RngFactory {
            seed: splitmix64(self.seed.wrapping_add(splitmix64(index))),
        }
    }
}

/// Draws a standard-normal variate using the Box–Muller transform.
///
/// Implemented here rather than pulling in `rand_distr`; the polar rejection
/// form is used for numerical robustness.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "std_dev must be finite and non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws an exponential variate with the given mean (`1/λ`).
///
/// # Panics
///
/// Panics if `mean` is non-positive or not finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be finite and positive, got {mean}"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let f1 = RngFactory::new(7);
        let f2 = RngFactory::new(7);
        let xs: Vec<u64> = {
            let mut r = f1.stream(StreamId::Noise);
            (0..16).map(|_| r.gen()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = f2.stream(StreamId::Noise);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream(StreamId::Noise);
        let mut b = f.stream(StreamId::Fading);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream(StreamId::Delivery);
        let mut b = RngFactory::new(2).stream(StreamId::Delivery);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_factories_are_deterministic_and_distinct() {
        let f = RngFactory::new(99);
        assert_eq!(f.derive(3), f.derive(3));
        assert_ne!(f.derive(3), f.derive(4));
        assert_ne!(f.derive(3).seed(), f.seed());
    }

    #[test]
    fn custom_streams_with_distinct_labels_differ() {
        let f = RngFactory::new(5);
        let mut a = f.stream(StreamId::Custom(10));
        let mut b = f.stream(StreamId::Custom(11));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = RngFactory::new(123).stream(StreamId::Custom(0));
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = RngFactory::new(321).stream(StreamId::Custom(1));
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn negative_std_dev_panics() {
        let mut rng = RngFactory::new(0).stream(StreamId::Custom(9));
        let _ = normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "exponential mean")]
    fn non_positive_exponential_mean_panics() {
        let mut rng = RngFactory::new(0).stream(StreamId::Custom(9));
        let _ = exponential(&mut rng, 0.0);
    }
}
