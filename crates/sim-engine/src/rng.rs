//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (channel fading, noise floor,
//! CSMA backoff, packet jitter, …) draws from its own named stream derived
//! from a single experiment seed. This gives two properties the experiment
//! harness relies on:
//!
//! 1. **Reproducibility** — the same seed regenerates the same 48k-config
//!    campaign bit-for-bit.
//! 2. **Variance isolation** — changing one parameter (say `NmaxTries`) does
//!    not perturb the random sequence seen by unrelated components, which is
//!    the discrete-event analogue of common random numbers in simulation
//!    methodology.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Identifies an independent random stream within one simulation.
///
/// Streams are derived by mixing the stream label into the experiment seed
/// with SplitMix64, so any two distinct labels yield statistically
/// independent `StdRng` instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Slow-fading (shadowing) deviations of the channel.
    Fading,
    /// Noise-floor sampling at the receiver.
    Noise,
    /// Per-bit / per-packet delivery coin flips.
    Delivery,
    /// CSMA-CA backoff draws at the sender MAC.
    Backoff,
    /// Application traffic jitter.
    Traffic,
    /// Anything else; carries a caller-chosen discriminator.
    Custom(u64),
}

impl StreamId {
    fn label(self) -> u64 {
        match self {
            StreamId::Fading => 0x01,
            StreamId::Noise => 0x02,
            StreamId::Delivery => 0x03,
            StreamId::Backoff => 0x04,
            StreamId::Traffic => 0x05,
            StreamId::Custom(x) => 0x1000_0000_0000_0000 ^ x,
        }
    }
}

/// SplitMix64 step: adds the golden-ratio increment and applies the
/// finalizer — a high-quality 64-bit mixing function. Public because seed
/// derivation schemes across the workspace (per-stream seeds here,
/// per-configuration fast-mode seeds in the link simulator) chain it over
/// their identifying bits.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Factory for the named deterministic streams of one simulation run.
///
/// ```
/// use wsn_sim_engine::rng::{RngFactory, StreamId};
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream(StreamId::Backoff);
/// let mut b = factory.stream(StreamId::Backoff);
/// // Same seed + same stream => identical sequences.
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory derives streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Instantiates the RNG for `stream`.
    pub fn stream(&self, stream: StreamId) -> StdRng {
        let mixed = splitmix64(self.seed ^ splitmix64(stream.label()));
        StdRng::seed_from_u64(mixed)
    }

    /// Derives a sub-factory, e.g. one per simulated configuration, so each
    /// grid point gets independent streams while remaining reproducible.
    pub fn derive(&self, index: u64) -> RngFactory {
        RngFactory {
            seed: splitmix64(self.seed.wrapping_add(splitmix64(index))),
        }
    }
}

/// The fast-mode generator: xoshiro256++ seeded by a SplitMix64 chain.
///
/// `StdRng` (ChaCha12) is the golden path's generator — cryptographic
/// quality, but ~10 rounds of ARX per block. The fast engine does not need
/// unpredictability, only statistical quality and speed, which is exactly
/// the xoshiro256++ design point. Seeding expands one `u64` through
/// iterated [`splitmix64`] (the construction recommended by the xoshiro
/// authors), so low-entropy seeds still yield well-mixed states and the
/// all-zero state is unreachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastRng {
    s: [u64; 4],
}

impl FastRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = splitmix64(z);
            *slot = z;
        }
        FastRng { s }
    }
}

impl rand::RngCore for FastRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// A generator that also knows how to produce standard-normal variates.
///
/// This is the engine-mode seam at the sampling layer: the radio models
/// (shadowing, noise) are generic over `NormalSampler` instead of calling a
/// fixed transform, so the *generator type* selects the algorithm.
/// [`StdRng`] keeps the golden path's polar Box–Muller bit-for-bit, while
/// [`FastRng`] substitutes the Ziggurat method — both are exact samplers of
/// `N(0, 1)`, so swapping them changes the draw sequence but not the
/// distribution.
pub trait NormalSampler: Rng {
    /// Draws one standard-normal variate.
    fn sample_standard_normal(&mut self) -> f64;
}

impl NormalSampler for StdRng {
    fn sample_standard_normal(&mut self) -> f64 {
        standard_normal(self)
    }
}

impl NormalSampler for FastRng {
    fn sample_standard_normal(&mut self) -> f64 {
        standard_normal_ziggurat(self)
    }
}

impl<T: NormalSampler + ?Sized> NormalSampler for &mut T {
    fn sample_standard_normal(&mut self) -> f64 {
        (**self).sample_standard_normal()
    }
}

/// A generator constructible from a factory and a stream label — the
/// engine-mode seam at the *construction* layer, completing what
/// [`NormalSampler`] does at the sampling layer: code generic over
/// `R: FactoryStream` can build its named streams without knowing whether
/// it runs the golden (`StdRng`) or fast (`FastRng`) generator.
///
/// Both impls mix the label into the factory seed with the identical
/// SplitMix64 chain [`RngFactory::stream`] uses, so distinct labels stay
/// independent under either generator.
pub trait FactoryStream: NormalSampler + Sized {
    /// Instantiates this generator for `stream` of `factory`.
    fn from_factory(factory: &RngFactory, stream: StreamId) -> Self;
}

impl FactoryStream for StdRng {
    fn from_factory(factory: &RngFactory, stream: StreamId) -> Self {
        factory.stream(stream)
    }
}

impl FactoryStream for FastRng {
    fn from_factory(factory: &RngFactory, stream: StreamId) -> Self {
        FastRng::new(splitmix64(factory.seed ^ splitmix64(stream.label())))
    }
}

/// Marsaglia–Tsang Ziggurat tables for the standard normal, 128 layers.
///
/// Layer 0 is the base strip (its rectangle is widened to also cover the
/// `|x| > R` tail), layers 1–127 climb the density towards the peak.
/// `x[i]` is the layer's right edge, `f[i] = exp(-x[i]²/2)` its density,
/// and `ratio[i] = x[i-1]/x[i]` the quick-accept threshold (a sample drawn
/// uniformly across layer `i` that lands inside the next-narrower layer is
/// certainly under the curve).
struct ZigguratTables {
    x: [f64; 128],
    f: [f64; 128],
    ratio: [f64; 128],
}

/// Right edge of the bottom layer (the tail boundary).
const ZIG_R: f64 = 3.442_619_855_899;
/// Area of each of the 128 layers (the base strip's includes the tail).
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

fn ziggurat_tables() -> &'static ZigguratTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigguratTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let f_r = (-0.5 * ZIG_R * ZIG_R).exp();
        let mut x = [0.0f64; 128];
        let mut f = [0.0f64; 128];
        // Base strip: virtual width V/f(R) so that a uniform draw over it
        // covers both the rectangle [0, R] and the tail mass beyond R.
        x[0] = ZIG_V / f_r;
        f[0] = 1.0; // paired with layer 1's wedge top (the peak, f(0) = 1)
        x[127] = ZIG_R;
        f[127] = f_r;
        let mut edge = ZIG_R;
        for i in (1..=126).rev() {
            // Each layer has area V: x_i · (f(x_i) − f(x_{i+1})) = V.
            edge = (-2.0 * (ZIG_V / edge + (-0.5 * edge * edge).exp()).ln()).sqrt();
            x[i] = edge;
            f[i] = (-0.5 * edge * edge).exp();
        }
        let mut ratio = [0.0f64; 128];
        ratio[0] = ZIG_R / x[0];
        // Layer 1 is the peak layer; it has no narrower neighbour, so it
        // never quick-accepts and always takes the wedge test.
        ratio[1] = 0.0;
        for i in 2..128 {
            ratio[i] = x[i - 1] / x[i];
        }
        ZigguratTables { x, f, ratio }
    })
}

/// Uniform in `(0, 1]` — the `ln`-safe open-at-zero unit draw.
#[inline]
fn unit_open_zero<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a standard-normal variate with the Ziggurat method (128 layers).
///
/// One `u64` suffices for ~98.8 % of draws: 7 bits pick the layer, the
/// remaining 53 form the position within it. The wedge and tail cases are
/// exact rejection steps, so the output distribution is exactly `N(0, 1)`
/// — the same distribution as [`standard_normal`], by a different (and
/// roughly 5× cheaper) route.
pub fn standard_normal_ziggurat<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let tables = ziggurat_tables();
    loop {
        let bits = rng.next_u64();
        let layer = (bits & 127) as usize;
        // Signed uniform in [-1, 1): 53-bit mantissa, disjoint from the
        // 7 layer bits.
        let u = ((bits >> 11) as i64).wrapping_sub(1 << 52) as f64 * (1.0 / (1u64 << 52) as f64);
        if u.abs() < tables.ratio[layer] {
            return u * tables.x[layer];
        }
        if layer == 0 {
            // Tail beyond R: Marsaglia's exponential-rejection tail method.
            let sign = if u < 0.0 { -1.0 } else { 1.0 };
            loop {
                let e1 = -unit_open_zero(rng).ln() / ZIG_R;
                let e2 = -unit_open_zero(rng).ln();
                if e2 + e2 > e1 * e1 {
                    return sign * (ZIG_R + e1);
                }
            }
        }
        // Wedge: uniform height within the layer, accept under the curve.
        let x = u * tables.x[layer];
        let height =
            tables.f[layer] + unit_open_zero(rng) * (tables.f[layer - 1] - tables.f[layer]);
        if height < (-0.5 * x * x).exp() {
            return x;
        }
    }
}

/// Draws a standard-normal variate using the Box–Muller transform.
///
/// Implemented here rather than pulling in `rand_distr`; the polar rejection
/// form is used for numerical robustness.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "std_dev must be finite and non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws an exponential variate with the given mean (`1/λ`).
///
/// # Panics
///
/// Panics if `mean` is non-positive or not finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be finite and positive, got {mean}"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let f1 = RngFactory::new(7);
        let f2 = RngFactory::new(7);
        let xs: Vec<u64> = {
            let mut r = f1.stream(StreamId::Noise);
            (0..16).map(|_| r.gen()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = f2.stream(StreamId::Noise);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream(StreamId::Noise);
        let mut b = f.stream(StreamId::Fading);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream(StreamId::Delivery);
        let mut b = RngFactory::new(2).stream(StreamId::Delivery);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_factories_are_deterministic_and_distinct() {
        let f = RngFactory::new(99);
        assert_eq!(f.derive(3), f.derive(3));
        assert_ne!(f.derive(3), f.derive(4));
        assert_ne!(f.derive(3).seed(), f.seed());
    }

    #[test]
    fn custom_streams_with_distinct_labels_differ() {
        let f = RngFactory::new(5);
        let mut a = f.stream(StreamId::Custom(10));
        let mut b = f.stream(StreamId::Custom(11));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = RngFactory::new(123).stream(StreamId::Custom(0));
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = RngFactory::new(321).stream(StreamId::Custom(1));
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn negative_std_dev_panics() {
        let mut rng = RngFactory::new(0).stream(StreamId::Custom(9));
        let _ = normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "exponential mean")]
    fn non_positive_exponential_mean_panics() {
        let mut rng = RngFactory::new(0).stream(StreamId::Custom(9));
        let _ = exponential(&mut rng, 0.0);
    }

    #[test]
    fn fast_rng_is_deterministic_and_seed_sensitive() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        let mut c = FastRng::new(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fast_rng_unit_floats_are_uniform_enough() {
        let mut rng = FastRng::new(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn ziggurat_moments_match_standard_normal() {
        let mut rng = FastRng::new(0xFA57);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal_ziggurat(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let skew =
            samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / (n as f64 * var.powf(1.5));
        let kurt = samples.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / (n as f64 * var * var);
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
        assert!(skew.abs() < 0.03, "skew={skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis={kurt}");
    }

    #[test]
    fn ziggurat_tail_mass_is_correct() {
        // P(|X| > R) with R = 3.4426… is ≈ 5.76e-4; the tail path must
        // produce it (a broken tail would show up as ~0 or ~2×).
        let mut rng = FastRng::new(0x7A11);
        let n = 2_000_000u64;
        let beyond = (0..n)
            .filter(|_| standard_normal_ziggurat(&mut rng).abs() > 3.442_619_855_899)
            .count() as f64;
        let p = beyond / n as f64;
        assert!(
            (4.0e-4..8.0e-4).contains(&p),
            "tail probability {p:.2e} (expected ≈ 5.8e-4)"
        );
    }

    #[test]
    fn normal_sampler_trait_selects_by_generator() {
        // StdRng keeps Box–Muller bit-for-bit: the trait method and the
        // free function must agree draw-for-draw on identical streams.
        let mut via_trait = RngFactory::new(5).stream(StreamId::Fading);
        let mut via_fn = RngFactory::new(5).stream(StreamId::Fading);
        for _ in 0..64 {
            assert_eq!(
                via_trait.sample_standard_normal().to_bits(),
                standard_normal(&mut via_fn).to_bits()
            );
        }
    }
}
