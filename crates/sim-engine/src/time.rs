//! Simulation time types.
//!
//! All simulation time is expressed in **microseconds** on a monotone
//! 64-bit clock. The CC2420 radio operates on 16 µs symbol periods and
//! 320 µs backoff units, so a 1 µs resolution is exact for every timing
//! constant in the reproduced stack while leaving ~584,000 years of
//! simulated range — far beyond the paper's 6-month campaign.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in microseconds since simulation start.
///
/// `SimTime` is an absolute instant; the corresponding span type is
/// [`SimDuration`]. Arithmetic is checked in debug builds (overflow panics)
/// and the subtraction of two instants yields a duration:
///
/// ```
/// use wsn_sim_engine::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(3);
/// assert_eq!(t1 - t0, SimDuration::from_micros(3_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// Durations are non-negative: the simulator never schedules into the past,
/// and [`SimTime::sub`] panics (debug) / saturates (release) if the operands
/// are reversed.
///
/// ```
/// use wsn_sim_engine::time::SimDuration;
///
/// let d = SimDuration::from_millis(8) + SimDuration::from_micros(192);
/// assert_eq!(d.as_micros(), 8_192);
/// assert!((d.as_secs_f64() - 0.008192).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant at `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant at `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant at `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy above 2^53 µs).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`; saturates
    /// to zero in release builds.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// A duration from a float second count, rounded to the nearest µs.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large for the clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let micros = secs * 1e6;
        assert!(micros <= u64::MAX as f64, "duration overflows the µs clock");
        SimDuration(micros.round() as u64)
    }

    /// A duration from a float millisecond count, rounded to the nearest µs.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, NaN, or too large for the clock.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(8).as_micros(), 8_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
        assert_eq!(t - SimTime::from_micros(100), SimDuration::from_micros(50));
        assert_eq!(
            SimDuration::from_micros(30) * 4,
            SimDuration::from_micros(120)
        );
        assert_eq!(
            SimDuration::from_micros(120) / 4,
            SimDuration::from_micros(30)
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.008192);
        assert_eq!(d.as_micros(), 8_192);
        let d = SimDuration::from_millis_f64(5.28);
        assert_eq!(d.as_micros(), 5_280);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(5_280).to_string(), "5.280ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::ZERO < SimDuration::from_micros(1));
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            SimDuration::from_micros(5).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
    }
}
