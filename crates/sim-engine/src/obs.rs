//! Exposes [`ExecStats`] through the `wsn-obs` metrics registry.
//!
//! The executor already measures itself ([`ExecStats`]: events handled,
//! events scheduled, queue high-water); this module publishes those
//! numbers as long-lived gauges/counters so a serving layer can surface
//! engine load in its `stats` op without reaching into executor
//! internals. [`ExecGauges`] accumulates across runs — event counts add
//! up, the high-water mark is the maximum ever seen — which is the shape
//! an operator wants from a server that executes many simulations.

use wsn_obs::metrics::{Counter, Gauge, Registry};
use wsn_obs::span::Span;

use crate::executor::{ExecStats, ExecutorObserver};
use crate::time::SimTime;

use std::sync::Arc;

/// Obs handles for executor statistics, accumulated over many runs.
#[derive(Debug, Clone)]
pub struct ExecGauges {
    events_handled: Arc<Counter>,
    events_scheduled: Arc<Counter>,
    queue_high_water: Arc<Gauge>,
    runs: Arc<Counter>,
}

impl ExecGauges {
    /// Registers `<prefix>.events_handled`, `<prefix>.events_scheduled`,
    /// `<prefix>.queue_high_water`, and `<prefix>.runs` in `registry`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        ExecGauges {
            events_handled: registry.counter(&format!("{prefix}.events_handled")),
            events_scheduled: registry.counter(&format!("{prefix}.events_scheduled")),
            queue_high_water: registry.gauge(&format!("{prefix}.queue_high_water")),
            runs: registry.counter(&format!("{prefix}.runs")),
        }
    }

    /// Folds one run's statistics in: counts accumulate, the high-water
    /// gauge keeps the maximum across runs.
    pub fn observe(&self, stats: &ExecStats) {
        self.events_handled.add(stats.events_handled);
        self.events_scheduled.add(stats.events_scheduled);
        self.queue_high_water
            .update_max(stats.queue_high_water.min(i64::MAX as usize) as i64);
        self.runs.inc();
    }

    /// Total events handled across observed runs.
    pub fn events_handled(&self) -> u64 {
        self.events_handled.get()
    }

    /// Total events scheduled across observed runs.
    pub fn events_scheduled(&self) -> u64 {
        self.events_scheduled.get()
    }

    /// Largest pending-queue length seen in any observed run.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water.get().max(0) as u64
    }

    /// Runs observed.
    pub fn runs(&self) -> u64 {
        self.runs.get()
    }
}

/// As an [`ExecutorObserver`], `ExecGauges` folds in each run's stats as
/// the run ends — hand `&mut gauges.clone()` to
/// [`Executor::run_observed`](crate::executor::Executor::run_observed)
/// and the shared counters update (handles are `Arc`s, so a clone
/// records into the same registry entries).
impl ExecutorObserver for ExecGauges {
    fn on_run_end(&mut self, stats: &ExecStats) {
        self.observe(stats);
    }
}

/// Times a whole executor run into an obs histogram: the wall-clock of
/// each run lands in `hist` (microseconds), complementing the
/// sim-time/wall-time ratio already in [`ExecStats`]. Kept as a free
/// function so callers without an executor (e.g. shard runners timing
/// arbitrary work) can reuse the same span type.
pub fn timed_span(hist: &wsn_obs::hist::LogLinearHistogram) -> Span<'_> {
    Span::start(hist)
}

/// A tiny convenience for models that want progress heartbeats in an
/// event log: logs one `sim_progress` event every `every` handled events.
#[derive(Debug)]
pub struct LogObserver<'a> {
    log: &'a wsn_obs::log::EventLog,
    every: u64,
    seen: u64,
}

impl<'a> LogObserver<'a> {
    /// Logs to `log` every `every` events (clamped to ≥ 1).
    pub fn new(log: &'a wsn_obs::log::EventLog, every: u64) -> Self {
        LogObserver {
            log,
            every: every.max(1),
            seen: 0,
        }
    }
}

impl ExecutorObserver for LogObserver<'_> {
    fn on_event(&mut self, now: SimTime, pending: usize) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.log
                .debug("sim_progress")
                .u64("events", self.seen)
                .u64("sim_us", now.as_micros())
                .u64("pending", pending as u64)
                .emit();
        }
    }

    fn on_run_end(&mut self, stats: &ExecStats) {
        self.log
            .info("sim_run_end")
            .u64("events_handled", stats.events_handled)
            .u64("events_scheduled", stats.events_scheduled)
            .u64("queue_high_water", stats.queue_high_water as u64)
            .f64("sim_wall_ratio", stats.sim_wall_ratio())
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, Model, Scheduler};
    use crate::time::SimDuration;

    struct Ticker(u32);
    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
            if self.0 > 0 {
                self.0 -= 1;
                sched.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    #[test]
    fn gauges_accumulate_across_runs() {
        let registry = Registry::new();
        let gauges = ExecGauges::register(&registry, "sim");
        let mut observer = gauges.clone();

        let mut exec = Executor::new(Ticker(3));
        exec.seed_at(SimTime::ZERO, ());
        exec.run_observed(&mut observer);
        assert_eq!(gauges.events_handled(), 4);
        assert_eq!(gauges.runs(), 1);

        let mut exec = Executor::new(Ticker(5));
        exec.seed_at(SimTime::ZERO, ());
        exec.run_observed(&mut observer);
        assert_eq!(gauges.events_handled(), 10);
        assert_eq!(gauges.runs(), 2);
        assert!(gauges.queue_high_water() >= 1);

        // The same numbers are visible through the registry rendering.
        let json = registry.to_json();
        assert!(json.contains("\"sim.events_handled\":10"), "{json}");
        assert!(json.contains("\"sim.runs\":2"), "{json}");
    }

    #[test]
    fn observe_folds_plain_stats() {
        let registry = Registry::new();
        let gauges = ExecGauges::register(&registry, "x");
        gauges.observe(&ExecStats {
            events_handled: 7,
            events_scheduled: 9,
            queue_high_water: 4,
            sim_elapsed: SimDuration::from_millis(1),
            wall_elapsed: std::time::Duration::from_micros(10),
        });
        assert_eq!(gauges.events_handled(), 7);
        assert_eq!(gauges.events_scheduled(), 9);
        assert_eq!(gauges.queue_high_water(), 4);
    }

    #[test]
    fn log_observer_heartbeats_and_summarizes() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let log =
            wsn_obs::log::EventLog::to_writer(Box::new(buf.clone()), wsn_obs::log::Level::Debug);
        let mut exec = Executor::new(Ticker(9));
        exec.seed_at(SimTime::ZERO, ());
        exec.run_observed(&mut LogObserver::new(&log, 4));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("sim_progress"), "{text}");
        assert!(text.contains("\"event\":\"sim_run_end\""), "{text}");
        assert!(text.contains("\"events_handled\":10"), "{text}");
    }
}
