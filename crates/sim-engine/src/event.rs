//! The time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled occurrence: an event payload due at a given instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number; breaks ties FIFO so simultaneous events
    /// fire in scheduling order, keeping runs deterministic.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of future events ordered by `(time, insertion order)`.
///
/// ```
/// use wsn_sim_engine::event::EventQueue;
/// use wsn_sim_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "b");
/// q.push(SimTime::from_micros(10), "a");
/// q.push(SimTime::from_micros(20), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), "x");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(7)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(50), 50);
        q.push(t(10), 10);
        assert_eq!(q.pop().unwrap().event, 10);
        q.push(t(20), 20);
        q.push(t(5), 5);
        assert_eq!(q.pop().unwrap().event, 5);
        assert_eq!(q.pop().unwrap().event, 20);
        assert_eq!(q.pop().unwrap().event, 50);
    }
}
