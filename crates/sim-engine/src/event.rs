//! The time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled occurrence: an event payload due at a given instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number; breaks ties FIFO so simultaneous events
    /// fire in scheduling order, keeping runs deterministic.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of future events ordered by `(time, insertion order)`.
///
/// The earliest pending event is cached in a dedicated front slot outside
/// the binary heap. A single-link model spends almost its whole life in a
/// pop-then-reschedule cycle with one near event (the next MAC phase) and
/// one far event (the next arrival) pending; the slot is refilled
/// *lazily* — a pop leaves it empty, and the following push claims it
/// directly when the new event beats the heap minimum — so the dominant
/// cycle touches only the slot while the far event sits unmoved in the
/// heap. No sifts, no element shuffling. Pop order is identical to a plain
/// heap: ties are broken by sequence number (FIFO), and an empty slot is
/// only claimed by an event strictly earlier than the heap minimum, never
/// by an equal-time latecomer.
///
/// ```
/// use wsn_sim_engine::event::EventQueue;
/// use wsn_sim_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "b");
/// q.push(SimTime::from_micros(10), "a");
/// q.push(SimTime::from_micros(20), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// When `Some`, the earliest pending event (strictly earlier than every
    /// heap entry, or older at equal times). When `None`, the heap — which
    /// may be non-empty — holds all pending events.
    front: Option<Scheduled<E>>,
    /// Every pending event not in the front slot.
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            front: None,
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with heap capacity for `capacity` events
    /// beyond the front slot, so steady-state scheduling never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            front: None,
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let scheduled = Scheduled { time, seq, event };
        match &self.front {
            // Empty slot: claim it only by strictly beating the heap
            // minimum — an equal-time event must queue behind the older
            // (smaller-seq) heap entry to keep FIFO ties.
            None => match self.heap.peek() {
                Some(min) if time >= min.time => self.heap.push(scheduled),
                _ => self.front = Some(scheduled),
            },
            // Strictly earlier than the front: takes its place without a
            // sift (the displaced front moves to the heap). Equal times
            // keep the front (smaller seq) first.
            Some(front) if time < front.time => {
                let displaced = self.front.replace(scheduled).expect("front checked Some");
                self.heap.push(displaced);
            }
            Some(_) => self.heap.push(scheduled),
        }
        let len = self.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    /// Removes and returns the earliest event, if any. The front slot is
    /// left empty — the common reschedule that follows claims it directly,
    /// leaving the heap untouched.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        match self.front.take() {
            Some(earliest) => Some(earliest),
            None => self.heap.pop(),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.front {
            Some(s) => Some(s.time),
            None => self.heap.peek().map(|s| s.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.front.is_some() as usize + self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Largest pending-event count ever reached, updated on every push —
    /// so events scheduled before the first pop (e.g. executor seeds)
    /// count too.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.front = None;
        self.heap.clear();
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), "x");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(7)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(50), 50);
        q.push(t(10), 10);
        assert_eq!(q.pop().unwrap().event, 10);
        q.push(t(20), 20);
        q.push(t(5), 5);
        assert_eq!(q.pop().unwrap().event, 5);
        assert_eq!(q.pop().unwrap().event, 20);
        assert_eq!(q.pop().unwrap().event, 50);
    }

    #[test]
    fn equal_time_push_never_displaces_the_front() {
        // FIFO among equal times must survive the front-slot fast path:
        // the later push has the larger seq, so it stays behind the front.
        let mut q = EventQueue::new();
        q.push(t(10), "first");
        q.push(t(10), "second");
        q.push(t(10), "third");
        assert_eq!(q.pop().unwrap().event, "first");
        assert_eq!(q.pop().unwrap().event, "second");
        assert_eq!(q.pop().unwrap().event, "third");
    }

    #[test]
    fn empty_slot_is_not_claimed_past_an_older_equal_time_event() {
        // After a pop empties the slot, an equal-time push must queue
        // behind the older heap entry, not jump in front of it.
        let mut q = EventQueue::new();
        q.push(t(10), "near");
        q.push(t(20), "older");
        assert_eq!(q.pop().unwrap().event, "near"); // slot now empty
        q.push(t(20), "newer");
        assert_eq!(q.pop().unwrap().event, "older");
        assert_eq!(q.pop().unwrap().event, "newer");
    }

    #[test]
    fn empty_slot_is_claimed_by_a_strictly_earlier_event() {
        let mut q = EventQueue::new();
        q.push(t(10), "near");
        q.push(t(20), "far");
        assert_eq!(q.pop().unwrap().event, "near");
        q.push(t(15), "reschedule"); // beats the heap minimum → slot
        assert_eq!(q.peek_time(), Some(t(15)));
        assert_eq!(q.pop().unwrap().event, "reschedule");
        assert_eq!(q.pop().unwrap().event, "far");
        assert!(q.is_empty());
    }

    #[test]
    fn matches_exhaustive_sorted_order() {
        // Drive the queue through a fixed push/pop script and require the
        // exact (time, insertion) order a sorted list would give.
        let times = [
            9u64, 3, 7, 3, 12, 1, 7, 7, 2, 15, 4, 4, 11, 0, 8, 6, 13, 5, 10, 14,
        ];
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (i, &us) in times.iter().enumerate() {
            q.push(t(us), i);
            expected.push((us, i));
            // Interleave pops to exercise front refills mid-stream.
            if i % 3 == 2 {
                expected.sort_by_key(|&(us, i)| (us, i));
                let (us, idx) = expected.remove(0);
                let got = q.pop().unwrap();
                assert_eq!((got.time, got.event), (t(us), idx));
            }
        }
        expected.sort_by_key(|&(us, i)| (us, i));
        for (us, idx) in expected {
            let got = q.pop().unwrap();
            assert_eq!((got.time, got.event), (t(us), idx));
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_counts_prepop_pushes() {
        let mut q = EventQueue::with_capacity(8);
        assert_eq!(q.high_water(), 0);
        for i in 0..5 {
            q.push(t(5), i);
        }
        // All five were pending at once, before any pop.
        assert_eq!(q.high_water(), 5);
        while q.pop().is_some() {}
        q.push(t(9), 9);
        // Draining does not lower the mark.
        assert_eq!(q.high_water(), 5);
    }
}
