//! # wsn-sim-engine
//!
//! A small, deterministic discrete-event simulation engine.
//!
//! This crate is the execution substrate for the WSN link simulator used to
//! reproduce *"Experimental Study for Multi-layer Parameter Configuration of
//! WSN Links"* (Fu et al., ICDCS 2015). It provides:
//!
//! * [`time`] — microsecond-resolution [`SimTime`](time::SimTime) /
//!   [`SimDuration`](time::SimDuration) newtypes,
//! * [`event`] — a time-ordered [`EventQueue`](event::EventQueue) with
//!   deterministic FIFO tie-breaking,
//! * [`executor`] — the [`Model`](executor::Model) trait and
//!   [`Executor`](executor::Executor) run loop with horizon and event-budget
//!   stop conditions,
//! * [`rng`] — named deterministic random streams
//!   ([`RngFactory`](rng::RngFactory)) so that each stochastic subsystem of a
//!   simulation draws from an independent, reproducible sequence.
//!
//! ## Example
//!
//! ```
//! use wsn_sim_engine::prelude::*;
//!
//! /// A Poisson-ish arrival process that counts arrivals in 1 second.
//! struct Arrivals { count: u64 }
//!
//! impl Model for Arrivals {
//!     type Event = ();
//!     fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
//!         self.count += 1;
//!         sched.schedule_in(SimDuration::from_millis(10), ());
//!     }
//! }
//!
//! let mut exec = Executor::new(Arrivals { count: 0 })
//!     .with_horizon(SimTime::from_secs(1));
//! exec.seed_at(SimTime::ZERO, ());
//! let (reason, _) = exec.run();
//! assert_eq!(reason, StopReason::HorizonReached);
//! assert_eq!(exec.model().count, 101); // t = 0, 10ms, ..., 1000ms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod event;
pub mod executor;
pub mod mode;
pub mod obs;
pub mod rng;
pub mod time;

/// Convenient glob-import of the engine's core types.
pub mod prelude {
    pub use crate::batch::BatchExecutor;
    pub use crate::event::EventQueue;
    pub use crate::executor::{
        ExecStats, Executor, ExecutorObserver, Model, Scheduler, StopReason,
    };
    pub use crate::mode::EngineMode;
    pub use crate::rng::{FactoryStream, FastRng, NormalSampler, RngFactory, StreamId};
    pub use crate::time::{SimDuration, SimTime};
}
