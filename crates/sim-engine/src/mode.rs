//! The engine-mode seam: one switch selecting between the bit-reproducible
//! golden engine and the statistically-equivalent fast engine.
//!
//! The golden mode is the repository's oracle: an event-driven simulation
//! whose RNG draw order is pinned by the golden fixtures
//! (`tests/golden/*.jsonl`), so any refactor can be checked bit-for-bit.
//! The fast mode trades that bit-identity for throughput: it samples the
//! *same stochastic process* (same shadowing AR(1), same noise mixture,
//! same PER curves, same CSMA-CA timing composition) but coalesces the six
//! MAC events of each packet into one closed-form service-time draw and
//! uses a cheaper generator ([`FastRng`](crate::rng::FastRng)) with a
//! Ziggurat normal sampler. Equivalence between the two modes is enforced
//! distributionally (KS / confidence-interval overlap) by the tier-2
//! `distributional` test suite, never byte-for-byte.

use serde::{Deserialize, Serialize};

/// Which simulation backend a run uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineMode {
    /// The event-driven reference engine; bit-reproducible and pinned by
    /// the golden fixtures.
    #[default]
    Golden,
    /// The coalesced per-packet engine; statistically equivalent to
    /// [`EngineMode::Golden`] and roughly an order of magnitude faster.
    Fast,
    /// The closed-form engine: no sampling at all. Evaluates the same
    /// stochastic process analytically (Gaussian-mixture SNR marginal,
    /// truncated-geometric retry count, service-time moments into an
    /// M/G/1-style waiting-time approximation) and returns the full
    /// metric set in microseconds per configuration. Deterministic:
    /// the seed never changes its answers.
    Analytic,
}

impl EngineMode {
    /// Canonical lower-case name (`"golden"` / `"fast"` / `"analytic"`),
    /// as accepted by CLI flags and the serve protocol.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Golden => "golden",
            EngineMode::Fast => "fast",
            EngineMode::Analytic => "analytic",
        }
    }

    /// Parses a mode name as written in CLI flags / protocol requests.
    pub fn from_name(name: &str) -> Option<EngineMode> {
        match name {
            "golden" => Some(EngineMode::Golden),
            "fast" => Some(EngineMode::Fast),
            "analytic" => Some(EngineMode::Analytic),
            _ => None,
        }
    }

    /// A mode-specific constant mixed into derived seeds so the two
    /// engines never share random streams even for identical
    /// `(config, seed)` pairs.
    pub fn seed_tag(self) -> u64 {
        match self {
            // ASCII "GOLD" / "FAST" / "ANLY" — arbitrary distinct constants.
            // The analytic engine draws nothing, but it still gets a tag so
            // seed derivation stays total over the enum.
            EngineMode::Golden => 0x474F_4C44,
            EngineMode::Fast => 0x4641_5354,
            EngineMode::Analytic => 0x414E_4C59,
        }
    }

    /// All modes, in declaration order. Handy for sweeps and benches.
    pub const ALL: [EngineMode; 3] = [EngineMode::Golden, EngineMode::Fast, EngineMode::Analytic];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for mode in EngineMode::ALL {
            assert_eq!(EngineMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(EngineMode::from_name("warp"), None);
    }

    #[test]
    fn default_is_golden() {
        assert_eq!(EngineMode::default(), EngineMode::Golden);
    }

    #[test]
    fn seed_tags_differ() {
        for a in EngineMode::ALL {
            for b in EngineMode::ALL {
                if a != b {
                    assert_ne!(a.seed_tag(), b.seed_tag());
                }
            }
        }
    }
}
