//! Property tests for the discrete-event engine.

use proptest::prelude::*;

use wsn_sim_engine::event::EventQueue;
use wsn_sim_engine::executor::{Executor, Model, Scheduler};
use wsn_sim_engine::rng::{RngFactory, StreamId};
use wsn_sim_engine::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        times in prop::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(s.time >= lt);
                if s.time == lt {
                    // Same instant: insertion order (ids ascending among
                    // equal times).
                    prop_assert!(s.event > li || times[s.event] != times[li]);
                }
            }
            last = Some((s.time, s.event));
        }
        prop_assert_eq!(q.scheduled_total(), times.len() as u64);
    }

    #[test]
    fn executor_clock_is_monotone_for_random_fanout(
        delays in prop::collection::vec(1u64..5000, 1..50),
    ) {
        struct Fanout {
            delays: Vec<u64>,
            next: usize,
            seen: Vec<SimTime>,
        }
        impl Model for Fanout {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                self.seen.push(sched.now());
                // Schedule up to two more events with data-driven delays.
                for _ in 0..2 {
                    if self.next < self.delays.len() {
                        let d = self.delays[self.next];
                        self.next += 1;
                        sched.schedule_in(SimDuration::from_micros(d), ());
                    }
                }
            }
        }
        let mut exec = Executor::new(Fanout {
            delays,
            next: 0,
            seen: Vec::new(),
        });
        exec.seed_at(SimTime::ZERO, ());
        exec.run();
        let seen = &exec.model().seen;
        prop_assert!(!seen.is_empty());
        for pair in seen.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn rng_streams_are_stable_and_isolated(seed in any::<u64>(), a in 0u64..100, b in 0u64..100) {
        use rand::Rng;
        let f = RngFactory::new(seed);
        let x1: u64 = f.stream(StreamId::Custom(a)).gen();
        let x2: u64 = f.stream(StreamId::Custom(a)).gen();
        prop_assert_eq!(x1, x2); // stable
        if a != b {
            let y: u64 = f.stream(StreamId::Custom(b)).gen();
            prop_assert_ne!(x1, y); // isolated (collision chance ~2^-64)
        }
    }

    #[test]
    fn durations_add_like_integers(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let d = SimDuration::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(d.as_micros(), a + b);
        let t = SimTime::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(t.duration_since(SimTime::from_micros(a)).as_micros(), b);
    }
}
