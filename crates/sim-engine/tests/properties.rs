//! Property tests for the discrete-event engine.

use proptest::prelude::*;

use wsn_sim_engine::event::EventQueue;
use wsn_sim_engine::executor::{Executor, Model, Scheduler};
use wsn_sim_engine::rng::{FastRng, NormalSampler, RngFactory, StreamId};
use wsn_sim_engine::time::{SimDuration, SimTime};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirical two-sample Kolmogorov–Smirnov statistic.
fn ks_statistic(mut a: Vec<f64>, mut b: Vec<f64>) -> f64 {
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < n && j < m {
        let x = if a[i] <= b[j] { a[i] } else { b[j] };
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    d
}

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        times in prop::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(s.time >= lt);
                if s.time == lt {
                    // Same instant: insertion order (ids ascending among
                    // equal times).
                    prop_assert!(s.event > li || times[s.event] != times[li]);
                }
            }
            last = Some((s.time, s.event));
        }
        prop_assert_eq!(q.scheduled_total(), times.len() as u64);
    }

    #[test]
    fn executor_clock_is_monotone_for_random_fanout(
        delays in prop::collection::vec(1u64..5000, 1..50),
    ) {
        struct Fanout {
            delays: Vec<u64>,
            next: usize,
            seen: Vec<SimTime>,
        }
        impl Model for Fanout {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                self.seen.push(sched.now());
                // Schedule up to two more events with data-driven delays.
                for _ in 0..2 {
                    if self.next < self.delays.len() {
                        let d = self.delays[self.next];
                        self.next += 1;
                        sched.schedule_in(SimDuration::from_micros(d), ());
                    }
                }
            }
        }
        let mut exec = Executor::new(Fanout {
            delays,
            next: 0,
            seen: Vec::new(),
        });
        exec.seed_at(SimTime::ZERO, ());
        exec.run();
        let seen = &exec.model().seen;
        prop_assert!(!seen.is_empty());
        for pair in seen.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn rng_streams_are_stable_and_isolated(seed in any::<u64>(), a in 0u64..100, b in 0u64..100) {
        use rand::Rng;
        let f = RngFactory::new(seed);
        let x1: u64 = f.stream(StreamId::Custom(a)).gen();
        let x2: u64 = f.stream(StreamId::Custom(a)).gen();
        prop_assert_eq!(x1, x2); // stable
        if a != b {
            let y: u64 = f.stream(StreamId::Custom(b)).gen();
            prop_assert_ne!(x1, y); // isolated (collision chance ~2^-64)
        }
    }

    #[test]
    fn ziggurat_moments_match_the_standard_normal(seed in any::<u64>()) {
        // The fast engine's Ziggurat transform must produce N(0, 1) for
        // any stream seed: mean ≈ 0, variance ≈ 1, symmetric tails.
        let mut rng = FastRng::new(seed);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        // 5σ-ish bounds at n = 20k: se(mean) ≈ 0.0071, se(var) ≈ 0.01.
        prop_assert!(mean.abs() < 0.036, "mean = {mean}");
        prop_assert!((var - 1.0).abs() < 0.06, "var = {var}");
        let above = samples.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
        let below = samples.iter().filter(|&&x| x < -1.0).count() as f64 / n as f64;
        // P(X > 1) = 0.1587 on both sides.
        prop_assert!((above - 0.1587).abs() < 0.02, "upper tail = {above}");
        prop_assert!((below - 0.1587).abs() < 0.02, "lower tail = {below}");
    }

    #[test]
    fn ziggurat_and_box_muller_agree_in_distribution(seed in any::<u64>()) {
        // Cross-transform KS: the golden Box–Muller path (StdRng) and the
        // fast Ziggurat path (FastRng) must sample the same distribution
        // regardless of seed.
        let n = 8_192;
        let mut golden = StdRng::seed_from_u64(seed);
        let mut fast = FastRng::new(seed.wrapping_add(1));
        let a: Vec<f64> = (0..n).map(|_| golden.sample_standard_normal()).collect();
        let b: Vec<f64> = (0..n).map(|_| fast.sample_standard_normal()).collect();
        let d = ks_statistic(a, b);
        // c(α)·sqrt(2n/n²) at α = 10⁻⁴ ≈ 0.0336 for n = m = 8192.
        let threshold = 2.15 * (2.0 / n as f64).sqrt();
        prop_assert!(d <= threshold, "KS = {d:.4} > {threshold:.4}");
    }

    #[test]
    fn durations_add_like_integers(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let d = SimDuration::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(d.as_micros(), a + b);
        let t = SimTime::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(t.duration_since(SimTime::from_micros(a)).as_micros(), b);
    }
}
