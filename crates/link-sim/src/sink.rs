//! Streaming consumers of per-packet records.
//!
//! The simulation produces one [`PacketRecord`] per application packet. A
//! [`PacketSink`] receives each record the moment the packet's fate is
//! decided, instead of the simulation buffering every record in memory.
//! Built-in sinks:
//!
//! * [`NullSink`] — discards records; the zero-overhead default.
//! * [`VecSink`] — collects records in memory, reproducing the historical
//!   `record_packets: true` behavior.
//! * [`FnSink`] — adapts a closure.
//!
//! Summary metrics do not require a sink: the simulation folds every record
//! into a [`MetricsAccumulator`](crate::metrics::MetricsAccumulator) as it
//! streams, so a [`NullSink`] run still yields exact
//! [`LinkMetrics`](crate::metrics::LinkMetrics).

use crate::record::PacketRecord;

/// A streaming consumer of per-packet records.
///
/// `on_packet` is called exactly once per generated packet, in order of
/// fate decision (queue drops at arrival time, completions at service end).
pub trait PacketSink {
    /// Consumes one finished packet record.
    fn on_packet(&mut self, record: &PacketRecord);

    /// Whether this sink actually consumes records.
    ///
    /// A metrics-only run (the campaign hot path) answers `false` through
    /// [`NullSink`], letting the simulation skip the per-packet sink
    /// hand-off entirely — the summary fold still sees every packet. The
    /// answer must be constant for the lifetime of one run; the simulation
    /// reads it once at start-up.
    fn wants_records(&self) -> bool {
        true
    }
}

impl<S: PacketSink + ?Sized> PacketSink for &mut S {
    fn on_packet(&mut self, record: &PacketRecord) {
        (**self).on_packet(record);
    }

    fn wants_records(&self) -> bool {
        (**self).wants_records()
    }
}

/// Discards every record; use when only summary metrics are wanted.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl PacketSink for NullSink {
    fn on_packet(&mut self, _record: &PacketRecord) {}

    fn wants_records(&self) -> bool {
        false
    }
}

/// Collects every record in memory (memory grows with packet count).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<PacketRecord>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_records(self) -> Vec<PacketRecord> {
        self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was collected yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl PacketSink for VecSink {
    fn on_packet(&mut self, record: &PacketRecord) {
        self.records.push(*record);
    }
}

/// Adapts a closure into a sink: `FnSink::new(|r| total += r.tries as u64)`.
#[derive(Debug)]
pub struct FnSink<F: FnMut(&PacketRecord)>(F);

impl<F: FnMut(&PacketRecord)> FnSink<F> {
    /// Wraps `f` as a sink.
    pub fn new(f: F) -> Self {
        FnSink(f)
    }
}

impl<F: FnMut(&PacketRecord)> PacketSink for FnSink<F> {
    fn on_packet(&mut self, record: &PacketRecord) {
        (self.0)(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PacketFate;

    fn record(seq: u64) -> PacketRecord {
        PacketRecord {
            seq,
            t_arrival: wsn_sim_engine::time::SimTime::ZERO,
            t_service_start: None,
            t_done: None,
            tries: 0,
            queue_depth: 1,
            fate: PacketFate::QueueDropped,
            sender_acked: false,
            last_rssi_dbm: f64::NAN,
            last_snr_db: f64::NAN,
            last_lqi: 0,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        for seq in 0..5 {
            sink.on_packet(&record(seq));
        }
        assert_eq!(sink.len(), 5);
        let seqs: Vec<u64> = sink.into_records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fn_sink_runs_closure() {
        let mut count = 0u64;
        {
            let mut sink = FnSink::new(|_r: &PacketRecord| count += 1);
            sink.on_packet(&record(0));
            sink.on_packet(&record(1));
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn wants_records_defaults_true_and_null_sink_opts_out() {
        assert!(VecSink::new().wants_records());
        assert!(FnSink::new(|_r: &PacketRecord| {}).wants_records());
        assert!(!NullSink.wants_records());
        // The forwarding impl must relay the hint, not reset it.
        fn relayed<S: PacketSink>(sink: S) -> bool {
            sink.wants_records()
        }
        assert!(!relayed(&mut NullSink));
        assert!(relayed(&mut VecSink::new()));
    }

    #[test]
    fn mut_ref_to_sink_is_a_sink() {
        fn feed<S: PacketSink>(mut s: S) {
            s.on_packet(&record(9));
        }
        let mut sink = VecSink::new();
        feed(&mut sink);
        assert_eq!(sink.len(), 1);
        assert!(!sink.is_empty());
        assert_eq!(sink.records()[0].seq, 9);
    }
}
