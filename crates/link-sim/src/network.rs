//! The shared-channel multi-link network simulator: N sender→receiver
//! links from one [`Scenario`] run in a single event loop against a
//! [`SharedAir`] that tracks who is transmitting when.
//!
//! Where the single-link [`simulation`](crate::simulation) folds all
//! contention into a fixed CCA busy probability, here both contention
//! mechanisms *emerge* from geometry:
//!
//! * **Carrier sense** — a CCA samples actual occupancy: it reports busy
//!   when any foreign frame is on the air whose sender is received above
//!   the scenario's carrier-sense threshold at this link's sender. Senders
//!   too far apart to hear each other (the hidden-terminal geometry) pass
//!   CCA and collide.
//! * **Capture** — frames that overlap at a receiver resolve by SINR: the
//!   foreign mean powers are energy-summed ([`combine_dbm`]) into the
//!   noise floor, and a frame whose SINR falls below the scenario's
//!   capture threshold is lost outright. Above it, the frame survives with
//!   a degraded observation.
//!
//! **N = 1 equivalence contract**: a churn-free single-link scenario
//! reproduces [`LinkSimulation`](crate::simulation::LinkSimulation)
//! bit-for-bit — same RNG streams (link 0 uses the undérived factory),
//! same event ordering, and a shared air that never reports occupancy or
//! overlap for a lone link. `tests/network_equivalence.rs` pins this
//! against the golden fixtures.

use serde::{Deserialize, Serialize};
use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;
use wsn_params::types::Distance;
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::interference::InterferenceModel;
use wsn_sim_engine::executor::{ExecStats, Executor, Model, Scheduler, StopReason};
use wsn_sim_engine::rng::RngFactory;
use wsn_sim_engine::time::{SimDuration, SimTime};

use rand::rngs::StdRng;

use wsn_mac::transaction::Transaction;
use wsn_radio::interference::combine_dbm;

use crate::link::{LinkCore, LinkEv, Medium};
use crate::metrics::LinkMetrics;
use crate::record::PacketRecord;
use crate::traffic::TrafficModel;

/// Options controlling one network run. Mirrors
/// [`SimOptions`](crate::simulation::SimOptions) minus the trajectory
/// (which is per-link, on the [`Scenario`]'s link specs).
#[derive(Debug, Clone, PartialEq)]
pub struct NetOptions {
    /// Packets each link's application generates.
    pub packets: u64,
    /// Experiment seed; link `i` draws its RNG streams from the factory
    /// derived at index `i` (link 0 uses the base factory, preserving the
    /// single-link seeding).
    pub seed: u64,
    /// Propagation environment, shared by every link.
    pub channel: ChannelConfig,
    /// Arrival process, shared by every link.
    pub traffic: TrafficModel,
    /// Keep per-packet records in the outcome (memory ∝ packets × links).
    pub record_packets: bool,
    /// Optional hard cap on simulated time.
    pub horizon: Option<SimDuration>,
}

impl NetOptions {
    /// A reduced-size run for tests and examples.
    pub fn quick(packets: u64) -> Self {
        NetOptions {
            packets,
            seed: 0x00C0_FFEE,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
        }
    }

    /// Returns the options with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the options with a different channel.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the options with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }
}

/// Aggregate shared-air counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AirStats {
    /// Data frames put on the air across all links.
    pub frames: u64,
    /// Frames that shared airtime with at least one foreign frame.
    pub overlapped_frames: u64,
    /// CCAs that found the channel genuinely occupied (deferrals caused by
    /// carrier-sensing a real neighbor, not the probabilistic model).
    pub cca_busy_hits: u64,
}

/// One link's slice of a [`NetworkOutcome`].
#[derive(Debug, Clone)]
pub struct LinkOutcome {
    /// The link's stack configuration.
    pub config: StackConfig,
    /// Summary metrics, identical in shape to the single-link run.
    pub metrics: LinkMetrics,
    /// Frames of this link that shared airtime with a foreign frame.
    pub frames_interfered: u64,
    /// Interfered frames lost below the capture threshold.
    pub frames_capture_lost: u64,
    /// Per-packet records if requested in [`NetOptions::record_packets`].
    pub records: Option<Vec<PacketRecord>>,
}

/// Result of one network run.
#[derive(Debug, Clone)]
pub struct NetworkOutcome {
    /// Per-link results, in scenario order.
    pub links: Vec<LinkOutcome>,
    /// Shared-air counters.
    pub air: AirStats,
    /// Why the run ended.
    pub stop: StopReason,
    /// Final simulation clock.
    pub end_time: SimTime,
    /// Executor statistics for the whole network.
    pub exec: ExecStats,
}

impl NetworkOutcome {
    /// Total packets lost to the radio across all links, over total
    /// generated — the network-wide radio loss rate.
    pub fn plr_radio(&self) -> f64 {
        let lost: u64 = self.links.iter().map(|l| l.metrics.radio_lost).sum();
        let generated: u64 = self.links.iter().map(|l| l.metrics.generated).sum();
        if generated == 0 {
            0.0
        } else {
            lost as f64 / generated as f64
        }
    }

    /// Sum of per-link goodputs, bit/s.
    pub fn goodput_bps(&self) -> f64 {
        self.links.iter().map(|l| l.metrics.goodput_bps).sum()
    }
}

/// A configured, runnable multi-link simulation.
///
/// ```
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(31)
///     .payload_bytes(50)
///     .build()?;
/// let outcome = NetworkSimulation::new(
///     Scenario::parallel(&[cfg, cfg], 2.0),
///     NetOptions::quick(100),
/// )
/// .run();
/// assert_eq!(outcome.links.len(), 2);
/// assert!(outcome.air.frames > 0);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSimulation {
    scenario: Scenario,
    options: NetOptions,
}

impl NetworkSimulation {
    /// Creates a simulation of `scenario` under `options`.
    pub fn new(scenario: Scenario, options: NetOptions) -> Self {
        NetworkSimulation { scenario, options }
    }

    /// Runs every link of the scenario to completion in one event loop.
    pub fn run(self) -> NetworkOutcome {
        let n = self.scenario.len();
        let base = RngFactory::new(self.options.seed);
        let links: Vec<LinkCore> = self
            .scenario
            .links
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                // Link 0 keeps the base factory so a 1-link scenario is
                // bit-identical to the direct single-link simulation.
                let factory = if i == 0 {
                    RngFactory::new(self.options.seed)
                } else {
                    base.derive(i as u64)
                };
                let channel = Channel::new(
                    self.options.channel,
                    spec.config.power,
                    spec.config.distance,
                );
                LinkCore::new(
                    i,
                    spec.config,
                    channel,
                    self.options.traffic,
                    spec.trajectory,
                    self.options.packets,
                    &factory,
                )
            })
            .collect();
        let air = SharedAir::new(&self.scenario, &self.options.channel);
        let record = self.options.record_packets;
        let model = NetModel {
            links,
            air,
            records: (0..n).map(|_| Vec::new()).collect(),
            record,
        };
        let mut exec = Executor::new(model);
        if let Some(h) = self.options.horizon {
            exec = exec.with_horizon(SimTime::ZERO + h);
        }
        for (i, spec) in self.scenario.links.iter().enumerate() {
            let start = SimTime::ZERO + SimDuration::from_secs_f64(spec.join_s.unwrap_or(0.0));
            exec.seed_at(
                start,
                NetEv {
                    link: i as u32,
                    kind: NetKind::Arrival,
                },
            );
            if let Some(leave_s) = spec.leave_s {
                exec.seed_at(
                    SimTime::ZERO + SimDuration::from_secs_f64(leave_s),
                    NetEv {
                        link: i as u32,
                        kind: NetKind::Depart,
                    },
                );
            }
        }
        let (stop, end_time) = exec.run_observed(&mut ());
        let exec_stats = *exec.last_stats().expect("run records stats");
        let mut model = exec.into_model();

        let total = end_time - SimTime::ZERO;
        let mut outcomes = Vec::with_capacity(n);
        for (core, records) in model.links.iter_mut().zip(model.records.drain(..)) {
            let metrics = core.finalize(total);
            outcomes.push(LinkOutcome {
                config: core.config(),
                metrics,
                frames_interfered: core.frames_interfered(),
                frames_capture_lost: core.frames_capture_lost(),
                records: record.then_some(records),
            });
        }
        NetworkOutcome {
            links: outcomes,
            air: model.air.stats(),
            stop,
            end_time,
            exec: exec_stats,
        }
    }
}

/// A network event: which link, and which of its per-link events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NetEv {
    link: u32,
    kind: NetKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetKind {
    Arrival,
    MacPhase,
    Depart,
}

struct NetModel {
    links: Vec<LinkCore>,
    air: SharedAir,
    records: Vec<Vec<PacketRecord>>,
    record: bool,
}

impl Model for NetModel {
    type Event = NetEv;

    fn handle(&mut self, event: NetEv, sched: &mut Scheduler<'_, NetEv>) {
        let NetModel {
            links,
            air,
            records,
            record,
        } = self;
        let i = event.link as usize;
        let core = &mut links[i];
        let wrap = |e: LinkEv| NetEv {
            link: event.link,
            kind: match e {
                LinkEv::Arrival => NetKind::Arrival,
                LinkEv::MacPhase => NetKind::MacPhase,
            },
        };
        let mut out = |r: &PacketRecord| {
            if *record {
                records[i].push(*r);
            }
        };
        match event.kind {
            NetKind::Arrival => core.on_arrival(sched, &wrap, air, &mut out),
            NetKind::MacPhase => core.pump(sched, &wrap, air, &mut out),
            NetKind::Depart => core.depart(),
        }
    }
}

/// One frame's airtime interval.
#[derive(Debug, Clone, Copy)]
struct Frame {
    start: SimTime,
    end: SimTime,
}

/// The shared radio channel: per-pair mean received powers from the
/// scenario geometry, the set of frames currently on the air, and an
/// overlap matrix resolved at each frame's end.
///
/// Cross-link gains use the *mean* path loss (no per-pair shadowing): the
/// foreign-power matrices are computed once from geometry, which keeps the
/// medium deterministic and allocation-free on the hot path. Each link's
/// own channel keeps its full fading dynamics.
struct SharedAir {
    /// `rx_power_dbm[i][j]`: mean power of link `j`'s sender at link `i`'s
    /// receiver (`-inf` on the diagonal).
    rx_power_dbm: Vec<Vec<f64>>,
    /// `cs_power_dbm[i][j]`: mean power of link `j`'s sender at link `i`'s
    /// sender — what `i`'s CCA listens to.
    cs_power_dbm: Vec<Vec<f64>>,
    cca_threshold_dbm: f64,
    capture_db: f64,
    /// The frame each link currently has on the air, if any.
    on_air: Vec<Option<Frame>>,
    /// `hit[i][j]`: link `j`'s transmission overlapped link `i`'s current
    /// frame. Accumulated at registration, consumed at resolution.
    hit: Vec<Vec<bool>>,
    frames: u64,
    overlapped_frames: u64,
    cca_busy_hits: u64,
}

impl SharedAir {
    fn new(scenario: &Scenario, channel: &ChannelConfig) -> Self {
        let n = scenario.len();
        let gain = |from: usize, to_pos: &wsn_params::scenario::Position| {
            let spec = &scenario.links[from];
            let meters = spec.sender.distance_m(to_pos).max(0.1);
            channel.pathloss.mean_rssi_dbm(
                spec.config.power,
                Distance::from_meters(meters).expect("clamped positive"),
            )
        };
        let mut rx_power_dbm = vec![vec![f64::NEG_INFINITY; n]; n];
        let mut cs_power_dbm = vec![vec![f64::NEG_INFINITY; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                rx_power_dbm[i][j] = gain(j, &scenario.links[i].receiver);
                cs_power_dbm[i][j] = gain(j, &scenario.links[i].sender);
            }
        }
        SharedAir {
            rx_power_dbm,
            cs_power_dbm,
            cca_threshold_dbm: scenario.cca_threshold_dbm,
            capture_db: scenario.capture_db,
            on_air: vec![None; n],
            hit: vec![vec![false; n]; n],
            frames: 0,
            overlapped_frames: 0,
            cca_busy_hits: 0,
        }
    }

    fn stats(&self) -> AirStats {
        AirStats {
            frames: self.frames,
            overlapped_frames: self.overlapped_frames,
            cca_busy_hits: self.cca_busy_hits,
        }
    }
}

impl Medium for SharedAir {
    fn cca_busy(&mut self, link: usize, now: SimTime, txn: &Transaction, rng: &mut StdRng) -> bool {
        // Real occupancy first: any foreign frame on the air right now
        // whose sender this link receives above the carrier-sense
        // threshold. The transmit-anyway budget still applies — after
        // MAX_CCA_RETRIES deferrals the MAC sends regardless, like the
        // congestion-override path.
        if txn.cca_retries() < Transaction::MAX_CCA_RETRIES {
            for (j, frame) in self.on_air.iter().enumerate() {
                if j == link {
                    continue;
                }
                if let Some(f) = frame {
                    if f.start <= now
                        && now < f.end
                        && self.cs_power_dbm[link][j] >= self.cca_threshold_dbm
                    {
                        self.cca_busy_hits += 1;
                        return true;
                    }
                }
            }
        }
        // Fall back to the probabilistic model so configured *external*
        // interference (WiFi and friends) still registers.
        Transaction::sample_cca_busy(txn, rng)
    }

    fn frame_on_air(&mut self, link: usize, start: SimTime, _end: SimTime) {
        self.frames += 1;
        for h in &mut self.hit[link] {
            *h = false;
        }
        // Every frame still on the air overlaps the new one: flag both
        // directions, so each victim resolves the overlap at its own end.
        for i in 0..self.on_air.len() {
            if i == link {
                continue;
            }
            if let Some(f) = self.on_air[i] {
                if f.end > start {
                    self.hit[i][link] = true;
                    self.hit[link][i] = true;
                }
            }
        }
        self.on_air[link] = Some(Frame { start, end: _end });
    }

    fn frame_interference_dbm(
        &mut self,
        link: usize,
        _start: SimTime,
        _end: SimTime,
    ) -> Option<f64> {
        self.on_air[link] = None;
        let mut foreign: Option<f64> = None;
        for j in 0..self.hit[link].len() {
            if !self.hit[link][j] {
                continue;
            }
            self.hit[link][j] = false;
            let p = self.rx_power_dbm[link][j];
            foreign = Some(match foreign {
                None => p,
                Some(acc) => combine_dbm(acc, p),
            });
        }
        if foreign.is_some() {
            self.overlapped_frames += 1;
        }
        foreign
    }

    fn capture_db(&self) -> f64 {
        self.capture_db
    }
}

/// Promotes a configured [`InterferenceModel`] into an explicit in-network
/// interferer link, so the shared-channel machinery (real CCA deferral,
/// SINR capture) replaces the probabilistic approximation.
///
/// Returns `None` when the model has no shared-channel equivalent: an
/// inactive model, or a non-CCA-detectable one (broadband WiFi noise below
/// the 802.15.4 carrier-sense floor — that stays on the legacy
/// probabilistic path, as exercised by `examples/interference_study.rs`).
///
/// The interferer is placed so its mean received power at the victim's
/// receiver equals the model's `power_dbm`, and its traffic is periodic
/// with the packet interval chosen so its airtime duty cycle matches the
/// model's `duty_cycle`.
pub fn scenario_from_interference(
    victim: StackConfig,
    model: &InterferenceModel,
    channel: &ChannelConfig,
) -> Option<Scenario> {
    use wsn_params::scenario::{LinkSpec, Position};

    if model.is_none() || !model.cca_detectable {
        return None;
    }
    // Range at which the interferer's transmissions land on the victim
    // receiver at the modeled power.
    let range_m = channel
        .pathloss
        .range_for_rssi_m(victim.power, model.power_dbm)
        .max(0.1);
    // One frame airtime at 250 kbit/s is 32 µs per air byte; a periodic
    // source with interval = airtime / duty reproduces the duty cycle.
    let frame_s = victim.frame().air_bytes() as f64 * 32e-6;
    let duty = model.duty_cycle.clamp(1e-4, 1.0);
    let interval_ms = ((frame_s / duty) * 1e3).round().clamp(1.0, u32::MAX as f64) as u32;
    let interferer = StackConfig::builder()
        .distance_m(2.0)
        .power_level(victim.power.level())
        .payload_bytes(victim.payload.bytes())
        .max_tries(1)
        .retry_delay_ms(0)
        .queue_cap(1)
        .packet_interval_ms(interval_ms)
        .build()
        .ok()?;

    let d = victim.distance.meters();
    Some(Scenario::new(vec![
        // The victim link along the x-axis.
        LinkSpec::along_x(victim, 0.0),
        // The interferer `range_m` off the victim's receiver, its own
        // receiver 2 m further out.
        LinkSpec::at(
            Position::new(d, range_m),
            Position::new(d + 2.0, range_m),
            interferer,
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{LinkSimulation, SimOptions};
    use wsn_params::scenario::Scenario;

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    fn sim_options(net: &NetOptions) -> SimOptions {
        SimOptions {
            packets: net.packets,
            seed: net.seed,
            channel: net.channel,
            traffic: net.traffic,
            record_packets: net.record_packets,
            horizon: net.horizon,
            trajectory: wsn_params::motion::Trajectory::Stationary,
        }
    }

    #[test]
    fn single_link_scenario_matches_direct_simulation_bit_for_bit() {
        for (power, dist) in [(31u8, 10.0), (23, 35.0), (3, 35.0)] {
            let options = NetOptions::quick(200).with_seed(0x5EED);
            let direct = LinkSimulation::new(cfg(power, dist), sim_options(&options)).run();
            let net = NetworkSimulation::new(Scenario::single(cfg(power, dist)), options).run();
            assert_eq!(net.links.len(), 1);
            assert_eq!(direct.metrics(), &net.links[0].metrics);
            assert_eq!(net.links[0].frames_interfered, 0);
            assert_eq!(net.air.overlapped_frames, 0);
            assert_eq!(net.air.cca_busy_hits, 0);
        }
    }

    #[test]
    fn single_link_records_match_direct_simulation() {
        let mut options = NetOptions::quick(150).with_seed(7);
        options.record_packets = true;
        let direct = LinkSimulation::new(cfg(23, 35.0), sim_options(&options)).run();
        let net = NetworkSimulation::new(Scenario::single(cfg(23, 35.0)), options).run();
        assert_eq!(direct.records, net.links[0].records);
    }

    #[test]
    fn hidden_pair_loses_more_than_exposed_pair() {
        let c = cfg(11, 35.0);
        let hidden = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(300)).run();
        let exposed =
            NetworkSimulation::new(Scenario::exposed_pair(c), NetOptions::quick(300)).run();
        // Hidden senders cannot carrier-sense each other: no real CCA
        // deferrals, plenty of overlaps.
        assert_eq!(hidden.air.cca_busy_hits, 0, "hidden senders must not CS");
        assert!(
            hidden.air.overlapped_frames > exposed.air.overlapped_frames,
            "hidden {} vs exposed {} overlaps",
            hidden.air.overlapped_frames,
            exposed.air.overlapped_frames
        );
        // Exposed senders defer instead of colliding.
        assert!(exposed.air.cca_busy_hits > 0, "exposed senders must defer");
        assert!(
            hidden.plr_radio() > exposed.plr_radio(),
            "hidden plr {} vs exposed plr {}",
            hidden.plr_radio(),
            exposed.plr_radio()
        );
    }

    #[test]
    fn network_run_is_bit_reproducible() {
        let c = cfg(11, 35.0);
        let a = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(200)).run();
        let b = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(200)).run();
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.metrics, lb.metrics);
        }
        assert_eq!(a.air, b.air);
    }

    #[test]
    fn churn_reduces_generated_traffic() {
        let c = cfg(31, 10.0);
        let mut scenario = Scenario::parallel(&[c, c], 2.0);
        // Link 1 joins late and leaves early; with 50 ms intervals and a
        // 400-packet budget it cannot generate its full budget.
        scenario.links[1] = scenario.links[1].joining_at(5.0).leaving_at(10.0);
        let options = NetOptions {
            horizon: Some(SimDuration::from_secs_f64(30.0)),
            ..NetOptions::quick(400)
        };
        let out = NetworkSimulation::new(scenario, options).run();
        assert_eq!(out.links[0].metrics.generated, 400);
        assert!(
            out.links[1].metrics.generated < 400,
            "churned link generated {}",
            out.links[1].metrics.generated
        );
        assert!(out.links[1].metrics.generated > 0);
    }

    #[test]
    fn interference_promotion_builds_two_link_scenario() {
        let victim = cfg(31, 20.0);
        let channel = ChannelConfig::paper_hallway();
        let model = InterferenceModel::zigbee_neighbor(0.1);
        let scenario = scenario_from_interference(victim, &model, &channel)
            .expect("detectable interferer promotes");
        assert_eq!(scenario.len(), 2);
        // The interferer's mean power at the victim receiver matches the
        // model within rounding.
        let rx = &scenario.links[0].receiver;
        let d = scenario.links[1].sender.distance_m(rx);
        let got = channel.pathloss.mean_rssi_dbm(
            scenario.links[1].config.power,
            Distance::from_meters(d).unwrap(),
        );
        assert!((got - model.power_dbm).abs() < 0.5, "rx power {got}");

        // Non-detectable (WiFi) and inactive models stay on the legacy
        // probabilistic path.
        assert!(
            scenario_from_interference(victim, &InterferenceModel::wifi_moderate(), &channel)
                .is_none()
        );
        assert!(scenario_from_interference(victim, &InterferenceModel::none(), &channel).is_none());
    }
}
