//! The shared-channel multi-link network simulator: N sender→receiver
//! links from one [`Scenario`] run in a single event loop against a
//! [`SharedAir`] that tracks who is transmitting when.
//!
//! Where the single-link [`simulation`](crate::simulation) folds all
//! contention into a fixed CCA busy probability, here both contention
//! mechanisms *emerge* from geometry:
//!
//! * **Carrier sense** — a CCA samples actual occupancy: it reports busy
//!   when any foreign frame is on the air whose sender is received above
//!   the scenario's carrier-sense threshold at this link's sender. Senders
//!   too far apart to hear each other (the hidden-terminal geometry) pass
//!   CCA and collide.
//! * **Capture** — frames that overlap at a receiver resolve by SINR: the
//!   foreign mean powers are energy-summed ([`combine_dbm`]) into the
//!   noise floor, and a frame whose SINR falls below the scenario's
//!   capture threshold is lost outright. Above it, the frame survives with
//!   a degraded observation.
//!
//! Two axes of scale were added by the dynamic-topology refactor:
//!
//! * **Timelines** — the run replays a
//!   [`ScenarioTimeline`](wsn_params::timeline::ScenarioTimeline): the
//!   scenario's own `join_s`/`leave_s` churn compiles into `Join`/`Leave`
//!   events, and callers can merge explicit `Move`/`PowerChange`/storm
//!   streams on top ([`NetworkSimulation::with_timeline`]). Events apply
//!   between MAC transactions; a frame already on the air resolves under
//!   the neighborhood it started with.
//! * **Sparse neighborhoods** — instead of dense N×N gain matrices, each
//!   link keeps only the neighbors received above
//!   [`NetOptions::prune_floor_dbm`] at its receiver (interference set)
//!   and above the carrier-sense threshold at its sender (CCA set), found
//!   through a uniform spatial grid. A `Move` re-derives one link's
//!   in/out edges in O(neighborhood) via reverse indexes — not O(N²) —
//!   which is what lets ext13 run 1024 links. The default floor is
//!   `-inf` (no pruning): neighbor sets then equal the dense matrix row
//!   by construction, keeping every pre-refactor scenario byte-identical.
//!
//! **N = 1 equivalence contract**: a churn-free single-link scenario
//! reproduces [`LinkSimulation`](crate::simulation::LinkSimulation)
//! bit-for-bit — same RNG streams (link 0 uses the undérived factory),
//! same event ordering, and a shared air that never reports occupancy or
//! overlap for a lone link. `tests/network_equivalence.rs` pins this
//! against the golden fixtures, and pins the catalog scenarios through
//! the sparse path against `tests/golden/scenarios.jsonl`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use wsn_params::config::StackConfig;
use wsn_params::scenario::{Position, Scenario};
use wsn_params::timeline::{ScenarioTimeline, TopologyAction};
use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::interference::InterferenceModel;
use wsn_sim_engine::executor::{ExecStats, Executor, Model, Scheduler, StopReason};
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::rng::{splitmix64, FactoryStream, FastRng, NormalSampler, RngFactory};
use wsn_sim_engine::time::{SimDuration, SimTime};

use rand::rngs::StdRng;
use rand::Rng;

use wsn_mac::transaction::Transaction;
use wsn_radio::interference::combine_dbm;

use crate::link::{LinkCore, LinkEv, Medium};
use crate::metrics::LinkMetrics;
use crate::record::PacketRecord;
use crate::traffic::TrafficModel;

/// Options controlling one network run. Mirrors
/// [`SimOptions`](crate::simulation::SimOptions) minus the trajectory
/// (which is per-link, on the [`Scenario`]'s link specs).
#[derive(Debug, Clone, PartialEq)]
pub struct NetOptions {
    /// Packets each link's application generates.
    pub packets: u64,
    /// Experiment seed; link `i` draws its RNG streams from the factory
    /// derived at index `i` (link 0 uses the base factory, preserving the
    /// single-link seeding).
    pub seed: u64,
    /// Propagation environment, shared by every link.
    pub channel: ChannelConfig,
    /// Arrival process, shared by every link.
    pub traffic: TrafficModel,
    /// Keep per-packet records in the outcome (memory ∝ packets × links).
    pub record_packets: bool,
    /// Optional hard cap on simulated time.
    pub horizon: Option<SimDuration>,
    /// Simulation engine: [`EngineMode::Golden`] (`StdRng`, bit-for-bit
    /// the reference) or [`EngineMode::Fast`] (`FastRng` + Ziggurat,
    /// statistically equivalent, for large fleets). The analytic engine
    /// has no network path.
    pub engine: EngineMode,
    /// RSSI pruning floor, dBm: a foreign sender received below this at a
    /// link's receiver is dropped from that link's interference set (and
    /// the CCA set prunes at `max(floor, cca_threshold)`, which is exact —
    /// a sender below the carrier-sense threshold can never flip a CCA).
    /// The default [`NetOptions::NO_PRUNING`] keeps every pair, making the
    /// sparse store equal the dense matrix and legacy runs byte-identical;
    /// density sweeps raise it (ext13 uses −85 dBm) to bound neighborhoods.
    pub prune_floor_dbm: f64,
    /// When set (and a [`horizon`](Self::horizon) exists), snapshot every
    /// link's cumulative progress counters at this period into
    /// [`NetworkOutcome::epochs`] — the per-epoch series the recovery-time
    /// analysis and `repro timeline` stream through the obs layer.
    pub epoch: Option<SimDuration>,
}

impl NetOptions {
    /// The default pruning floor: keep every pair, however faint. With
    /// this floor the sparse neighborhoods are exactly the dense-matrix
    /// rows, so pre-refactor scenarios replay byte-identically.
    pub const NO_PRUNING: f64 = f64::NEG_INFINITY;

    /// A reduced-size run for tests and examples.
    pub fn quick(packets: u64) -> Self {
        NetOptions {
            packets,
            seed: 0x00C0_FFEE,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
            engine: EngineMode::Golden,
            prune_floor_dbm: Self::NO_PRUNING,
            epoch: None,
        }
    }

    /// Returns the options with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the options with a different channel.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the options with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the options with a different engine.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the options with an RSSI pruning floor, dBm.
    pub fn with_prune_floor_dbm(mut self, dbm: f64) -> Self {
        self.prune_floor_dbm = dbm;
        self
    }

    /// Returns the options with per-epoch progress snapshots.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// Aggregate shared-air counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AirStats {
    /// Data frames put on the air across all links.
    pub frames: u64,
    /// Frames that shared airtime with at least one foreign frame.
    pub overlapped_frames: u64,
    /// CCAs that found the channel genuinely occupied (deferrals caused by
    /// carrier-sensing a real neighbor, not the probabilistic model).
    pub cca_busy_hits: u64,
}

/// Topology-dynamics counters for one run: how many timeline events of
/// each kind applied, and what the incremental neighborhood maintenance
/// cost. `neighbor_updates / (moves + power_changes)` is the mean edges
/// touched per geometry event — the quantity that stays O(neighborhood)
/// on the sparse path where a dense recompute would be O(N²).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoStats {
    /// `Join` events applied (including the compiled t = 0 joins).
    pub joins: u64,
    /// `Leave` events applied.
    pub leaves: u64,
    /// `Move` events applied.
    pub moves: u64,
    /// `PowerChange` events applied.
    pub power_changes: u64,
    /// Neighborhood edges removed or re-derived across all `Move` and
    /// `PowerChange` events.
    pub neighbor_updates: u64,
}

/// One link's cumulative progress counters at an epoch boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochLink {
    /// Packets generated so far.
    pub generated: u64,
    /// Packets delivered so far.
    pub delivered: u64,
    /// Packets lost to the radio so far.
    pub radio_lost: u64,
    /// Packets dropped at the queue so far.
    pub queue_dropped: u64,
}

/// All links' progress at one epoch boundary. Counters are cumulative;
/// per-epoch rates are first differences between consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Epoch boundary, seconds of simulated time. Snapshots observe
    /// *after* any topology event scheduled at the same instant.
    pub t_s: f64,
    /// Per-link cumulative counters, in scenario order.
    pub links: Vec<EpochLink>,
}

/// One link's slice of a [`NetworkOutcome`].
#[derive(Debug, Clone)]
pub struct LinkOutcome {
    /// The link's stack configuration.
    pub config: StackConfig,
    /// Summary metrics, identical in shape to the single-link run.
    pub metrics: LinkMetrics,
    /// Frames of this link that shared airtime with a foreign frame.
    pub frames_interfered: u64,
    /// Interfered frames lost below the capture threshold.
    pub frames_capture_lost: u64,
    /// Per-packet records if requested in [`NetOptions::record_packets`].
    pub records: Option<Vec<PacketRecord>>,
}

/// Result of one network run.
#[derive(Debug, Clone)]
pub struct NetworkOutcome {
    /// Per-link results, in scenario order.
    pub links: Vec<LinkOutcome>,
    /// Shared-air counters.
    pub air: AirStats,
    /// Topology-dynamics counters (all zero for a static scenario except
    /// the compiled t = 0 joins).
    pub topo: TopoStats,
    /// Per-epoch progress snapshots; empty unless [`NetOptions::epoch`]
    /// and a horizon were set.
    pub epochs: Vec<EpochSnapshot>,
    /// Why the run ended.
    pub stop: StopReason,
    /// Final simulation clock.
    pub end_time: SimTime,
    /// Executor statistics for the whole network.
    pub exec: ExecStats,
}

impl NetworkOutcome {
    /// Total packets lost to the radio across all links, over total
    /// generated — the network-wide radio loss rate.
    pub fn plr_radio(&self) -> f64 {
        let lost: u64 = self.links.iter().map(|l| l.metrics.radio_lost).sum();
        let generated: u64 = self.links.iter().map(|l| l.metrics.generated).sum();
        if generated == 0 {
            0.0
        } else {
            lost as f64 / generated as f64
        }
    }

    /// Sum of per-link goodputs, bit/s.
    pub fn goodput_bps(&self) -> f64 {
        self.links.iter().map(|l| l.metrics.goodput_bps).sum()
    }
}

/// A configured, runnable multi-link simulation.
///
/// ```
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(31)
///     .payload_bytes(50)
///     .build()?;
/// let outcome = NetworkSimulation::new(
///     Scenario::parallel(&[cfg, cfg], 2.0),
///     NetOptions::quick(100),
/// )
/// .run();
/// assert_eq!(outcome.links.len(), 2);
/// assert!(outcome.air.frames > 0);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSimulation {
    scenario: Scenario,
    options: NetOptions,
    timeline: Option<ScenarioTimeline>,
}

impl NetworkSimulation {
    /// Creates a simulation of `scenario` under `options`.
    pub fn new(scenario: Scenario, options: NetOptions) -> Self {
        NetworkSimulation {
            scenario,
            options,
            timeline: None,
        }
    }

    /// Attaches an explicit topology timeline, merged on top of the
    /// scenario's compiled `join_s`/`leave_s` churn (compiled events win
    /// full `(t, id)` ties).
    pub fn with_timeline(mut self, timeline: ScenarioTimeline) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The full timeline this run will replay: the scenario's compiled
    /// churn merged with the explicit timeline, if any.
    pub fn effective_timeline(&self) -> ScenarioTimeline {
        let compiled = ScenarioTimeline::compile(&self.scenario);
        match &self.timeline {
            Some(extra) => compiled.merge(extra),
            None => compiled,
        }
    }

    /// Runs every link of the scenario to completion in one event loop.
    ///
    /// # Panics
    ///
    /// Panics when the attached timeline references links outside the
    /// scenario or carries invalid timestamps/power levels (callers that
    /// accept untrusted timelines validate with
    /// [`ScenarioTimeline::validate`] first), and when
    /// [`NetOptions::engine`] is [`EngineMode::Analytic`], which has no
    /// network path.
    pub fn run(self) -> NetworkOutcome {
        match self.options.engine {
            EngineMode::Golden => self.run_with::<StdRng>(),
            EngineMode::Fast => self.run_with::<FastRng>(),
            EngineMode::Analytic => {
                panic!("the analytic engine has no multi-link network path; use golden or fast")
            }
        }
    }

    fn run_with<R: FactoryStream>(self) -> NetworkOutcome {
        let n = self.scenario.len();
        let timeline = self.effective_timeline();
        timeline
            .validate(n)
            .unwrap_or_else(|e| panic!("invalid scenario timeline: {e}"));
        // The fast engine re-roots the seed exactly like the single-link
        // fast path: a distinct splitmix64 lane per engine, so golden and
        // fast never share stream states.
        let root = match self.options.engine {
            EngineMode::Fast => {
                splitmix64(self.options.seed ^ splitmix64(EngineMode::Fast.seed_tag()))
            }
            _ => self.options.seed,
        };
        let base = RngFactory::new(root);
        let links: Vec<LinkCore<R>> = self
            .scenario
            .links
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                // Link 0 keeps the base factory so a 1-link scenario is
                // bit-identical to the direct single-link simulation.
                let factory = if i == 0 {
                    RngFactory::new(root)
                } else {
                    base.derive(i as u64)
                };
                let channel = Channel::new(
                    self.options.channel,
                    spec.config.power,
                    spec.config.distance,
                );
                LinkCore::new(
                    i,
                    spec.config,
                    channel,
                    self.options.traffic,
                    spec.trajectory,
                    self.options.packets,
                    &factory,
                )
            })
            .collect();
        let air = SharedAir::new(
            &self.scenario,
            &self.options.channel,
            self.options.prune_floor_dbm,
            &timeline,
        );
        let record = self.options.record_packets;
        // Seed schedule first (times/links/ordinals), since the timeline
        // itself moves into the model.
        let seeds: Vec<(f64, u32)> = timeline.events().iter().map(|e| (e.t_s, e.link)).collect();
        let model = NetModel {
            links,
            air,
            timeline,
            records: (0..n).map(|_| Vec::new()).collect(),
            record,
            topo: TopoStats::default(),
            epochs: Vec::new(),
        };
        let mut exec = Executor::new(model);
        if let Some(h) = self.options.horizon {
            exec = exec.with_horizon(SimTime::ZERO + h);
        }
        // Timeline events seed in (t, id) order; among same-instant seeds
        // the event-queue FIFO tiebreak then replays them in exactly that
        // order — the compiled stream reproduces the legacy seeding.
        for (k, (t_s, link)) in seeds.iter().enumerate() {
            exec.seed_at(
                SimTime::ZERO + SimDuration::from_secs_f64(*t_s),
                NetEv {
                    link: *link,
                    kind: NetKind::Topology(k as u32),
                },
            );
        }
        // Epoch ticks seed after the topology events, so a snapshot at an
        // event's exact instant observes the post-event state.
        if let (Some(epoch), Some(h)) = (self.options.epoch, self.options.horizon) {
            if epoch > SimDuration::ZERO {
                let mut t = SimTime::ZERO + epoch;
                let end = SimTime::ZERO + h;
                while t <= end {
                    exec.seed_at(
                        t,
                        NetEv {
                            link: 0,
                            kind: NetKind::EpochTick,
                        },
                    );
                    t += epoch;
                }
            }
        }
        let (stop, end_time) = exec.run_observed(&mut ());
        let exec_stats = *exec.last_stats().expect("run records stats");
        let mut model = exec.into_model();

        let total = end_time - SimTime::ZERO;
        let mut outcomes = Vec::with_capacity(n);
        for (core, records) in model.links.iter_mut().zip(model.records.drain(..)) {
            let metrics = core.finalize(total);
            outcomes.push(LinkOutcome {
                config: core.config(),
                metrics,
                frames_interfered: core.frames_interfered(),
                frames_capture_lost: core.frames_capture_lost(),
                records: record.then_some(records),
            });
        }
        NetworkOutcome {
            links: outcomes,
            air: model.air.stats(),
            topo: model.topo,
            epochs: model.epochs,
            stop,
            end_time,
            exec: exec_stats,
        }
    }
}

/// A network event: which link, and which of its per-link events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NetEv {
    link: u32,
    kind: NetKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetKind {
    Arrival,
    MacPhase,
    /// The k-th event of the run's effective timeline (index into its
    /// normalized stream).
    Topology(u32),
    /// A progress-snapshot boundary ([`NetOptions::epoch`]).
    EpochTick,
}

struct NetModel<R> {
    links: Vec<LinkCore<R>>,
    air: SharedAir,
    timeline: ScenarioTimeline,
    records: Vec<Vec<PacketRecord>>,
    record: bool,
    topo: TopoStats,
    epochs: Vec<EpochSnapshot>,
}

impl<R: NormalSampler> Model for NetModel<R> {
    type Event = NetEv;

    fn handle(&mut self, event: NetEv, sched: &mut Scheduler<'_, NetEv>) {
        let NetModel {
            links,
            air,
            timeline,
            records,
            record,
            topo,
            epochs,
        } = self;
        let i = event.link as usize;
        let wrap = |e: LinkEv| NetEv {
            link: event.link,
            kind: match e {
                LinkEv::Arrival => NetKind::Arrival,
                LinkEv::MacPhase => NetKind::MacPhase,
            },
        };
        let mut out = |r: &PacketRecord| {
            if *record {
                records[i].push(*r);
            }
        };
        match event.kind {
            NetKind::Arrival => links[i].on_arrival(sched, &wrap, air, &mut out),
            NetKind::MacPhase => links[i].pump(sched, &wrap, air, &mut out),
            NetKind::Topology(k) => match timeline.events()[k as usize].action {
                TopologyAction::Join => {
                    topo.joins += 1;
                    links[i].rejoin();
                    links[i].on_arrival(sched, &wrap, air, &mut out);
                }
                TopologyAction::Leave => {
                    topo.leaves += 1;
                    links[i].depart();
                }
                TopologyAction::Move { sender, receiver } => {
                    topo.moves += 1;
                    topo.neighbor_updates += air.move_link(i, sender, receiver);
                    links[i].set_distance(sender.distance_m(&receiver));
                }
                TopologyAction::PowerChange { power_level } => {
                    // Validated before the run; re-checked cheaply here.
                    if let Ok(power) = PowerLevel::new(power_level) {
                        topo.power_changes += 1;
                        topo.neighbor_updates += air.set_power(i, power);
                        links[i].set_power(power);
                    }
                }
            },
            NetKind::EpochTick => epochs.push(EpochSnapshot {
                t_s: sched.now().as_secs_f64(),
                links: links
                    .iter()
                    .map(|c| {
                        let (generated, delivered, radio_lost, queue_dropped) = c.progress();
                        EpochLink {
                            generated,
                            delivered,
                            radio_lost,
                            queue_dropped,
                        }
                    })
                    .collect(),
            }),
        }
    }
}

/// One frame's airtime interval.
#[derive(Debug, Clone, Copy)]
struct Frame {
    start: SimTime,
    end: SimTime,
}

/// A uniform-cell point index over one class of nodes (all senders, or
/// all receivers). Purely a *candidate* filter: queries return every link
/// whose indexed point lies within one cell ring of the probe — a
/// superset of the true neighborhood whenever the cell size is at least
/// the maximum audible range — and the caller applies the exact gain
/// test. Neighbor sets therefore never depend on the grid geometry.
struct PointGrid {
    cell_m: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl PointGrid {
    fn new(cell_m: f64) -> Self {
        PointGrid {
            cell_m,
            cells: HashMap::new(),
        }
    }

    fn key(&self, p: Position) -> (i64, i64) {
        // An infinite cell (no pruning) maps everything to cell (0, 0).
        let k = |v: f64| {
            let c = (v / self.cell_m).floor();
            if c.is_finite() {
                c as i64
            } else {
                0
            }
        };
        (k(p.x_m), k(p.y_m))
    }

    fn insert(&mut self, link: u32, p: Position) {
        self.cells.entry(self.key(p)).or_default().push(link);
    }

    fn remove(&mut self, link: u32, p: Position) {
        let key = self.key(p);
        if let Some(v) = self.cells.get_mut(&key) {
            v.retain(|&x| x != link);
            if v.is_empty() {
                self.cells.remove(&key);
            }
        }
    }

    /// All links indexed within one cell ring of `p`, in a deterministic
    /// (cell-scan, then insertion) order.
    fn candidates(&self, p: Position, out: &mut Vec<u32>) {
        out.clear();
        let (cx, cy) = self.key(p);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                if let Some(v) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(v);
                }
            }
        }
    }
}

/// The sender/receiver geometry the medium derives gains from.
#[derive(Clone, Copy)]
struct NodeGeom {
    sender: Position,
    receiver: Position,
    power: PowerLevel,
}

/// The shared radio channel, sparse edition: per-link neighbor lists of
/// `(source, mean power)` pairs derived from geometry, the set of frames
/// currently on the air, and per-frame overlap hit lists resolved at each
/// frame's end.
///
/// Cross-link gains use the *mean* path loss (no per-pair shadowing), so
/// the medium stays deterministic; the in-edge lists are kept sorted by
/// source index so interference folds in ascending-index order — the same
/// float accumulation order as the dense matrix scan, which is what makes
/// a no-pruning run byte-identical to the pre-refactor medium.
struct SharedAir {
    channel: ChannelConfig,
    capture_db: f64,
    /// Interference-edge floor, dBm ([`NetOptions::prune_floor_dbm`]).
    rx_floor_dbm: f64,
    /// CCA-edge floor: `max(rx_floor, cca_threshold)` — exact, because a
    /// sender below the carrier-sense threshold can never flip a CCA.
    cs_floor_dbm: f64,
    nodes: Vec<NodeGeom>,
    /// `rx_in[i]`: senders audible above the floor at `i`'s receiver,
    /// `(j, mean power dBm)`, sorted by `j`.
    rx_in: Vec<Vec<(u32, f64)>>,
    /// Reverse index: `rx_out[j]` lists every `i` with `j ∈ rx_in[i]`.
    rx_out: Vec<Vec<u32>>,
    /// `cs_in[i]`: senders audible above the CCA floor at `i`'s sender,
    /// sorted.
    cs_in: Vec<Vec<u32>>,
    /// Reverse index of `cs_in`.
    cs_out: Vec<Vec<u32>>,
    /// Spatial candidate indexes over sender and receiver points.
    senders: PointGrid,
    receivers: PointGrid,
    /// Scratch buffer for grid queries.
    scratch: Vec<u32>,
    /// The frame each link currently has on the air, if any.
    on_air: Vec<Option<Frame>>,
    /// Links with a frame on the air (swap-remove set + position index),
    /// so flagging can iterate whichever of {active set, neighborhood} is
    /// smaller.
    active: Vec<u32>,
    active_pos: Vec<u32>,
    /// `hits[i]`: foreign frames that overlapped `i`'s current frame, with
    /// the interfering power latched at flag time (a frame resolves under
    /// the neighborhood it started with, even across a mid-flight `Move`).
    hits: Vec<Vec<(u32, f64)>>,
    frames: u64,
    overlapped_frames: u64,
    cca_busy_hits: u64,
}

impl SharedAir {
    fn new(
        scenario: &Scenario,
        channel: &ChannelConfig,
        prune_floor_dbm: f64,
        timeline: &ScenarioTimeline,
    ) -> Self {
        let n = scenario.len();
        let cs_floor_dbm = prune_floor_dbm.max(scenario.cca_threshold_dbm);
        // Candidate radius: the farthest any sender could *ever* be heard
        // above the interference floor — over the initial powers and every
        // `PowerChange` the timeline can apply, so the grids stay a
        // conservative candidate superset for the whole run (the exact
        // gain test decides membership; the cell size only bounds the
        // scan). A low-power fleet thus gets proportionally small cells
        // instead of paying the all-N scan PA 31 would imply. Infinite
        // (no pruning) collapses the grids to a single cell — an O(N)
        // candidate scan, i.e. exactly the dense behavior.
        let power_ceiling = scenario
            .links
            .iter()
            .map(|l| l.config.power)
            .chain(timeline.events().iter().filter_map(|e| match e.action {
                TopologyAction::PowerChange { power_level } => PowerLevel::new(power_level).ok(),
                _ => None,
            }))
            .max_by_key(|p| p.level())
            .unwrap_or(PowerLevel::MAX);
        let cell_m = channel
            .pathloss
            .range_for_rssi_m(power_ceiling, prune_floor_dbm)
            .max(1.0);
        let mut air = SharedAir {
            channel: *channel,
            capture_db: scenario.capture_db,
            rx_floor_dbm: prune_floor_dbm,
            cs_floor_dbm,
            nodes: scenario
                .links
                .iter()
                .map(|l| NodeGeom {
                    sender: l.sender,
                    receiver: l.receiver,
                    power: l.config.power,
                })
                .collect(),
            rx_in: vec![Vec::new(); n],
            rx_out: vec![Vec::new(); n],
            cs_in: vec![Vec::new(); n],
            cs_out: vec![Vec::new(); n],
            senders: PointGrid::new(cell_m),
            receivers: PointGrid::new(cell_m),
            scratch: Vec::new(),
            on_air: vec![None; n],
            active: Vec::new(),
            active_pos: vec![u32::MAX; n],
            hits: vec![Vec::new(); n],
            frames: 0,
            overlapped_frames: 0,
            cca_busy_hits: 0,
        };
        for (i, node) in air.nodes.iter().enumerate() {
            air.senders.insert(i as u32, node.sender);
            air.receivers.insert(i as u32, node.receiver);
        }
        for i in 0..n {
            air.build_in_edges(i);
        }
        air
    }

    /// Mean received power of `from`'s sender at `to`, dBm (same clamp
    /// and path-loss model as the link's own budget).
    fn gain(&self, from: usize, to: Position) -> f64 {
        let g = &self.nodes[from];
        let meters = g.sender.distance_m(&to).max(0.1);
        self.channel.pathloss.mean_rssi_dbm(
            g.power,
            Distance::from_meters(meters).expect("clamped positive"),
        )
    }

    /// Derives `i`'s in-edges (rx and cs) from the grids and appends the
    /// reverse-index entries. Returns edges touched.
    fn build_in_edges(&mut self, i: usize) -> u64 {
        let mut touched = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);

        self.senders
            .candidates(self.nodes[i].receiver, &mut scratch);
        scratch.sort_unstable();
        for &j in &scratch {
            if j as usize == i {
                continue;
            }
            let p = self.gain(j as usize, self.nodes[i].receiver);
            if p >= self.rx_floor_dbm {
                self.rx_in[i].push((j, p));
                self.rx_out[j as usize].push(i as u32);
                touched += 1;
            }
        }

        self.senders.candidates(self.nodes[i].sender, &mut scratch);
        scratch.sort_unstable();
        for &j in &scratch {
            if j as usize == i {
                continue;
            }
            if self.gain(j as usize, self.nodes[i].sender) >= self.cs_floor_dbm {
                self.cs_in[i].push(j);
                self.cs_out[j as usize].push(i as u32);
                touched += 1;
            }
        }

        self.scratch = scratch;
        touched
    }

    /// Derives `i`'s out-edges (who hears `i`) from the grids. Returns
    /// edges touched.
    fn build_out_edges(&mut self, i: usize) -> u64 {
        let mut touched = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);

        self.receivers
            .candidates(self.nodes[i].sender, &mut scratch);
        scratch.sort_unstable();
        for &v in &scratch {
            if v as usize == i {
                continue;
            }
            let p = self.gain(i, self.nodes[v as usize].receiver);
            if p >= self.rx_floor_dbm {
                insert_sorted(&mut self.rx_in[v as usize], i as u32, p);
                self.rx_out[i].push(v);
                touched += 1;
            }
        }

        self.senders.candidates(self.nodes[i].sender, &mut scratch);
        scratch.sort_unstable();
        for &v in &scratch {
            if v as usize == i {
                continue;
            }
            if self.gain(i, self.nodes[v as usize].sender) >= self.cs_floor_dbm {
                if let Err(pos) = self.cs_in[v as usize].binary_search(&(i as u32)) {
                    self.cs_in[v as usize].insert(pos, i as u32);
                }
                self.cs_out[i].push(v);
                touched += 1;
            }
        }

        self.scratch = scratch;
        touched
    }

    /// Drops every edge incident to `i` (both directions) via the reverse
    /// indexes — O(neighborhood). Returns edges touched.
    fn drop_edges(&mut self, i: usize) -> u64 {
        let mut touched = 0u64;
        for (j, _) in self.rx_in[i].drain(..) {
            self.rx_out[j as usize].retain(|&x| x as usize != i);
            touched += 1;
        }
        for j in self.cs_in[i].drain(..) {
            self.cs_out[j as usize].retain(|&x| x as usize != i);
            touched += 1;
        }
        let victims = std::mem::take(&mut self.rx_out[i]);
        for v in &victims {
            if let Ok(pos) = self.rx_in[*v as usize].binary_search_by_key(&(i as u32), |e| e.0) {
                self.rx_in[*v as usize].remove(pos);
            }
            touched += 1;
        }
        let listeners = std::mem::take(&mut self.cs_out[i]);
        for v in &listeners {
            if let Ok(pos) = self.cs_in[*v as usize].binary_search(&(i as u32)) {
                self.cs_in[*v as usize].remove(pos);
            }
            touched += 1;
        }
        touched
    }

    /// Applies a `Move` of link `i`: re-index its points and re-derive its
    /// neighborhood incrementally. Cost (and return value) is the number
    /// of edges touched — O(neighborhood), never O(N²).
    fn move_link(&mut self, i: usize, sender: Position, receiver: Position) -> u64 {
        let mut touched = self.drop_edges(i);
        let old = self.nodes[i];
        self.senders.remove(i as u32, old.sender);
        self.receivers.remove(i as u32, old.receiver);
        self.nodes[i].sender = sender;
        self.nodes[i].receiver = receiver;
        self.senders.insert(i as u32, sender);
        self.receivers.insert(i as u32, receiver);
        touched += self.build_in_edges(i);
        touched += self.build_out_edges(i);
        touched
    }

    /// Applies a `PowerChange` of link `i`: only its out-edges (who hears
    /// it) depend on its power, so the in-edges stay untouched.
    fn set_power(&mut self, i: usize, power: PowerLevel) -> u64 {
        let mut touched = 0u64;
        // Drop only the outgoing half of the neighborhood.
        let victims = std::mem::take(&mut self.rx_out[i]);
        for v in &victims {
            if let Ok(pos) = self.rx_in[*v as usize].binary_search_by_key(&(i as u32), |e| e.0) {
                self.rx_in[*v as usize].remove(pos);
            }
            touched += 1;
        }
        let listeners = std::mem::take(&mut self.cs_out[i]);
        for v in &listeners {
            if let Ok(pos) = self.cs_in[*v as usize].binary_search(&(i as u32)) {
                self.cs_in[*v as usize].remove(pos);
            }
            touched += 1;
        }
        self.nodes[i].power = power;
        touched += self.build_out_edges(i);
        touched
    }

    fn activate(&mut self, link: usize) {
        self.active_pos[link] = self.active.len() as u32;
        self.active.push(link as u32);
    }

    fn deactivate(&mut self, link: usize) {
        let pos = self.active_pos[link] as usize;
        self.active.swap_remove(pos);
        if pos < self.active.len() {
            self.active_pos[self.active[pos] as usize] = pos as u32;
        }
        self.active_pos[link] = u32::MAX;
    }

    fn stats(&self) -> AirStats {
        AirStats {
            frames: self.frames,
            overlapped_frames: self.overlapped_frames,
            cca_busy_hits: self.cca_busy_hits,
        }
    }
}

/// Inserts `(j, p)` into a by-`j` sorted edge list, replacing an existing
/// entry for `j` if present.
fn insert_sorted(edges: &mut Vec<(u32, f64)>, j: u32, p: f64) {
    match edges.binary_search_by_key(&j, |e| e.0) {
        Ok(pos) => edges[pos] = (j, p),
        Err(pos) => edges.insert(pos, (j, p)),
    }
}

/// Appends `(j, p)` to a hit list unless `j` is already recorded (a frame
/// overlaps a given foreign frame at most once).
fn push_hit(hits: &mut Vec<(u32, f64)>, j: u32, p: f64) {
    if !hits.iter().any(|&(x, _)| x == j) {
        hits.push((j, p));
    }
}

impl Medium for SharedAir {
    fn cca_busy<R: Rng + ?Sized>(
        &mut self,
        link: usize,
        now: SimTime,
        txn: &Transaction,
        rng: &mut R,
    ) -> bool {
        // Real occupancy first: any foreign frame on the air right now
        // whose sender this link receives above the carrier-sense
        // threshold. `cs_in` holds exactly those senders (pruned at
        // `max(floor, threshold)`), sorted by index, so the first hit is
        // the same lowest-index hit the dense scan found. The
        // transmit-anyway budget still applies — after MAX_CCA_RETRIES
        // deferrals the MAC sends regardless, like the congestion-override
        // path.
        if txn.cca_retries() < Transaction::MAX_CCA_RETRIES {
            for &j in &self.cs_in[link] {
                if let Some(f) = self.on_air[j as usize] {
                    if f.start <= now && now < f.end {
                        self.cca_busy_hits += 1;
                        return true;
                    }
                }
            }
        }
        // Fall back to the probabilistic model so configured *external*
        // interference (WiFi and friends) still registers.
        Transaction::sample_cca_busy(txn, rng)
    }

    fn frame_on_air(&mut self, link: usize, start: SimTime, end: SimTime) {
        self.frames += 1;
        self.hits[link].clear();
        // Every frame still on the air overlaps the new one: flag both
        // directions with powers latched now, so each victim resolves the
        // overlap at its own frame end. Iterate whichever is smaller —
        // the set of live frames or this link's neighborhood — the sets
        // flagged are identical either way.
        if self.active.len() <= self.rx_in[link].len() + self.rx_out[link].len() {
            for idx in 0..self.active.len() {
                let j = self.active[idx] as usize;
                if j == link {
                    continue;
                }
                let f = self.on_air[j].expect("active links have a frame on the air");
                if f.end > start {
                    if let Ok(pos) = self.rx_in[link].binary_search_by_key(&(j as u32), |e| e.0) {
                        let p = self.rx_in[link][pos].1;
                        push_hit(&mut self.hits[link], j as u32, p);
                    }
                    if let Ok(pos) = self.rx_in[j].binary_search_by_key(&(link as u32), |e| e.0) {
                        let p = self.rx_in[j][pos].1;
                        push_hit(&mut self.hits[j], link as u32, p);
                    }
                }
            }
        } else {
            for idx in 0..self.rx_in[link].len() {
                let (j, p) = self.rx_in[link][idx];
                if let Some(f) = self.on_air[j as usize] {
                    if f.end > start {
                        push_hit(&mut self.hits[link], j, p);
                    }
                }
            }
            for idx in 0..self.rx_out[link].len() {
                let v = self.rx_out[link][idx] as usize;
                if let Some(f) = self.on_air[v] {
                    if f.end > start {
                        let p = self.rx_in[v]
                            .binary_search_by_key(&(link as u32), |e| e.0)
                            .map(|pos| self.rx_in[v][pos].1)
                            .expect("reverse index mirrors rx_in");
                        push_hit(&mut self.hits[v], link as u32, p);
                    }
                }
            }
        }
        if self.on_air[link].is_none() {
            self.activate(link);
        }
        self.on_air[link] = Some(Frame { start, end });
    }

    fn frame_interference_dbm(
        &mut self,
        link: usize,
        _start: SimTime,
        _end: SimTime,
    ) -> Option<f64> {
        if self.on_air[link].take().is_some() {
            self.deactivate(link);
        }
        // Fold in ascending source order — the dense scan's accumulation
        // order, so the energy sum is bit-identical.
        let mut hits = std::mem::take(&mut self.hits[link]);
        hits.sort_unstable_by_key(|&(j, _)| j);
        let mut foreign: Option<f64> = None;
        for &(_, p) in &hits {
            foreign = Some(match foreign {
                None => p,
                Some(acc) => combine_dbm(acc, p),
            });
        }
        hits.clear();
        self.hits[link] = hits;
        if foreign.is_some() {
            self.overlapped_frames += 1;
        }
        foreign
    }

    fn capture_db(&self) -> f64 {
        self.capture_db
    }
}

/// Promotes a configured [`InterferenceModel`] into an explicit in-network
/// interferer link, so the shared-channel machinery (real CCA deferral,
/// SINR capture) replaces the probabilistic approximation.
///
/// Returns `None` when the model has no shared-channel equivalent: an
/// inactive model, or a non-CCA-detectable one (broadband WiFi noise below
/// the 802.15.4 carrier-sense floor — that stays on the legacy
/// probabilistic path, as exercised by `examples/interference_study.rs`).
///
/// The interferer is placed so its mean received power at the victim's
/// receiver equals the model's `power_dbm`, and its traffic is periodic
/// with the packet interval chosen so its airtime duty cycle matches the
/// model's `duty_cycle`.
pub fn scenario_from_interference(
    victim: StackConfig,
    model: &InterferenceModel,
    channel: &ChannelConfig,
) -> Option<Scenario> {
    use wsn_params::scenario::LinkSpec;

    if model.is_none() || !model.cca_detectable {
        return None;
    }
    // Range at which the interferer's transmissions land on the victim
    // receiver at the modeled power.
    let range_m = channel
        .pathloss
        .range_for_rssi_m(victim.power, model.power_dbm)
        .max(0.1);
    // One frame airtime at 250 kbit/s is 32 µs per air byte; a periodic
    // source with interval = airtime / duty reproduces the duty cycle.
    let frame_s = victim.frame().air_bytes() as f64 * 32e-6;
    let duty = model.duty_cycle.clamp(1e-4, 1.0);
    let interval_ms = ((frame_s / duty) * 1e3).round().clamp(1.0, u32::MAX as f64) as u32;
    let interferer = StackConfig::builder()
        .distance_m(2.0)
        .power_level(victim.power.level())
        .payload_bytes(victim.payload.bytes())
        .max_tries(1)
        .retry_delay_ms(0)
        .queue_cap(1)
        .packet_interval_ms(interval_ms)
        .build()
        .ok()?;

    let d = victim.distance.meters();
    Some(Scenario::new(vec![
        // The victim link along the x-axis.
        LinkSpec::along_x(victim, 0.0),
        // The interferer `range_m` off the victim's receiver, its own
        // receiver 2 m further out.
        LinkSpec::at(
            Position::new(d, range_m),
            Position::new(d + 2.0, range_m),
            interferer,
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{LinkSimulation, SimOptions};
    use wsn_params::scenario::Scenario;
    use wsn_params::timeline::TopologyEvent;

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    fn sim_options(net: &NetOptions) -> SimOptions {
        SimOptions {
            packets: net.packets,
            seed: net.seed,
            channel: net.channel,
            traffic: net.traffic,
            record_packets: net.record_packets,
            horizon: net.horizon,
            trajectory: wsn_params::motion::Trajectory::Stationary,
        }
    }

    #[test]
    fn single_link_scenario_matches_direct_simulation_bit_for_bit() {
        for (power, dist) in [(31u8, 10.0), (23, 35.0), (3, 35.0)] {
            let options = NetOptions::quick(200).with_seed(0x5EED);
            let direct = LinkSimulation::new(cfg(power, dist), sim_options(&options)).run();
            let net = NetworkSimulation::new(Scenario::single(cfg(power, dist)), options).run();
            assert_eq!(net.links.len(), 1);
            assert_eq!(direct.metrics(), &net.links[0].metrics);
            assert_eq!(net.links[0].frames_interfered, 0);
            assert_eq!(net.air.overlapped_frames, 0);
            assert_eq!(net.air.cca_busy_hits, 0);
        }
    }

    #[test]
    fn single_link_records_match_direct_simulation() {
        let mut options = NetOptions::quick(150).with_seed(7);
        options.record_packets = true;
        let direct = LinkSimulation::new(cfg(23, 35.0), sim_options(&options)).run();
        let net = NetworkSimulation::new(Scenario::single(cfg(23, 35.0)), options).run();
        assert_eq!(direct.records, net.links[0].records);
    }

    #[test]
    fn hidden_pair_loses_more_than_exposed_pair() {
        let c = cfg(11, 35.0);
        let hidden = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(300)).run();
        let exposed =
            NetworkSimulation::new(Scenario::exposed_pair(c), NetOptions::quick(300)).run();
        // Hidden senders cannot carrier-sense each other: no real CCA
        // deferrals, plenty of overlaps.
        assert_eq!(hidden.air.cca_busy_hits, 0, "hidden senders must not CS");
        assert!(
            hidden.air.overlapped_frames > exposed.air.overlapped_frames,
            "hidden {} vs exposed {} overlaps",
            hidden.air.overlapped_frames,
            exposed.air.overlapped_frames
        );
        // Exposed senders defer instead of colliding.
        assert!(exposed.air.cca_busy_hits > 0, "exposed senders must defer");
        assert!(
            hidden.plr_radio() > exposed.plr_radio(),
            "hidden plr {} vs exposed plr {}",
            hidden.plr_radio(),
            exposed.plr_radio()
        );
    }

    #[test]
    fn network_run_is_bit_reproducible() {
        let c = cfg(11, 35.0);
        let a = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(200)).run();
        let b = NetworkSimulation::new(Scenario::hidden_pair(c), NetOptions::quick(200)).run();
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.metrics, lb.metrics);
        }
        assert_eq!(a.air, b.air);
        assert_eq!(a.topo, b.topo);
    }

    #[test]
    fn churn_reduces_generated_traffic() {
        let c = cfg(31, 10.0);
        let mut scenario = Scenario::parallel(&[c, c], 2.0);
        // Link 1 joins late and leaves early; with 50 ms intervals and a
        // 400-packet budget it cannot generate its full budget.
        scenario.links[1] = scenario.links[1].joining_at(5.0).leaving_at(10.0);
        let options = NetOptions {
            horizon: Some(SimDuration::from_secs_f64(30.0)),
            ..NetOptions::quick(400)
        };
        let out = NetworkSimulation::new(scenario, options).run();
        assert_eq!(out.links[0].metrics.generated, 400);
        assert!(
            out.links[1].metrics.generated < 400,
            "churned link generated {}",
            out.links[1].metrics.generated
        );
        assert!(out.links[1].metrics.generated > 0);
        // The compiled timeline accounts the churn: two joins, one leave.
        assert_eq!(out.topo.joins, 2);
        assert_eq!(out.topo.leaves, 1);
    }

    #[test]
    fn explicit_leave_timeline_matches_legacy_leave_field() {
        let c = cfg(31, 10.0);
        let options = NetOptions {
            horizon: Some(SimDuration::from_secs_f64(30.0)),
            ..NetOptions::quick(400)
        };
        let mut legacy = Scenario::parallel(&[c, c], 2.0);
        legacy.links[1] = legacy.links[1].leaving_at(10.0);
        let a = NetworkSimulation::new(legacy, options.clone()).run();

        let timeline = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 10.0,
            link: 1,
            id: 0,
            action: TopologyAction::Leave,
        }]);
        let b = NetworkSimulation::new(Scenario::parallel(&[c, c], 2.0), options)
            .with_timeline(timeline)
            .run();

        // Same dynamics expressed two ways: bit-identical outcome.
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.metrics, lb.metrics);
        }
        assert_eq!(a.air, b.air);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn storm_timeline_drops_and_recovers_links() {
        let c = cfg(31, 10.0);
        let scenario = Scenario::grid(c, 8, 25.0);
        let storm = wsn_params::timeline::failure_storm(8, 0.25, 2.0, 6.0, 0xBAD);
        let options = NetOptions {
            horizon: Some(SimDuration::from_secs_f64(12.0)),
            epoch: Some(SimDuration::from_secs_f64(1.0)),
            ..NetOptions::quick(400)
        };
        let out = NetworkSimulation::new(scenario, options)
            .with_timeline(storm)
            .run();
        assert_eq!(out.topo.leaves, 2, "25% of 8 links storm");
        assert_eq!(out.topo.joins, 8 + 2, "initial joins plus recoveries");
        // Epoch snapshots exist, are cumulative, and cover the horizon.
        assert_eq!(out.epochs.len(), 12);
        for w in out.epochs.windows(2) {
            for (a, b) in w[0].links.iter().zip(&w[1].links) {
                assert!(b.generated >= a.generated);
                assert!(b.delivered >= a.delivered);
            }
        }
        // Stormed links generated less than untouched ones.
        let last = out.epochs.last().unwrap();
        let min = last.links.iter().map(|l| l.generated).min().unwrap();
        let max = last.links.iter().map(|l| l.generated).max().unwrap();
        assert!(min < max, "storm must cost its links traffic");
    }

    #[test]
    fn move_event_updates_neighborhoods_incrementally() {
        let c = cfg(11, 35.0);
        let scenario = Scenario::exposed_pair(c);
        let static_run = NetworkSimulation::new(scenario.clone(), NetOptions::quick(300)).run();
        // At t = 1 s, link 1 teleports 10 km away: carrier sense between
        // the pair must cease and deferrals drop accordingly.
        let timeline = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 1.0,
            link: 1,
            id: 0,
            action: TopologyAction::Move {
                sender: Position::new(10_000.0, 0.0),
                receiver: Position::new(10_035.0, 0.0),
            },
        }]);
        let moved = NetworkSimulation::new(scenario, NetOptions::quick(300))
            .with_timeline(timeline)
            .run();
        assert_eq!(moved.topo.moves, 1);
        assert!(moved.topo.neighbor_updates > 0);
        assert!(
            moved.air.cca_busy_hits < static_run.air.cca_busy_hits,
            "moved {} vs static {} deferrals",
            moved.air.cca_busy_hits,
            static_run.air.cca_busy_hits
        );
    }

    #[test]
    fn power_change_event_degrades_the_link() {
        let c = cfg(31, 35.0);
        let baseline = NetworkSimulation::new(Scenario::single(c), NetOptions::quick(300)).run();
        let timeline = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 0.5,
            link: 0,
            id: 0,
            action: TopologyAction::PowerChange { power_level: 3 },
        }]);
        let dropped = NetworkSimulation::new(Scenario::single(c), NetOptions::quick(300))
            .with_timeline(timeline)
            .run();
        assert_eq!(dropped.topo.power_changes, 1);
        assert!(
            dropped.plr_radio() > baseline.plr_radio(),
            "power drop must cost deliveries: {} vs {}",
            dropped.plr_radio(),
            baseline.plr_radio()
        );
    }

    #[test]
    fn conservative_prune_floor_is_bit_identical_to_no_pruning() {
        let c = cfg(11, 35.0);
        for make in [Scenario::hidden_pair, Scenario::exposed_pair] {
            let dense = NetworkSimulation::new(make(c), NetOptions::quick(250)).run();
            let sparse = NetworkSimulation::new(
                make(c),
                NetOptions::quick(250).with_prune_floor_dbm(-200.0),
            )
            .run();
            for (la, lb) in dense.links.iter().zip(&sparse.links) {
                assert_eq!(la.metrics, lb.metrics);
            }
            assert_eq!(dense.air, sparse.air);
        }
    }

    #[test]
    fn aggressive_prune_floor_silences_distant_neighbors() {
        let c = cfg(11, 35.0);
        // Exposed senders sit 1 m apart; at power 11 their mutual power is
        // well below −40 dBm, so a −40 dBm floor prunes the CS edge and
        // the deferrals disappear.
        let pruned = NetworkSimulation::new(
            Scenario::exposed_pair(c),
            NetOptions::quick(250).with_prune_floor_dbm(-40.0),
        )
        .run();
        assert_eq!(pruned.air.cca_busy_hits, 0);
        assert_eq!(pruned.air.overlapped_frames, 0);
    }

    #[test]
    fn fast_engine_runs_the_network_path() {
        let c = cfg(11, 35.0);
        let golden =
            NetworkSimulation::new(Scenario::exposed_pair(c), NetOptions::quick(300)).run();
        let fast = NetworkSimulation::new(
            Scenario::exposed_pair(c),
            NetOptions::quick(300).with_engine(EngineMode::Fast),
        )
        .run();
        assert_eq!(fast.links.len(), 2);
        for l in &fast.links {
            assert_eq!(l.metrics.generated, 300);
            assert!(l.metrics.conserves_packets());
        }
        assert!(fast.air.frames > 0);
        // Different generator, different draws — the engines must not
        // silently share streams.
        assert_ne!(
            golden.links[0].metrics.delay_mean_ms,
            fast.links[0].metrics.delay_mean_ms
        );
        // Reproducible under its own seed.
        let again = NetworkSimulation::new(
            Scenario::exposed_pair(c),
            NetOptions::quick(300).with_engine(EngineMode::Fast),
        )
        .run();
        assert_eq!(fast.links[0].metrics, again.links[0].metrics);
    }

    #[test]
    #[should_panic(expected = "invalid scenario timeline")]
    fn out_of_range_timeline_link_panics() {
        let c = cfg(11, 35.0);
        let timeline = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 1.0,
            link: 9,
            id: 0,
            action: TopologyAction::Leave,
        }]);
        let _ = NetworkSimulation::new(Scenario::single(c), NetOptions::quick(10))
            .with_timeline(timeline)
            .run();
    }

    #[test]
    fn interference_promotion_builds_two_link_scenario() {
        let victim = cfg(31, 20.0);
        let channel = ChannelConfig::paper_hallway();
        let model = InterferenceModel::zigbee_neighbor(0.1);
        let scenario = scenario_from_interference(victim, &model, &channel)
            .expect("detectable interferer promotes");
        assert_eq!(scenario.len(), 2);
        // The interferer's mean power at the victim receiver matches the
        // model within rounding.
        let rx = &scenario.links[0].receiver;
        let d = scenario.links[1].sender.distance_m(rx);
        let got = channel.pathloss.mean_rssi_dbm(
            scenario.links[1].config.power,
            Distance::from_meters(d).unwrap(),
        );
        assert!((got - model.power_dbm).abs() < 0.5, "rx power {got}");

        // Non-detectable (WiFi) and inactive models stay on the legacy
        // probabilistic path.
        assert!(
            scenario_from_interference(victim, &InterferenceModel::wifi_moderate(), &channel)
                .is_none()
        );
        assert!(scenario_from_interference(victim, &InterferenceModel::none(), &channel).is_none());
    }
}
