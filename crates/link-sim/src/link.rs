//! The per-link simulation core, factored out of the single-link
//! [`simulation`](crate::simulation) so the multi-link
//! [`network`](crate::network) simulator can run many of them against one
//! shared channel.
//!
//! A [`LinkCore`] owns everything one sender→receiver pair needs — traffic
//! source, `Qmax` queue, CSMA-CA transaction, channel, RNG streams, energy
//! meter and streaming metrics fold. What it does *not* own is the medium:
//! every clear-channel assessment and every frame airtime is routed through
//! the [`Medium`] trait. The single-link path plugs in [`Isolated`], whose
//! CCA is the legacy probabilistic draw and whose interference resolution
//! is a no-op — the compiler monomorphizes those calls away, so the
//! refactor is bit-for-bit and performance-neutral for N = 1. The network
//! path plugs in a shared-air implementation that samples *actual* channel
//! occupancy and resolves overlapping frames by SINR.

use rand::rngs::StdRng;
use rand::Rng;

use wsn_mac::queue::{Admission, TxQueue};
use wsn_mac::transaction::{Action, RadioActivity, Transaction, TxOutcome};
use wsn_params::config::StackConfig;
use wsn_params::motion::Trajectory;
use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::channel::{lqi_from_snr, Channel, Observation};
use wsn_radio::energy::EnergyMeter;
use wsn_radio::interference::combine_dbm;
use wsn_sim_engine::executor::Scheduler;
use wsn_sim_engine::rng::{FactoryStream, NormalSampler, RngFactory, StreamId};
use wsn_sim_engine::time::{SimDuration, SimTime};

use crate::metrics::{LinkMetrics, MetricsAccumulator, RunTotals};
use crate::record::{PacketFate, PacketRecord};
use crate::traffic::TrafficModel;

/// The two per-link event kinds. Embedders map these into their own event
/// vocabulary (the single-link model uses them directly; the network model
/// tags them with a link index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkEv {
    /// An application packet arrives.
    Arrival,
    /// The current MAC wait phase elapsed.
    MacPhase,
}

/// The radio medium a [`LinkCore`] transmits into.
///
/// The contract that keeps N = 1 bit-identical: an implementation whose
/// `cca_busy` is exactly [`Transaction::sample_cca_busy`] and whose
/// `frame_interference_dbm` returns `None` reproduces the pre-refactor
/// single-link behavior including RNG draw order.
pub(crate) trait Medium {
    /// One clear-channel assessment for `link` at time `now`. Called
    /// exactly once per CCA with the backoff RNG; implementations that
    /// consult real occupancy must still fall back to
    /// [`Transaction::sample_cca_busy`] so external-interferer
    /// probabilities keep their draws. Generic over the generator so the
    /// same medium serves the golden (`StdRng`) and fast (`FastRng`)
    /// engines.
    fn cca_busy<R: Rng + ?Sized>(
        &mut self,
        link: usize,
        now: SimTime,
        txn: &Transaction,
        rng: &mut R,
    ) -> bool;

    /// `link`'s data frame occupies the air over `[start, end)`.
    fn frame_on_air(&mut self, link: usize, start: SimTime, end: SimTime);

    /// Resolves `link`'s frame that just finished its airtime: the summed
    /// foreign power (dBm) that overlapped it at the receiver, or `None`
    /// if the frame flew alone.
    fn frame_interference_dbm(&mut self, link: usize, start: SimTime, end: SimTime) -> Option<f64>;

    /// Capture threshold, dB: an overlapped frame below this SINR is lost.
    fn capture_db(&self) -> f64;
}

/// The single-link medium: no other transmitters exist, so CCA reduces to
/// the configured external-interferer probability and frames never overlap.
pub(crate) struct Isolated;

impl Medium for Isolated {
    fn cca_busy<R: Rng + ?Sized>(
        &mut self,
        _link: usize,
        _now: SimTime,
        txn: &Transaction,
        rng: &mut R,
    ) -> bool {
        Transaction::sample_cca_busy(txn, rng)
    }

    fn frame_on_air(&mut self, _link: usize, _start: SimTime, _end: SimTime) {}

    fn frame_interference_dbm(
        &mut self,
        _link: usize,
        _start: SimTime,
        _end: SimTime,
    ) -> Option<f64> {
        None
    }

    fn capture_db(&self) -> f64 {
        f64::NEG_INFINITY
    }
}

/// Metadata of a packet waiting in (or at the head of) the queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    seq: u64,
    t_arrival: SimTime,
    queue_depth: usize,
}

/// The packet currently in MAC service. Its `Pending` stays at the queue
/// head (the in-service packet occupies a `Qmax` slot) and is popped on
/// completion.
#[derive(Debug, Clone)]
struct Active {
    txn: Transaction,
    meta: Pending,
    t_service_start: SimTime,
    receiver_got: bool,
    receiver_copies: u32,
    last_obs: Option<Observation>,
}

/// One sender→receiver link's complete simulation state.
///
/// Generic over the generator type `R` — the engine-mode seam of the
/// network path: `LinkCore<StdRng>` is the golden engine (ChaCha12 +
/// Box–Muller, bit-for-bit the single-link behavior) and
/// `LinkCore<FastRng>` the fast engine (xoshiro256++ + Ziggurat,
/// statistically equivalent). The default keeps the single-link
/// simulator's spelling unchanged.
pub(crate) struct LinkCore<R = StdRng> {
    /// This link's index in its scenario (0 for the single-link path);
    /// passed to every [`Medium`] call.
    index: usize,
    cfg: StackConfig,
    channel: Channel,
    /// Pristine per-packet MAC transaction, copied on each service start.
    txn_template: Transaction,
    rng_fading: R,
    rng_noise: R,
    rng_delivery: R,
    rng_backoff: R,
    rng_traffic: R,
    traffic: TrafficModel,
    queue: TxQueue<Pending>,
    current: Option<Active>,
    acc: MetricsAccumulator,
    energy: EnergyMeter,
    attempts: u64,
    attempts_unacked: u64,
    snr_sum: f64,
    rssi_sum: f64,
    busy: SimDuration,
    generated: u64,
    budget: u64,
    duplicates: u64,
    trajectory: Trajectory,
    /// Airtime of the frame currently on the air, set when its Transmit
    /// wait begins and resolved (against the medium) when it ends.
    current_frame: Option<(SimTime, SimTime)>,
    /// Set when the link leaves the scenario: no further packets are
    /// generated, but an in-flight MAC transaction still finishes.
    departed: bool,
    /// Frames that shared airtime with a foreign transmission.
    frames_interfered: u64,
    /// Interfered frames whose SINR fell below the capture threshold.
    frames_capture_lost: u64,
}

impl<R: NormalSampler> LinkCore<R> {
    /// Builds a link core with its five named RNG streams drawn from
    /// `factory` — the same derivation order as the single-link simulator,
    /// which is what makes a 1-link scenario bit-identical to it.
    pub(crate) fn new(
        index: usize,
        cfg: StackConfig,
        channel: Channel,
        traffic: TrafficModel,
        trajectory: Trajectory,
        budget: u64,
        factory: &RngFactory,
    ) -> Self
    where
        R: FactoryStream,
    {
        // The MAC transaction state machine starts every packet from the
        // same state; build it once and copy per packet instead of
        // re-deriving the CCA busy probability each service start.
        let mut txn_template = Transaction::new(
            cfg.payload,
            cfg.max_tries,
            SimDuration::from_millis(cfg.retry_delay.millis() as u64),
        );
        txn_template.set_cca_busy_probability(channel.cca_busy_probability());
        LinkCore {
            index,
            cfg,
            channel,
            txn_template,
            rng_fading: R::from_factory(factory, StreamId::Fading),
            rng_noise: R::from_factory(factory, StreamId::Noise),
            rng_delivery: R::from_factory(factory, StreamId::Delivery),
            rng_backoff: R::from_factory(factory, StreamId::Backoff),
            rng_traffic: R::from_factory(factory, StreamId::Traffic),
            traffic,
            queue: TxQueue::new(cfg.queue_cap),
            current: None,
            acc: MetricsAccumulator::with_packet_hint(budget),
            energy: EnergyMeter::new(),
            attempts: 0,
            attempts_unacked: 0,
            snr_sum: 0.0,
            rssi_sum: 0.0,
            busy: SimDuration::ZERO,
            generated: 0,
            budget,
            duplicates: 0,
            trajectory,
            current_frame: None,
            departed: false,
            frames_interfered: 0,
            frames_capture_lost: 0,
        }
    }

    /// The simulated configuration.
    pub(crate) fn config(&self) -> StackConfig {
        self.cfg
    }

    /// Frames that shared airtime with a foreign transmission.
    pub(crate) fn frames_interfered(&self) -> u64 {
        self.frames_interfered
    }

    /// Interfered frames lost to the capture threshold.
    pub(crate) fn frames_capture_lost(&self) -> u64 {
        self.frames_capture_lost
    }

    /// The link stops generating traffic (scenario churn). The in-flight
    /// MAC transaction, if any, still runs to completion.
    pub(crate) fn depart(&mut self) {
        self.departed = true;
    }

    /// Clears the departed flag so a later `Join` event resumes traffic
    /// generation (failure/recovery storms). A no-op for links that never
    /// departed, which is what keeps the compiled-timeline replay of a
    /// churn-free scenario bit-identical to the legacy seeding.
    pub(crate) fn rejoin(&mut self) {
        self.departed = false;
    }

    /// Re-targets the link's own budget to a new sender–receiver distance
    /// (a timeline `Move`). Degenerate geometry clamps to the 0.1 m floor
    /// the cross-link gain path already uses.
    pub(crate) fn set_distance(&mut self, meters: f64) {
        if let Ok(d) = Distance::from_meters(meters.max(0.1)) {
            self.cfg.distance = d;
            self.channel.retarget(self.cfg.power, d);
        }
    }

    /// Changes the transmit power (a timeline `PowerChange`): the link
    /// budget and the energy meter's TX draw both follow the new level.
    pub(crate) fn set_power(&mut self, power: PowerLevel) {
        self.cfg.power = power;
        self.channel.retarget(power, self.cfg.distance);
    }

    /// Cumulative per-link progress counters for epoch snapshots:
    /// `(generated, delivered, radio_lost, queue_dropped)`.
    pub(crate) fn progress(&self) -> (u64, u64, u64, u64) {
        let (queue_dropped, radio_lost, delivered) = self.acc.counts();
        (self.generated, delivered, radio_lost, queue_dropped)
    }

    /// Folds a finished record into the running metrics and streams it on.
    fn emit<F: FnMut(&PacketRecord)>(&mut self, record: PacketRecord, out: &mut F) {
        self.acc.observe(&record);
        out(&record);
    }

    /// Handles a [`LinkEv::Arrival`]: admit traffic, reschedule the next
    /// arrival through `wrap`, and kick the MAC if it is idle.
    pub(crate) fn on_arrival<E, M, W, F>(
        &mut self,
        sched: &mut Scheduler<'_, E>,
        wrap: &W,
        medium: &mut M,
        out: &mut F,
    ) where
        E: Eq,
        M: Medium,
        W: Fn(LinkEv) -> E,
        F: FnMut(&PacketRecord),
    {
        if self.departed {
            return;
        }
        if self.traffic.is_saturating() {
            self.saturate(sched.now(), out);
        } else {
            self.admit_one(sched.now(), out);
            if self.generated < self.budget {
                let gap = self
                    .traffic
                    .next_gap(
                        SimDuration::from_millis(self.cfg.packet_interval.millis() as u64),
                        &mut self.rng_traffic,
                    )
                    .expect("interval-based traffic always yields a gap");
                sched.schedule_in(gap, wrap(LinkEv::Arrival));
            }
        }
        if self.current.is_none() {
            self.start_next(sched.now());
            self.pump(sched, wrap, medium, out);
        }
    }

    /// Admits one packet to the queue, recording a drop if it overflows.
    fn admit_one<F: FnMut(&PacketRecord)>(&mut self, now: SimTime, out: &mut F) {
        let seq = self.generated;
        self.generated += 1;
        let meta = Pending {
            seq,
            t_arrival: now,
            // Depth the packet will observe if admitted (itself included).
            queue_depth: self.queue.len() + 1,
        };
        match self.queue.offer(meta) {
            Admission::Accepted { depth } => debug_assert_eq!(depth, meta.queue_depth),
            Admission::Dropped => self.emit(
                PacketRecord {
                    seq,
                    t_arrival: now,
                    t_service_start: None,
                    t_done: None,
                    tries: 0,
                    queue_depth: self.queue.len(),
                    fate: PacketFate::QueueDropped,
                    sender_acked: false,
                    last_rssi_dbm: f64::NAN,
                    last_snr_db: f64::NAN,
                    last_lqi: 0,
                },
                out,
            ),
        }
    }

    /// For the saturating source: keep the queue full while budget remains.
    fn saturate<F: FnMut(&PacketRecord)>(&mut self, now: SimTime, out: &mut F) {
        if self.departed {
            return;
        }
        while self.generated < self.budget && self.queue.len() < self.queue.capacity() {
            self.admit_one(now, out);
        }
    }

    /// Starts serving the queue-head packet if the MAC is idle.
    fn start_next(&mut self, now: SimTime) {
        if self.current.is_some() || self.queue.is_empty() {
            return;
        }
        // Copy the head's metadata; it stays queued (occupying its slot)
        // until the transaction terminates.
        let meta = *self.queue.peek().expect("non-empty queue has a head");
        self.current = Some(Active {
            txn: self.txn_template.clone(),
            meta,
            t_service_start: now,
            receiver_got: false,
            receiver_copies: 0,
            last_obs: None,
        });
    }

    /// Drives the active transaction until it blocks on a wait or finishes.
    pub(crate) fn pump<E, M, W, F>(
        &mut self,
        sched: &mut Scheduler<'_, E>,
        wrap: &W,
        medium: &mut M,
        out: &mut F,
    ) where
        E: Eq,
        M: Medium,
        W: Fn(LinkEv) -> E,
        F: FnMut(&PacketRecord),
    {
        loop {
            let link = self.index;
            let now = sched.now();
            let Some(active) = self.current.as_mut() else {
                return;
            };
            let step = active
                .txn
                .advance_with_cca(&mut self.rng_backoff, |txn, rng| {
                    medium.cca_busy(link, now, txn, rng)
                });
            match step {
                Action::Wait { duration, activity } => {
                    if activity == RadioActivity::Transmit {
                        // The data frame occupies the air for this wait.
                        let end = now + duration;
                        self.current_frame = Some((now, end));
                        medium.frame_on_air(link, now, end);
                    }
                    self.meter(activity, duration);
                    sched.schedule_in(duration, wrap(LinkEv::MacPhase));
                    return;
                }
                Action::Transmit { .. } => {
                    if !self.trajectory.is_stationary() {
                        let here = self
                            .trajectory
                            .distance_at(now.as_secs_f64(), self.cfg.distance);
                        self.channel.retarget(self.cfg.power, here);
                    }
                    let mut obs = self
                        .channel
                        .observe(&mut self.rng_fading, &mut self.rng_noise);
                    // Resolve the frame that just finished its airtime
                    // against the medium: overlapped frames see the summed
                    // foreign power as extra noise and are lost outright
                    // below the capture threshold.
                    let mut captured = true;
                    if let Some((start, end)) = self.current_frame.take() {
                        if let Some(foreign_dbm) = medium.frame_interference_dbm(link, start, end) {
                            self.frames_interfered += 1;
                            let noise_dbm = combine_dbm(obs.noise_dbm, foreign_dbm);
                            let snr_db = obs.rssi_dbm - noise_dbm;
                            obs = Observation {
                                rssi_dbm: obs.rssi_dbm,
                                noise_dbm,
                                snr_db,
                                lqi: lqi_from_snr(snr_db),
                                interfered: true,
                            };
                            if snr_db < medium.capture_db() {
                                captured = false;
                                self.frames_capture_lost += 1;
                            }
                        }
                    }
                    // The delivery draw happens whether or not the frame
                    // was captured, so RNG consumption does not depend on
                    // foreign traffic timing.
                    let clean =
                        self.channel
                            .data_success(&obs, self.cfg.payload, &mut self.rng_delivery);
                    let delivered = captured && clean;
                    let acked = delivered && self.channel.ack_success(&obs, &mut self.rng_delivery);
                    self.attempts += 1;
                    if !acked {
                        self.attempts_unacked += 1;
                    }
                    self.snr_sum += obs.snr_db;
                    self.rssi_sum += obs.rssi_dbm;
                    if delivered {
                        active.receiver_got = true;
                        active.receiver_copies += 1;
                    }
                    active.last_obs = Some(obs);
                    active.txn.on_tx_result(acked);
                }
                Action::Complete(outcome) => {
                    self.complete(outcome, now, out);
                }
            }
        }
    }

    fn complete<F: FnMut(&PacketRecord)>(&mut self, outcome: TxOutcome, now: SimTime, out: &mut F) {
        let active = self
            .current
            .take()
            .expect("complete only fires with an active transaction");
        // Free the queue slot the in-service packet was holding.
        let popped = self.queue.pop();
        debug_assert!(popped.is_some(), "in-service packet must be queued");

        let fate = if active.receiver_got {
            PacketFate::Delivered
        } else {
            PacketFate::RadioLost
        };
        self.duplicates += active.receiver_copies.saturating_sub(1) as u64;
        self.busy += now - active.t_service_start;
        let obs = active.last_obs;
        self.emit(
            PacketRecord {
                seq: active.meta.seq,
                t_arrival: active.meta.t_arrival,
                t_service_start: Some(active.t_service_start),
                t_done: Some(now),
                tries: outcome.tries(),
                queue_depth: active.meta.queue_depth,
                fate,
                sender_acked: outcome.is_delivered(),
                last_rssi_dbm: obs.map_or(f64::NAN, |o| o.rssi_dbm),
                last_snr_db: obs.map_or(f64::NAN, |o| o.snr_db),
                last_lqi: obs.map_or(0, |o| o.lqi),
            },
            out,
        );

        if self.traffic.is_saturating() {
            self.saturate(now, out);
        }
        self.start_next(now);
    }

    fn meter(&mut self, activity: RadioActivity, duration: SimDuration) {
        match activity {
            RadioActivity::SpiLoad | RadioActivity::Idle => self.energy.add_idle(duration),
            RadioActivity::Listen | RadioActivity::TxPrep => self.energy.add_rx(duration),
            RadioActivity::Transmit => self.energy.add_tx(self.cfg.power, duration),
        }
    }

    /// Snapshots the model-side counters needed to finish the metrics fold.
    fn totals(&self, duration: SimDuration) -> RunTotals {
        RunTotals {
            duration,
            generated: self.generated,
            attempts: self.attempts,
            attempts_unacked: self.attempts_unacked,
            duplicates: self.duplicates,
            snr_sum: self.snr_sum,
            rssi_sum: self.rssi_sum,
            busy: self.busy,
            energy: self.energy.breakdown(),
            payload_bits: self.cfg.payload.bits(),
            offered_bps: self.cfg.offered_load_bps(),
            fallback_snr_db: self.channel.mean_snr_db(),
            fallback_rssi_dbm: self.channel.mean_rssi_dbm(),
        }
    }

    /// Closes the books on the run: accounts the radio-idle residual over
    /// `total` simulated time and folds the final metrics.
    pub(crate) fn finalize(&mut self, total: SimDuration) -> LinkMetrics {
        let accounted = self.energy.accounted_time();
        if total > accounted {
            self.energy.add_idle(total - accounted);
        }
        let totals = self.totals(total);
        std::mem::take(&mut self.acc).finish(&totals)
    }
}
