//! The composed link simulation: traffic source → `Qmax` queue → CSMA-CA
//! MAC → channel → receiver, with streamed per-packet records and energy
//! metering.
//!
//! Records stream to a [`PacketSink`] as each packet's fate is decided;
//! summary metrics are folded incrementally by a
//! [`MetricsAccumulator`](crate::metrics::MetricsAccumulator), so a run
//! holds O(delivered) state instead of every record.

use std::sync::Arc;

use rand::rngs::StdRng;

use wsn_mac::queue::{Admission, TxQueue};
use wsn_mac::transaction::{Action, RadioActivity, Transaction, TxOutcome};
use wsn_params::config::StackConfig;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::{Channel, ChannelConfig, Observation};
use wsn_radio::energy::EnergyMeter;
use wsn_radio::trajectory::Trajectory;
use wsn_sim_engine::executor::{
    ExecStats, Executor, ExecutorObserver, Model, Scheduler, StopReason,
};
use wsn_sim_engine::rng::{RngFactory, StreamId};
use wsn_sim_engine::time::{SimDuration, SimTime};

use crate::metrics::{LinkMetrics, MetricsAccumulator, RunTotals};
use crate::record::{PacketFate, PacketRecord};
use crate::sink::{NullSink, PacketSink, VecSink};
use crate::traffic::TrafficModel;

/// Options controlling one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Packets the application generates (the paper used 4500 per
    /// configuration).
    pub packets: u64,
    /// Experiment seed; identical seeds reproduce runs bit-for-bit.
    pub seed: u64,
    /// Propagation environment.
    pub channel: ChannelConfig,
    /// Arrival process (the paper's grid uses [`TrafficModel::Periodic`]).
    pub traffic: TrafficModel,
    /// Keep per-packet records in the outcome (memory ∝ packets).
    pub record_packets: bool,
    /// Optional hard cap on simulated time.
    pub horizon: Option<SimDuration>,
    /// Sender motion profile; [`Trajectory::Stationary`] matches the
    /// paper's fixed-mote setup.
    pub trajectory: Trajectory,
}

impl SimOptions {
    /// The paper's protocol: 4500 packets per configuration on the hallway
    /// channel with periodic traffic.
    pub fn paper(seed: u64) -> Self {
        SimOptions {
            packets: 4500,
            seed,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
            trajectory: Trajectory::Stationary,
        }
    }

    /// A reduced-size run for tests and examples.
    pub fn quick(packets: u64) -> Self {
        SimOptions {
            packets,
            seed: 0x00C0_FFEE,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: true,
            horizon: None,
            trajectory: Trajectory::Stationary,
        }
    }

    /// Returns the options with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the options with a different channel.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the options with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the options with a motion profile.
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> Self {
        self.trajectory = trajectory;
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::paper(0)
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The simulated configuration.
    pub config: StackConfig,
    /// Summary metrics.
    metrics: LinkMetrics,
    /// Per-packet records if requested in [`SimOptions::record_packets`].
    /// Runs through [`LinkSimulation::run_with_sink`] leave this `None`;
    /// the records went to the sink instead.
    pub records: Option<Vec<PacketRecord>>,
    /// Why the run ended.
    pub stop: StopReason,
    /// Final simulation clock.
    pub end_time: SimTime,
    /// Executor statistics: events handled, queue high-water mark, and the
    /// simulated-to-wall-time ratio.
    pub exec: ExecStats,
}

impl SimOutcome {
    /// The summary metrics of the run.
    pub fn metrics(&self) -> &LinkMetrics {
        &self.metrics
    }
}

/// A configured, runnable link simulation.
///
/// ```
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(27)
///     .payload_bytes(50)
///     .build()?;
/// let outcome = LinkSimulation::new(cfg, SimOptions::quick(200)).run();
/// let m = outcome.metrics();
/// assert_eq!(m.generated, 200);
/// assert!(m.conserves_packets());
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinkSimulation {
    config: StackConfig,
    options: SimOptions,
    budgets: Option<Arc<LinkBudgetTable>>,
}

impl LinkSimulation {
    /// Creates a simulation of `config` under `options`.
    pub fn new(config: StackConfig, options: SimOptions) -> Self {
        LinkSimulation {
            config,
            options,
            budgets: None,
        }
    }

    /// Attaches a campaign-shared [`LinkBudgetTable`]: the deterministic
    /// per-`(power, distance)` link-budget terms come from the memo instead
    /// of being recomputed per run. Results are bit-for-bit identical (see
    /// [`Channel::from_budget`]); the table is consulted only when its
    /// environment matches this run's [`SimOptions::channel`], so a
    /// mismatched table is safely ignored.
    pub fn with_budget_table(mut self, table: Arc<LinkBudgetTable>) -> Self {
        self.budgets = Some(table);
        self
    }

    /// Runs the simulation to completion and summarises it.
    ///
    /// Honors [`SimOptions::record_packets`]: when set, records are
    /// collected through a [`VecSink`] and returned on the outcome. Prefer
    /// [`run_with_sink`](Self::run_with_sink) for bounded-memory streaming.
    pub fn run(self) -> SimOutcome {
        if self.options.record_packets {
            let mut sink = VecSink::new();
            let mut outcome = self.run_with_sink(&mut sink);
            outcome.records = Some(sink.into_records());
            outcome
        } else {
            self.run_with_sink(&mut NullSink)
        }
    }

    /// Runs the simulation, streaming each [`PacketRecord`] to `sink` the
    /// moment the packet's fate is decided. The outcome carries full
    /// summary metrics but no record vector; peak memory is O(delivered)
    /// (the exact-percentile delay buffer) regardless of packet count.
    pub fn run_with_sink<S: PacketSink>(self, sink: &mut S) -> SimOutcome {
        self.run_observed(sink, &mut ())
    }

    /// Like [`run_with_sink`](Self::run_with_sink), additionally reporting
    /// executor progress to `observer`.
    pub fn run_observed<S: PacketSink, O: ExecutorObserver>(
        self,
        sink: &mut S,
        observer: &mut O,
    ) -> SimOutcome {
        let factory = RngFactory::new(self.options.seed);
        let channel = match &self.budgets {
            Some(table) if *table.config() == self.options.channel => {
                table.channel(self.config.power, self.config.distance)
            }
            _ => Channel::new(
                self.options.channel,
                self.config.power,
                self.config.distance,
            ),
        };
        // The MAC transaction state machine starts every packet from the
        // same state; build it once and copy per packet instead of
        // re-deriving the CCA busy probability each service start.
        let mut txn_template = Transaction::new(
            self.config.payload,
            self.config.max_tries,
            SimDuration::from_millis(self.config.retry_delay.millis() as u64),
        );
        txn_template.set_cca_busy_probability(channel.cca_busy_probability());
        let sink_wants = sink.wants_records();
        let model = LinkModel {
            cfg: self.config,
            channel,
            txn_template,
            rng_fading: factory.stream(StreamId::Fading),
            rng_noise: factory.stream(StreamId::Noise),
            rng_delivery: factory.stream(StreamId::Delivery),
            rng_backoff: factory.stream(StreamId::Backoff),
            rng_traffic: factory.stream(StreamId::Traffic),
            traffic: self.options.traffic,
            queue: TxQueue::new(self.config.queue_cap),
            current: None,
            acc: MetricsAccumulator::with_packet_hint(self.options.packets),
            sink,
            sink_wants,
            energy: EnergyMeter::new(),
            attempts: 0,
            attempts_unacked: 0,
            snr_sum: 0.0,
            rssi_sum: 0.0,
            busy: SimDuration::ZERO,
            generated: 0,
            budget: self.options.packets,
            duplicates: 0,
            trajectory: self.options.trajectory,
        };
        let mut exec = Executor::new(model);
        if let Some(h) = self.options.horizon {
            exec = exec.with_horizon(SimTime::ZERO + h);
        }
        exec.seed_at(SimTime::ZERO, Ev::Arrival);
        let (stop, end_time) = exec.run_observed(observer);
        let exec_stats = *exec.last_stats().expect("run records stats");
        let mut model = exec.into_model();

        // Account the radio-idle residual (time with no MAC activity).
        let accounted = model.energy.accounted_time();
        let total = end_time - SimTime::ZERO;
        if total > accounted {
            model.energy.add_idle(total - accounted);
        }

        let totals = model.totals(total);
        let metrics = model.acc.finish(&totals);
        SimOutcome {
            config: self.config,
            metrics,
            records: None,
            stop,
            end_time,
            exec: exec_stats,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// An application packet arrives.
    Arrival,
    /// The current MAC wait phase elapsed.
    MacPhase,
}

/// Metadata of a packet waiting in (or at the head of) the queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    t_arrival: SimTime,
    queue_depth: usize,
}

/// The packet currently in MAC service. Its `Pending` stays at the queue
/// head (the in-service packet occupies a `Qmax` slot) and is popped on
/// completion.
#[derive(Debug, Clone)]
struct Active {
    txn: Transaction,
    meta: Pending,
    t_service_start: SimTime,
    receiver_got: bool,
    receiver_copies: u32,
    last_obs: Option<Observation>,
}

struct LinkModel<'s, S: PacketSink> {
    cfg: StackConfig,
    channel: Channel,
    /// Pristine per-packet MAC transaction, copied on each service start.
    txn_template: Transaction,
    rng_fading: StdRng,
    rng_noise: StdRng,
    rng_delivery: StdRng,
    rng_backoff: StdRng,
    rng_traffic: StdRng,
    traffic: TrafficModel,
    queue: TxQueue<Pending>,
    current: Option<Active>,
    acc: MetricsAccumulator,
    sink: &'s mut S,
    /// [`PacketSink::wants_records`], read once at start-up.
    sink_wants: bool,
    energy: EnergyMeter,
    attempts: u64,
    attempts_unacked: u64,
    snr_sum: f64,
    rssi_sum: f64,
    busy: SimDuration,
    generated: u64,
    budget: u64,
    duplicates: u64,
    trajectory: Trajectory,
}

impl<S: PacketSink> Model for LinkModel<'_, S> {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::Arrival => self.on_arrival(sched),
            Ev::MacPhase => self.pump(sched),
        }
    }
}

impl<S: PacketSink> LinkModel<'_, S> {
    /// Folds a finished record into the running metrics and streams it on
    /// (unless the sink declared it discards records).
    fn emit(&mut self, record: PacketRecord) {
        self.acc.observe(&record);
        if self.sink_wants {
            self.sink.on_packet(&record);
        }
    }

    fn on_arrival(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if self.traffic.is_saturating() {
            self.saturate(sched.now());
        } else {
            self.admit_one(sched.now());
            if self.generated < self.budget {
                let gap = self
                    .traffic
                    .next_gap(
                        SimDuration::from_millis(self.cfg.packet_interval.millis() as u64),
                        &mut self.rng_traffic,
                    )
                    .expect("interval-based traffic always yields a gap");
                sched.schedule_in(gap, Ev::Arrival);
            }
        }
        if self.current.is_none() {
            self.start_next(sched.now());
            self.pump(sched);
        }
    }

    /// Admits one packet to the queue, recording a drop if it overflows.
    fn admit_one(&mut self, now: SimTime) {
        let seq = self.generated;
        self.generated += 1;
        let meta = Pending {
            seq,
            t_arrival: now,
            // Depth the packet will observe if admitted (itself included).
            queue_depth: self.queue.len() + 1,
        };
        match self.queue.offer(meta) {
            Admission::Accepted { depth } => debug_assert_eq!(depth, meta.queue_depth),
            Admission::Dropped => self.emit(PacketRecord {
                seq,
                t_arrival: now,
                t_service_start: None,
                t_done: None,
                tries: 0,
                queue_depth: self.queue.len(),
                fate: PacketFate::QueueDropped,
                sender_acked: false,
                last_rssi_dbm: f64::NAN,
                last_snr_db: f64::NAN,
                last_lqi: 0,
            }),
        }
    }

    /// For the saturating source: keep the queue full while budget remains.
    fn saturate(&mut self, now: SimTime) {
        while self.generated < self.budget && self.queue.len() < self.queue.capacity() {
            self.admit_one(now);
        }
    }

    /// Starts serving the queue-head packet if the MAC is idle.
    fn start_next(&mut self, now: SimTime) {
        if self.current.is_some() || self.queue.is_empty() {
            return;
        }
        // Copy the head's metadata; it stays queued (occupying its slot)
        // until the transaction terminates.
        let meta = *self.queue.peek().expect("non-empty queue has a head");
        self.current = Some(Active {
            txn: self.txn_template.clone(),
            meta,
            t_service_start: now,
            receiver_got: false,
            receiver_copies: 0,
            last_obs: None,
        });
    }

    /// Drives the active transaction until it blocks on a wait or finishes.
    fn pump(&mut self, sched: &mut Scheduler<'_, Ev>) {
        loop {
            let Some(active) = self.current.as_mut() else {
                return;
            };
            match active.txn.advance(&mut self.rng_backoff) {
                Action::Wait { duration, activity } => {
                    self.meter(activity, duration);
                    sched.schedule_in(duration, Ev::MacPhase);
                    return;
                }
                Action::Transmit { .. } => {
                    if !self.trajectory.is_stationary() {
                        let here = self
                            .trajectory
                            .distance_at(sched.now().as_secs_f64(), self.cfg.distance);
                        self.channel.retarget(self.cfg.power, here);
                    }
                    let obs = self
                        .channel
                        .observe(&mut self.rng_fading, &mut self.rng_noise);
                    let delivered =
                        self.channel
                            .data_success(&obs, self.cfg.payload, &mut self.rng_delivery);
                    let acked = delivered && self.channel.ack_success(&obs, &mut self.rng_delivery);
                    self.attempts += 1;
                    if !acked {
                        self.attempts_unacked += 1;
                    }
                    self.snr_sum += obs.snr_db;
                    self.rssi_sum += obs.rssi_dbm;
                    if delivered {
                        active.receiver_got = true;
                        active.receiver_copies += 1;
                    }
                    active.last_obs = Some(obs);
                    active.txn.on_tx_result(acked);
                }
                Action::Complete(outcome) => {
                    self.complete(outcome, sched.now());
                }
            }
        }
    }

    fn complete(&mut self, outcome: TxOutcome, now: SimTime) {
        let active = self
            .current
            .take()
            .expect("complete only fires with an active transaction");
        // Free the queue slot the in-service packet was holding.
        let popped = self.queue.pop();
        debug_assert!(popped.is_some(), "in-service packet must be queued");

        let fate = if active.receiver_got {
            PacketFate::Delivered
        } else {
            PacketFate::RadioLost
        };
        self.duplicates += active.receiver_copies.saturating_sub(1) as u64;
        self.busy += now - active.t_service_start;
        let obs = active.last_obs;
        self.emit(PacketRecord {
            seq: active.meta.seq,
            t_arrival: active.meta.t_arrival,
            t_service_start: Some(active.t_service_start),
            t_done: Some(now),
            tries: outcome.tries(),
            queue_depth: active.meta.queue_depth,
            fate,
            sender_acked: outcome.is_delivered(),
            last_rssi_dbm: obs.map_or(f64::NAN, |o| o.rssi_dbm),
            last_snr_db: obs.map_or(f64::NAN, |o| o.snr_db),
            last_lqi: obs.map_or(0, |o| o.lqi),
        });

        if self.traffic.is_saturating() {
            self.saturate(now);
        }
        self.start_next(now);
    }

    fn meter(&mut self, activity: RadioActivity, duration: SimDuration) {
        match activity {
            RadioActivity::SpiLoad | RadioActivity::Idle => self.energy.add_idle(duration),
            RadioActivity::Listen | RadioActivity::TxPrep => self.energy.add_rx(duration),
            RadioActivity::Transmit => self.energy.add_tx(self.cfg.power, duration),
        }
    }

    /// Snapshots the model-side counters needed to finish the metrics fold.
    fn totals(&self, duration: SimDuration) -> RunTotals {
        RunTotals {
            duration,
            generated: self.generated,
            attempts: self.attempts,
            attempts_unacked: self.attempts_unacked,
            duplicates: self.duplicates,
            snr_sum: self.snr_sum,
            rssi_sum: self.rssi_sum,
            busy: self.busy,
            energy: self.energy.breakdown(),
            payload_bits: self.cfg.payload.bits(),
            offered_bps: self.cfg.offered_load_bps(),
            fallback_snr_db: self.channel.mean_snr_db(),
            fallback_rssi_dbm: self.channel.mean_rssi_dbm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_radio::per::{EmpiricalPer, PerBackend};

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    #[test]
    fn good_link_delivers_nearly_everything() {
        let outcome = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(300)).run();
        let m = outcome.metrics();
        assert_eq!(m.generated, 300);
        assert!(m.conserves_packets());
        assert!(m.plr_total() < 0.02, "plr={}", m.plr_total());
        assert!(m.goodput_bps > 0.9 * m.offered_bps);
    }

    #[test]
    fn weak_link_loses_packets_over_radio() {
        let outcome = LinkSimulation::new(cfg(3, 35.0), SimOptions::quick(300)).run();
        let m = outcome.metrics();
        assert!(m.conserves_packets());
        assert!(m.plr_radio > 0.01, "plr_radio={}", m.plr_radio);
        assert!(m.per > 0.05, "per={}", m.per);
        assert!(m.mean_tries > 1.05, "tries={}", m.mean_tries);
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let a = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let b = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.records.unwrap().len(), b.records.unwrap().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let b = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150).with_seed(99)).run();
        assert_ne!(a.metrics().goodput_bps, b.metrics().goodput_bps);
    }

    #[test]
    fn queue_cap_one_drops_arrivals_during_service() {
        // Very fast arrivals (10 ms) with a slow weak link and Qmax=1: most
        // arrivals find the server busy and are dropped at the queue.
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(30)
            .queue_cap(1)
            .packet_interval_ms(10)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(300)).run();
        let m = m.metrics().clone();
        assert!(m.conserves_packets());
        assert!(m.plr_queue > 0.4, "plr_queue={}", m.plr_queue);
    }

    #[test]
    fn saturating_traffic_keeps_link_busy() {
        let outcome = LinkSimulation::new(
            cfg(31, 10.0),
            SimOptions::quick(200).with_traffic(TrafficModel::Saturating),
        )
        .run();
        let m = outcome.metrics();
        assert_eq!(m.generated, 200);
        assert!(m.conserves_packets());
        assert!(m.utilization > 0.95, "util={}", m.utilization);
    }

    #[test]
    fn perfect_channel_never_loses() {
        let mut channel = ChannelConfig::ideal();
        channel.per_backend = PerBackend::Empirical(EmpiricalPer::new(0.0, -0.15));
        let outcome =
            LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(200).with_channel(channel)).run();
        let m = outcome.metrics();
        assert_eq!(m.delivered, 200);
        assert_eq!(m.plr_total(), 0.0);
        assert!((m.mean_tries - 1.0).abs() < 1e-12);
        assert_eq!(m.per, 0.0);
    }

    #[test]
    fn records_match_aggregates() {
        let outcome = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(250)).run();
        let m = outcome.metrics().clone();
        let records = outcome.records.unwrap();
        let delivered = records
            .iter()
            .filter(|r| r.fate == PacketFate::Delivered)
            .count() as u64;
        assert_eq!(delivered, m.delivered);
        let tries: u64 = records.iter().map(|r| r.tries as u64).sum();
        assert_eq!(tries, m.attempts);
    }

    #[test]
    fn u_eng_matches_hand_computed_tx_energy() {
        // On an ideal perfect channel every packet takes exactly one
        // transmission, so U_eng = Etx · (l0 + lD) / lD.
        let mut channel = ChannelConfig::ideal();
        channel.per_backend = PerBackend::Empirical(EmpiricalPer::new(0.0, -0.15));
        let cfg = StackConfig::builder()
            .distance_m(10.0)
            .power_level(31)
            .payload_bytes(114)
            .max_tries(1)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(100).with_channel(channel)).run();
        let etx = wsn_radio::cc2420::tx_energy_per_bit_j(cfg.power) * 1e6;
        let expected = etx * 133.0 / 114.0; // (l0 + lD)/lD with l0 = 19
        let got = m.metrics().u_eng_uj_per_bit;
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn ack_loss_produces_duplicates() {
        // A weak link with a big retry budget: some delivered frames lose
        // their ACK and get retransmitted, creating receiver duplicates.
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(200)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(500)).run();
        assert!(m.metrics().duplicates > 0, "no duplicates on a weak link");

        // With ACK loss disabled, duplicates are impossible.
        let mut ideal = ChannelConfig::paper_hallway();
        ideal.ack_loss = false;
        let m2 = LinkSimulation::new(cfg, SimOptions::quick(500).with_channel(ideal)).run();
        assert_eq!(m2.metrics().duplicates, 0);
    }

    #[test]
    fn horizon_leaves_residual_packets() {
        let options = SimOptions {
            horizon: Some(SimDuration::from_millis(40)),
            ..SimOptions::quick(1000)
        };
        let outcome = LinkSimulation::new(cfg(23, 35.0), options).run();
        assert_eq!(outcome.stop, StopReason::HorizonReached);
        let m = outcome.metrics();
        assert!(m.conserves_packets());
        assert!(m.generated < 1000);
    }

    #[test]
    fn streaming_metrics_match_batch_summary_bit_for_bit() {
        // The streaming MetricsAccumulator must reproduce the historical
        // batch summariser exactly: re-summarise the recorded packets with
        // the independent batch path and require full equality (LinkMetrics
        // is compared field-by-field via PartialEq on the raw floats).
        for (power, dist, packets) in [(31u8, 10.0, 200u64), (23, 35.0, 300), (3, 35.0, 250)] {
            let outcome = LinkSimulation::new(cfg(power, dist), SimOptions::quick(packets)).run();
            let streamed = outcome.metrics().clone();
            let records = outcome.records.expect("quick() records packets");

            // Rebuild RunTotals from the published metrics; every field is
            // carried through `finish` unchanged, so this reconstruction is
            // lossless for the comparison.
            let totals = RunTotals {
                duration: SimDuration::from_secs_f64(streamed.duration_s),
                generated: streamed.generated,
                attempts: streamed.attempts,
                attempts_unacked: streamed.attempts_unacked,
                duplicates: streamed.duplicates,
                snr_sum: streamed.mean_snr_db * streamed.attempts as f64,
                rssi_sum: streamed.mean_rssi_dbm * streamed.attempts as f64,
                busy: SimDuration::from_secs_f64(streamed.utilization * streamed.duration_s),
                energy: streamed.energy,
                payload_bits: outcome.config.payload.bits(),
                offered_bps: streamed.offered_bps,
                fallback_snr_db: streamed.mean_snr_db,
                fallback_rssi_dbm: streamed.mean_rssi_dbm,
            };
            let batch = crate::metrics::summarise_records(&records, &totals);

            // Fields derived purely from records must agree bit-for-bit.
            assert_eq!(batch.queue_dropped, streamed.queue_dropped);
            assert_eq!(batch.radio_lost, streamed.radio_lost);
            assert_eq!(batch.delivered, streamed.delivered);
            assert_eq!(batch.acked, streamed.acked);
            assert_eq!(batch.residual, streamed.residual);
            assert_eq!(batch.mean_tries.to_bits(), streamed.mean_tries.to_bits());
            assert_eq!(
                batch.delay_mean_ms.to_bits(),
                streamed.delay_mean_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p50_ms.to_bits(),
                streamed.delay_p50_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p95_ms.to_bits(),
                streamed.delay_p95_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p99_ms.to_bits(),
                streamed.delay_p99_ms.to_bits()
            );
            assert_eq!(
                batch.service_mean_ms.to_bits(),
                streamed.service_mean_ms.to_bits()
            );
            assert_eq!(
                batch.queueing_mean_ms.to_bits(),
                streamed.queueing_mean_ms.to_bits()
            );
            assert_eq!(batch.goodput_bps.to_bits(), streamed.goodput_bps.to_bits());
        }
    }

    #[test]
    fn sink_run_equals_record_run() {
        // Streaming through an external VecSink must see exactly the
        // records (and metrics) the record_packets path produces.
        let recorded = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200)).run();

        let mut sink = VecSink::new();
        let mut options = SimOptions::quick(200);
        options.record_packets = false;
        let streamed = LinkSimulation::new(cfg(23, 35.0), options).run_with_sink(&mut sink);

        assert_eq!(recorded.metrics(), streamed.metrics());
        assert!(streamed.records.is_none());
        assert_eq!(recorded.records.unwrap(), sink.into_records());
    }

    #[test]
    fn budget_table_run_is_bit_identical_to_direct_run() {
        let table = Arc::new(LinkBudgetTable::new(ChannelConfig::paper_hallway()));
        for (power, dist) in [(23u8, 35.0), (3, 35.0), (31, 10.0)] {
            let direct = LinkSimulation::new(cfg(power, dist), SimOptions::quick(200)).run();
            let memoized = LinkSimulation::new(cfg(power, dist), SimOptions::quick(200))
                .with_budget_table(Arc::clone(&table))
                .run();
            assert_eq!(direct.metrics(), memoized.metrics());
            assert_eq!(direct.records, memoized.records);
        }
        assert_eq!(table.len(), 3, "one memo entry per operating point");
    }

    #[test]
    fn mismatched_budget_table_is_ignored_not_wrong() {
        // A table built for a different environment must not leak its
        // budgets into the run.
        let table = Arc::new(LinkBudgetTable::new(ChannelConfig::ideal()));
        let direct = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let guarded = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150))
            .with_budget_table(Arc::clone(&table))
            .run();
        assert_eq!(direct.metrics(), guarded.metrics());
        assert!(table.is_empty(), "mismatched table must stay untouched");
    }

    #[test]
    fn null_sink_run_matches_recording_run_metrics() {
        let with_records = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(150)).run();
        let mut options = SimOptions::quick(150);
        options.record_packets = false;
        let without = LinkSimulation::new(cfg(31, 10.0), options).run();
        assert_eq!(with_records.metrics(), without.metrics());
    }

    #[test]
    fn outcome_carries_exec_stats() {
        let outcome = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(100)).run();
        assert!(outcome.exec.events_handled > 0);
        assert!(outcome.exec.events_scheduled >= outcome.exec.events_handled);
        assert!(outcome.exec.queue_high_water >= 1);
        assert!(outcome.exec.sim_wall_ratio() > 0.0);
    }

    #[test]
    fn utilization_grows_with_load() {
        let slow = StackConfig::builder()
            .packet_interval_ms(500)
            .distance_m(20.0)
            .build()
            .unwrap();
        let fast = StackConfig::builder()
            .packet_interval_ms(20)
            .distance_m(20.0)
            .build()
            .unwrap();
        let u_slow = LinkSimulation::new(slow, SimOptions::quick(200)).run();
        let u_fast = LinkSimulation::new(fast, SimOptions::quick(200)).run();
        assert!(u_fast.metrics().utilization > u_slow.metrics().utilization);
    }
}
