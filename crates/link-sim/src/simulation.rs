//! The composed link simulation: traffic source → `Qmax` queue → CSMA-CA
//! MAC → channel → receiver, with streamed per-packet records and energy
//! metering.
//!
//! Records stream to a [`PacketSink`] as each packet's fate is decided;
//! summary metrics are folded incrementally by a
//! [`MetricsAccumulator`](crate::metrics::MetricsAccumulator), so a run
//! holds O(delivered) state instead of every record.

use std::sync::Arc;

use wsn_params::config::StackConfig;
use wsn_params::motion::Trajectory;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_sim_engine::executor::{
    ExecStats, Executor, ExecutorObserver, Model, Scheduler, StopReason,
};
use wsn_sim_engine::rng::RngFactory;
use wsn_sim_engine::time::{SimDuration, SimTime};

use crate::link::{Isolated, LinkCore, LinkEv};
use crate::metrics::LinkMetrics;
use crate::record::PacketRecord;
use crate::sink::{NullSink, PacketSink, VecSink};
use crate::traffic::TrafficModel;

/// Options controlling one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Packets the application generates (the paper used 4500 per
    /// configuration).
    pub packets: u64,
    /// Experiment seed; identical seeds reproduce runs bit-for-bit.
    pub seed: u64,
    /// Propagation environment.
    pub channel: ChannelConfig,
    /// Arrival process (the paper's grid uses [`TrafficModel::Periodic`]).
    pub traffic: TrafficModel,
    /// Keep per-packet records in the outcome (memory ∝ packets).
    pub record_packets: bool,
    /// Optional hard cap on simulated time.
    pub horizon: Option<SimDuration>,
    /// Sender motion profile; [`Trajectory::Stationary`] matches the
    /// paper's fixed-mote setup.
    pub trajectory: Trajectory,
}

impl SimOptions {
    /// The paper's protocol: 4500 packets per configuration on the hallway
    /// channel with periodic traffic.
    pub fn paper(seed: u64) -> Self {
        SimOptions {
            packets: 4500,
            seed,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
            trajectory: Trajectory::Stationary,
        }
    }

    /// A reduced-size run for tests and examples.
    pub fn quick(packets: u64) -> Self {
        SimOptions {
            packets,
            seed: 0x00C0_FFEE,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: true,
            horizon: None,
            trajectory: Trajectory::Stationary,
        }
    }

    /// Returns the options with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the options with a different channel.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the options with a different traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the options with a motion profile.
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> Self {
        self.trajectory = trajectory;
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::paper(0)
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The simulated configuration.
    pub config: StackConfig,
    /// Summary metrics.
    metrics: LinkMetrics,
    /// Per-packet records if requested in [`SimOptions::record_packets`].
    /// Runs through [`LinkSimulation::run_with_sink`] leave this `None`;
    /// the records went to the sink instead.
    pub records: Option<Vec<PacketRecord>>,
    /// Why the run ended.
    pub stop: StopReason,
    /// Final simulation clock.
    pub end_time: SimTime,
    /// Executor statistics: events handled, queue high-water mark, and the
    /// simulated-to-wall-time ratio.
    pub exec: ExecStats,
}

impl SimOutcome {
    /// The summary metrics of the run.
    pub fn metrics(&self) -> &LinkMetrics {
        &self.metrics
    }
}

/// A configured, runnable link simulation.
///
/// ```
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(27)
///     .payload_bytes(50)
///     .build()?;
/// let outcome = LinkSimulation::new(cfg, SimOptions::quick(200)).run();
/// let m = outcome.metrics();
/// assert_eq!(m.generated, 200);
/// assert!(m.conserves_packets());
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinkSimulation {
    config: StackConfig,
    options: SimOptions,
    budgets: Option<Arc<LinkBudgetTable>>,
}

impl LinkSimulation {
    /// Creates a simulation of `config` under `options`.
    pub fn new(config: StackConfig, options: SimOptions) -> Self {
        LinkSimulation {
            config,
            options,
            budgets: None,
        }
    }

    /// Attaches a campaign-shared [`LinkBudgetTable`]: the deterministic
    /// per-`(power, distance)` link-budget terms come from the memo instead
    /// of being recomputed per run. Results are bit-for-bit identical (see
    /// [`Channel::from_budget`]); the table is consulted only when its
    /// environment matches this run's [`SimOptions::channel`], so a
    /// mismatched table is safely ignored.
    pub fn with_budget_table(mut self, table: Arc<LinkBudgetTable>) -> Self {
        self.budgets = Some(table);
        self
    }

    /// Runs the simulation to completion and summarises it.
    ///
    /// Honors [`SimOptions::record_packets`]: when set, records are
    /// collected through a [`VecSink`] and returned on the outcome. Prefer
    /// [`run_with_sink`](Self::run_with_sink) for bounded-memory streaming.
    pub fn run(self) -> SimOutcome {
        if self.options.record_packets {
            let mut sink = VecSink::new();
            let mut outcome = self.run_with_sink(&mut sink);
            outcome.records = Some(sink.into_records());
            outcome
        } else {
            self.run_with_sink(&mut NullSink)
        }
    }

    /// Runs the simulation, streaming each [`PacketRecord`] to `sink` the
    /// moment the packet's fate is decided. The outcome carries full
    /// summary metrics but no record vector; peak memory is O(delivered)
    /// (the exact-percentile delay buffer) regardless of packet count.
    pub fn run_with_sink<S: PacketSink>(self, sink: &mut S) -> SimOutcome {
        self.run_observed(sink, &mut ())
    }

    /// Like [`run_with_sink`](Self::run_with_sink), additionally reporting
    /// executor progress to `observer`.
    pub fn run_observed<S: PacketSink, O: ExecutorObserver>(
        self,
        sink: &mut S,
        observer: &mut O,
    ) -> SimOutcome {
        let factory = RngFactory::new(self.options.seed);
        let channel = match &self.budgets {
            Some(table) if *table.config() == self.options.channel => {
                table.channel(self.config.power, self.config.distance)
            }
            _ => Channel::new(
                self.options.channel,
                self.config.power,
                self.config.distance,
            ),
        };
        let sink_wants = sink.wants_records();
        let model = LinkModel {
            core: LinkCore::new(
                0,
                self.config,
                channel,
                self.options.traffic,
                self.options.trajectory,
                self.options.packets,
                &factory,
            ),
            sink,
            sink_wants,
        };
        let mut exec = Executor::new(model);
        if let Some(h) = self.options.horizon {
            exec = exec.with_horizon(SimTime::ZERO + h);
        }
        exec.seed_at(SimTime::ZERO, LinkEv::Arrival);
        let (stop, end_time) = exec.run_observed(observer);
        let exec_stats = *exec.last_stats().expect("run records stats");
        let mut model = exec.into_model();

        // Accounts the radio-idle residual (time with no MAC activity)
        // before folding the final metrics.
        let metrics = model.core.finalize(end_time - SimTime::ZERO);
        SimOutcome {
            config: self.config,
            metrics,
            records: None,
            stop,
            end_time,
            exec: exec_stats,
        }
    }
}

/// The single-link executor model: one [`LinkCore`] on an [`Isolated`]
/// medium, streaming records to the borrowed sink. All simulation behavior
/// lives in the core (shared with the multi-link network model); this
/// wrapper only adapts events and the sink.
struct LinkModel<'s, S: PacketSink> {
    core: LinkCore,
    sink: &'s mut S,
    /// [`PacketSink::wants_records`], read once at start-up.
    sink_wants: bool,
}

impl<S: PacketSink> Model for LinkModel<'_, S> {
    type Event = LinkEv;

    fn handle(&mut self, event: LinkEv, sched: &mut Scheduler<'_, LinkEv>) {
        let LinkModel {
            core,
            sink,
            sink_wants,
        } = self;
        let mut out = |record: &PacketRecord| {
            if *sink_wants {
                sink.on_packet(record);
            }
        };
        match event {
            LinkEv::Arrival => core.on_arrival(sched, &|e| e, &mut Isolated, &mut out),
            LinkEv::MacPhase => core.pump(sched, &|e| e, &mut Isolated, &mut out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunTotals;
    use crate::record::PacketFate;
    use wsn_radio::per::{EmpiricalPer, PerBackend};

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    #[test]
    fn good_link_delivers_nearly_everything() {
        let outcome = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(300)).run();
        let m = outcome.metrics();
        assert_eq!(m.generated, 300);
        assert!(m.conserves_packets());
        assert!(m.plr_total() < 0.02, "plr={}", m.plr_total());
        assert!(m.goodput_bps > 0.9 * m.offered_bps);
    }

    #[test]
    fn weak_link_loses_packets_over_radio() {
        let outcome = LinkSimulation::new(cfg(3, 35.0), SimOptions::quick(300)).run();
        let m = outcome.metrics();
        assert!(m.conserves_packets());
        assert!(m.plr_radio > 0.01, "plr_radio={}", m.plr_radio);
        assert!(m.per > 0.05, "per={}", m.per);
        assert!(m.mean_tries > 1.05, "tries={}", m.mean_tries);
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let a = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let b = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.records.unwrap().len(), b.records.unwrap().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let b = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150).with_seed(99)).run();
        assert_ne!(a.metrics().goodput_bps, b.metrics().goodput_bps);
    }

    #[test]
    fn queue_cap_one_drops_arrivals_during_service() {
        // Very fast arrivals (10 ms) with a slow weak link and Qmax=1: most
        // arrivals find the server busy and are dropped at the queue.
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(30)
            .queue_cap(1)
            .packet_interval_ms(10)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(300)).run();
        let m = m.metrics().clone();
        assert!(m.conserves_packets());
        assert!(m.plr_queue > 0.4, "plr_queue={}", m.plr_queue);
    }

    #[test]
    fn saturating_traffic_keeps_link_busy() {
        let outcome = LinkSimulation::new(
            cfg(31, 10.0),
            SimOptions::quick(200).with_traffic(TrafficModel::Saturating),
        )
        .run();
        let m = outcome.metrics();
        assert_eq!(m.generated, 200);
        assert!(m.conserves_packets());
        assert!(m.utilization > 0.95, "util={}", m.utilization);
    }

    #[test]
    fn perfect_channel_never_loses() {
        let mut channel = ChannelConfig::ideal();
        channel.per_backend = PerBackend::Empirical(EmpiricalPer::new(0.0, -0.15));
        let outcome =
            LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(200).with_channel(channel)).run();
        let m = outcome.metrics();
        assert_eq!(m.delivered, 200);
        assert_eq!(m.plr_total(), 0.0);
        assert!((m.mean_tries - 1.0).abs() < 1e-12);
        assert_eq!(m.per, 0.0);
    }

    #[test]
    fn records_match_aggregates() {
        let outcome = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(250)).run();
        let m = outcome.metrics().clone();
        let records = outcome.records.unwrap();
        let delivered = records
            .iter()
            .filter(|r| r.fate == PacketFate::Delivered)
            .count() as u64;
        assert_eq!(delivered, m.delivered);
        let tries: u64 = records.iter().map(|r| r.tries as u64).sum();
        assert_eq!(tries, m.attempts);
    }

    #[test]
    fn u_eng_matches_hand_computed_tx_energy() {
        // On an ideal perfect channel every packet takes exactly one
        // transmission, so U_eng = Etx · (l0 + lD) / lD.
        let mut channel = ChannelConfig::ideal();
        channel.per_backend = PerBackend::Empirical(EmpiricalPer::new(0.0, -0.15));
        let cfg = StackConfig::builder()
            .distance_m(10.0)
            .power_level(31)
            .payload_bytes(114)
            .max_tries(1)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(100).with_channel(channel)).run();
        let etx = wsn_radio::cc2420::tx_energy_per_bit_j(cfg.power) * 1e6;
        let expected = etx * 133.0 / 114.0; // (l0 + lD)/lD with l0 = 19
        let got = m.metrics().u_eng_uj_per_bit;
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn ack_loss_produces_duplicates() {
        // A weak link with a big retry budget: some delivered frames lose
        // their ACK and get retransmitted, creating receiver duplicates.
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(200)
            .build()
            .unwrap();
        let m = LinkSimulation::new(cfg, SimOptions::quick(500)).run();
        assert!(m.metrics().duplicates > 0, "no duplicates on a weak link");

        // With ACK loss disabled, duplicates are impossible.
        let mut ideal = ChannelConfig::paper_hallway();
        ideal.ack_loss = false;
        let m2 = LinkSimulation::new(cfg, SimOptions::quick(500).with_channel(ideal)).run();
        assert_eq!(m2.metrics().duplicates, 0);
    }

    #[test]
    fn horizon_leaves_residual_packets() {
        let options = SimOptions {
            horizon: Some(SimDuration::from_millis(40)),
            ..SimOptions::quick(1000)
        };
        let outcome = LinkSimulation::new(cfg(23, 35.0), options).run();
        assert_eq!(outcome.stop, StopReason::HorizonReached);
        let m = outcome.metrics();
        assert!(m.conserves_packets());
        assert!(m.generated < 1000);
    }

    #[test]
    fn streaming_metrics_match_batch_summary_bit_for_bit() {
        // The streaming MetricsAccumulator must reproduce the historical
        // batch summariser exactly: re-summarise the recorded packets with
        // the independent batch path and require full equality (LinkMetrics
        // is compared field-by-field via PartialEq on the raw floats).
        for (power, dist, packets) in [(31u8, 10.0, 200u64), (23, 35.0, 300), (3, 35.0, 250)] {
            let outcome = LinkSimulation::new(cfg(power, dist), SimOptions::quick(packets)).run();
            let streamed = outcome.metrics().clone();
            let records = outcome.records.expect("quick() records packets");

            // Rebuild RunTotals from the published metrics; every field is
            // carried through `finish` unchanged, so this reconstruction is
            // lossless for the comparison.
            let totals = RunTotals {
                duration: SimDuration::from_secs_f64(streamed.duration_s),
                generated: streamed.generated,
                attempts: streamed.attempts,
                attempts_unacked: streamed.attempts_unacked,
                duplicates: streamed.duplicates,
                snr_sum: streamed.mean_snr_db * streamed.attempts as f64,
                rssi_sum: streamed.mean_rssi_dbm * streamed.attempts as f64,
                busy: SimDuration::from_secs_f64(streamed.utilization * streamed.duration_s),
                energy: streamed.energy,
                payload_bits: outcome.config.payload.bits(),
                offered_bps: streamed.offered_bps,
                fallback_snr_db: streamed.mean_snr_db,
                fallback_rssi_dbm: streamed.mean_rssi_dbm,
            };
            let batch = crate::metrics::summarise_records(&records, &totals);

            // Fields derived purely from records must agree bit-for-bit.
            assert_eq!(batch.queue_dropped, streamed.queue_dropped);
            assert_eq!(batch.radio_lost, streamed.radio_lost);
            assert_eq!(batch.delivered, streamed.delivered);
            assert_eq!(batch.acked, streamed.acked);
            assert_eq!(batch.residual, streamed.residual);
            assert_eq!(batch.mean_tries.to_bits(), streamed.mean_tries.to_bits());
            assert_eq!(
                batch.delay_mean_ms.to_bits(),
                streamed.delay_mean_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p50_ms.to_bits(),
                streamed.delay_p50_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p95_ms.to_bits(),
                streamed.delay_p95_ms.to_bits()
            );
            assert_eq!(
                batch.delay_p99_ms.to_bits(),
                streamed.delay_p99_ms.to_bits()
            );
            assert_eq!(
                batch.service_mean_ms.to_bits(),
                streamed.service_mean_ms.to_bits()
            );
            assert_eq!(
                batch.queueing_mean_ms.to_bits(),
                streamed.queueing_mean_ms.to_bits()
            );
            assert_eq!(batch.goodput_bps.to_bits(), streamed.goodput_bps.to_bits());
        }
    }

    #[test]
    fn sink_run_equals_record_run() {
        // Streaming through an external VecSink must see exactly the
        // records (and metrics) the record_packets path produces.
        let recorded = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200)).run();

        let mut sink = VecSink::new();
        let mut options = SimOptions::quick(200);
        options.record_packets = false;
        let streamed = LinkSimulation::new(cfg(23, 35.0), options).run_with_sink(&mut sink);

        assert_eq!(recorded.metrics(), streamed.metrics());
        assert!(streamed.records.is_none());
        assert_eq!(recorded.records.unwrap(), sink.into_records());
    }

    #[test]
    fn budget_table_run_is_bit_identical_to_direct_run() {
        let table = Arc::new(LinkBudgetTable::new(ChannelConfig::paper_hallway()));
        for (power, dist) in [(23u8, 35.0), (3, 35.0), (31, 10.0)] {
            let direct = LinkSimulation::new(cfg(power, dist), SimOptions::quick(200)).run();
            let memoized = LinkSimulation::new(cfg(power, dist), SimOptions::quick(200))
                .with_budget_table(Arc::clone(&table))
                .run();
            assert_eq!(direct.metrics(), memoized.metrics());
            assert_eq!(direct.records, memoized.records);
        }
        assert_eq!(table.len(), 3, "one memo entry per operating point");
    }

    #[test]
    fn mismatched_budget_table_is_ignored_not_wrong() {
        // A table built for a different environment must not leak its
        // budgets into the run.
        let table = Arc::new(LinkBudgetTable::new(ChannelConfig::ideal()));
        let direct = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150)).run();
        let guarded = LinkSimulation::new(cfg(23, 35.0), SimOptions::quick(150))
            .with_budget_table(Arc::clone(&table))
            .run();
        assert_eq!(direct.metrics(), guarded.metrics());
        assert!(table.is_empty(), "mismatched table must stay untouched");
    }

    #[test]
    fn null_sink_run_matches_recording_run_metrics() {
        let with_records = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(150)).run();
        let mut options = SimOptions::quick(150);
        options.record_packets = false;
        let without = LinkSimulation::new(cfg(31, 10.0), options).run();
        assert_eq!(with_records.metrics(), without.metrics());
    }

    #[test]
    fn outcome_carries_exec_stats() {
        let outcome = LinkSimulation::new(cfg(31, 10.0), SimOptions::quick(100)).run();
        assert!(outcome.exec.events_handled > 0);
        assert!(outcome.exec.events_scheduled >= outcome.exec.events_handled);
        assert!(outcome.exec.queue_high_water >= 1);
        assert!(outcome.exec.sim_wall_ratio() > 0.0);
    }

    #[test]
    fn utilization_grows_with_load() {
        let slow = StackConfig::builder()
            .packet_interval_ms(500)
            .distance_m(20.0)
            .build()
            .unwrap();
        let fast = StackConfig::builder()
            .packet_interval_ms(20)
            .distance_m(20.0)
            .build()
            .unwrap();
        let u_slow = LinkSimulation::new(slow, SimOptions::quick(200)).run();
        let u_fast = LinkSimulation::new(fast, SimOptions::quick(200)).run();
        assert!(u_fast.metrics().utilization > u_slow.metrics().utilization);
    }
}
