//! # wsn-link-sim
//!
//! The discrete-event simulation of one IEEE 802.15.4 sender→receiver link
//! under a full seven-parameter stack configuration — the synthetic
//! replacement for the paper's TelosB hallway testbed.
//!
//! The sender pipeline is: application traffic source ([`traffic`]) →
//! `Qmax`-bounded transmit queue → CSMA-CA MAC transaction (from
//! `wsn-mac`) → synthetic channel (from `wsn-radio`) → receiver with
//! software ACKs. Each run yields per-packet [`record`]s with the same
//! metadata the paper's public dataset logs, plus the per-configuration
//! summary [`metrics`] the paper's figures are built from.
//!
//! The [`network`] module generalizes the same per-link machinery to N
//! links on one shared channel (real carrier sense, SINR capture, hidden
//! terminals); a one-link scenario is bit-for-bit identical to
//! [`simulation::LinkSimulation`].
//!
//! ```
//! use wsn_link_sim::prelude::*;
//! use wsn_params::prelude::*;
//!
//! // The paper's weak 35 m link at minimum studied power:
//! let cfg = StackConfig::builder()
//!     .distance_m(35.0)
//!     .power_level(3)
//!     .payload_bytes(110)
//!     .max_tries(3)
//!     .build()?;
//! let m = LinkSimulation::new(cfg, SimOptions::quick(300)).run();
//! // The grey zone costs retransmissions:
//! assert!(m.metrics().mean_tries > 1.0);
//! # Ok::<(), wsn_params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod catalog;
pub mod fast;
mod link;
pub mod metrics;
pub mod network;
pub mod record;
pub mod simulation;
pub mod sink;
pub mod traffic;

/// Convenient glob-import of the link simulator.
pub mod prelude {
    pub use crate::analysis::{littles_law, DeliverySequence};
    pub use crate::catalog::{all_scenarios, all_timelines, build_scenario, build_timeline};
    pub use crate::fast::{fast_seed, FastLinkSimulation, FastOutcome};
    pub use crate::metrics::{LinkMetrics, MetricsAccumulator, RunTotals};
    pub use crate::network::{
        scenario_from_interference, AirStats, EpochLink, EpochSnapshot, LinkOutcome, NetOptions,
        NetworkOutcome, NetworkSimulation, TopoStats,
    };
    pub use crate::record::{PacketFate, PacketRecord};
    pub use crate::simulation::{LinkSimulation, SimOptions, SimOutcome};
    pub use crate::sink::{FnSink, NullSink, PacketSink, VecSink};
    pub use crate::traffic::TrafficModel;
}
