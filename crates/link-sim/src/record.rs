//! Per-packet records, mirroring the metadata schema of the paper's public
//! dataset (RSSI, LQI, actual transmission count, queue size, timestamps).

use serde::{Deserialize, Serialize};

use wsn_sim_engine::time::{SimDuration, SimTime};

/// How a packet's journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketFate {
    /// Dropped at the transmit queue (buffer overflow) — `PLR_queue`.
    QueueDropped,
    /// All `NmaxTries` transmissions failed to reach the receiver — part of
    /// `PLR_radio`.
    RadioLost,
    /// At least one copy reached the receiver.
    Delivered,
}

/// The lifecycle record of one application packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Application sequence number (0-based).
    pub seq: u64,
    /// When the application generated the packet.
    pub t_arrival: SimTime,
    /// When the MAC started serving it (`None` for queue drops).
    pub t_service_start: Option<SimTime>,
    /// When the MAC transaction terminated (`None` for queue drops).
    pub t_done: Option<SimTime>,
    /// Transmissions used (0 for queue drops).
    pub tries: u8,
    /// Queue occupancy observed at arrival (after admission).
    pub queue_depth: usize,
    /// Final outcome.
    pub fate: PacketFate,
    /// Whether the sender saw an ACK (can be `false` while `fate` is
    /// `Delivered` if only the ACK was lost).
    pub sender_acked: bool,
    /// RSSI of the last transmission attempt, dBm.
    pub last_rssi_dbm: f64,
    /// SNR of the last transmission attempt, dB.
    pub last_snr_db: f64,
    /// Synthesised LQI of the last attempt.
    pub last_lqi: u8,
}

impl PacketRecord {
    /// End-to-end delay (queueing + service); `None` for queue drops.
    pub fn delay(&self) -> Option<SimDuration> {
        self.t_done.map(|done| done - self.t_arrival)
    }

    /// MAC service time; `None` for queue drops.
    pub fn service_time(&self) -> Option<SimDuration> {
        match (self.t_service_start, self.t_done) {
            (Some(start), Some(done)) => Some(done - start),
            _ => None,
        }
    }

    /// Queueing (waiting) time before service; `None` for queue drops.
    pub fn queueing_time(&self) -> Option<SimDuration> {
        self.t_service_start.map(|start| start - self.t_arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PacketRecord {
        PacketRecord {
            seq: 7,
            t_arrival: SimTime::from_millis(100),
            t_service_start: Some(SimTime::from_millis(112)),
            t_done: Some(SimTime::from_millis(140)),
            tries: 2,
            queue_depth: 3,
            fate: PacketFate::Delivered,
            sender_acked: true,
            last_rssi_dbm: -80.5,
            last_snr_db: 14.5,
            last_lqi: 93,
        }
    }

    #[test]
    fn delay_decomposes_into_queueing_plus_service() {
        let r = record();
        assert_eq!(r.delay().unwrap().as_millis(), 40);
        assert_eq!(r.queueing_time().unwrap().as_millis(), 12);
        assert_eq!(r.service_time().unwrap().as_millis(), 28);
        assert_eq!(
            r.delay().unwrap(),
            r.queueing_time().unwrap() + r.service_time().unwrap()
        );
    }

    #[test]
    fn queue_drop_has_no_timings() {
        let r = PacketRecord {
            t_service_start: None,
            t_done: None,
            tries: 0,
            fate: PacketFate::QueueDropped,
            ..record()
        };
        assert!(r.delay().is_none());
        assert!(r.service_time().is_none());
        assert!(r.queueing_time().is_none());
    }
}
