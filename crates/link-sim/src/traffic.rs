//! Application-layer traffic generation.
//!
//! The paper's experiments drive the link with a **periodic** source at
//! inter-arrival time `Tpkt` (Table I). Two more sources are provided:
//! a Poisson process with the same mean (for the arrival-model ablation)
//! and a **saturating** source that always keeps the transmit queue full —
//! the "packets sent one after another" regime under which the paper
//! defines maximum goodput (Sec. V-B).

use rand::Rng;
use serde::{Deserialize, Serialize};

use wsn_sim_engine::rng::exponential;
use wsn_sim_engine::time::SimDuration;

/// The arrival process of the application traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TrafficModel {
    /// Fixed inter-arrival time (the paper's workload): one packet every
    /// `Tpkt`.
    #[default]
    Periodic,
    /// Poisson arrivals with mean inter-arrival `Tpkt`.
    Poisson,
    /// Backlogged source: a new packet is available whenever the queue has
    /// room (bulk transfer; realises the max-goodput regime).
    Saturating,
}

impl TrafficModel {
    /// Draws the gap until the next arrival for interval-based sources;
    /// `None` for [`TrafficModel::Saturating`] (arrivals are queue-driven).
    pub fn next_gap<R: Rng + ?Sized>(
        &self,
        interval: SimDuration,
        rng: &mut R,
    ) -> Option<SimDuration> {
        match self {
            TrafficModel::Periodic => Some(interval),
            TrafficModel::Poisson => {
                let gap_s = exponential(rng, interval.as_secs_f64());
                Some(SimDuration::from_secs_f64(gap_s))
            }
            TrafficModel::Saturating => None,
        }
    }

    /// True for the backlogged source.
    pub fn is_saturating(&self) -> bool {
        matches!(self, TrafficModel::Saturating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn periodic_gap_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let gap = TrafficModel::Periodic
            .next_gap(SimDuration::from_millis(30), &mut rng)
            .unwrap();
        assert_eq!(gap.as_millis(), 30);
    }

    #[test]
    fn poisson_gap_mean_matches_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean_us: f64 = (0..n)
            .map(|_| {
                TrafficModel::Poisson
                    .next_gap(SimDuration::from_millis(30), &mut rng)
                    .unwrap()
                    .as_micros() as f64
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean_us - 30_000.0).abs() < 500.0, "mean={mean_us}");
    }

    #[test]
    fn saturating_has_no_interval_gap() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(TrafficModel::Saturating
            .next_gap(SimDuration::from_millis(30), &mut rng)
            .is_none());
        assert!(TrafficModel::Saturating.is_saturating());
        assert!(!TrafficModel::Periodic.is_saturating());
    }
}
