//! The fast-mode link engine: a coalesced per-packet simulator that is
//! *statistically equivalent* to the golden event-driven
//! [`LinkSimulation`](crate::simulation::LinkSimulation).
//!
//! # What "fast" changes — and what it must not
//!
//! The golden engine replays roughly six scheduler events per transmission
//! attempt (backoff elapse, CCA, turnaround, frame airtime, ACK wait,
//! retry gap), each a heap push/pop through the executor. The fast engine
//! samples the **same stochastic process** — identical backoff law,
//! identical CCA geometric loop, identical per-attempt channel
//! observation, delivery and ACK draws from the paper's Eq. 3/7/8 chain —
//! but composes each packet's service time arithmetically in one pass, so
//! a packet costs a handful of RNG draws instead of a handful of events.
//! Queueing is resolved analytically: with one server and FIFO service,
//! a packet's service start is `max(arrival, previous departure)`, and
//! queue occupancy at any arrival equals the number of earlier admissions
//! whose departure lies in the future.
//!
//! What it must *not* change is any distribution the metrics fold sees:
//! per-attempt success probabilities, tries-to-completion, service and
//! sojourn times, drop depths, duplicate counts and energy per state all
//! follow the same law as the golden engine. Draw *order* and draw *count*
//! differ (fast uses [`FastRng`]/Ziggurat, golden uses `StdRng`/polar
//! Box–Muller), so runs are never bit-identical across engines — the
//! tier-2 distributional suite (`tests/distributional.rs` at the workspace
//! root) holds the two engines to statistical agreement instead.
//!
//! # Determinism
//!
//! Fast runs are bit-reproducible *within* the fast engine: the RNG
//! streams are derived from [`fast_seed`], a splitmix64 hash of the
//! campaign seed, the engine tag and the canonical bits of the
//! configuration itself. Seeding from the *configuration* (rather than a
//! grid index) means a configuration's fast result is independent of where
//! it sits in a campaign grid — reordering or subsetting a grid never
//! changes a config's numbers.

use std::collections::VecDeque;
use std::sync::Arc;

use wsn_mac::timing;
use wsn_params::config::StackConfig;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::Channel;
use wsn_radio::energy::EnergyMeter;
use wsn_sim_engine::mode::EngineMode;
use wsn_sim_engine::rng::{splitmix64, FastRng};
use wsn_sim_engine::time::{SimDuration, SimTime};

use crate::metrics::{LinkMetrics, MetricsAccumulator, RunTotals};
use crate::record::{PacketFate, PacketRecord};
use crate::simulation::SimOptions;

use rand::Rng;

/// The CCA retry budget, mirroring
/// `wsn_mac::transaction::MAX_CCA_RETRIES`: after this many consecutive
/// busy assessments the MAC transmits anyway.
const MAX_CCA_RETRIES: u32 = 16;

/// Derives the fast engine's root seed for one `(config, seed)` pair.
///
/// The hash chains splitmix64 over the campaign seed, the
/// [`EngineMode::Fast`] tag and the canonical bits of every stack
/// parameter. Two consequences, both load-bearing:
///
/// - fast results are a pure function of `(config, seed)` — independent of
///   grid position, thread count or batch order;
/// - golden and fast streams for the same `(config, seed)` are unrelated,
///   so nobody can mistake cross-engine agreement for shared randomness.
pub fn fast_seed(config: &StackConfig, seed: u64) -> u64 {
    let mut z = splitmix64(seed ^ splitmix64(EngineMode::Fast.seed_tag()));
    for word in [
        config.distance.meters().to_bits(),
        config.power.level() as u64,
        config.max_tries.get() as u64,
        config.retry_delay.millis() as u64,
        config.queue_cap.get() as u64,
        config.packet_interval.millis() as u64,
        config.payload.bytes() as u64,
    ] {
        z = splitmix64(z ^ splitmix64(word));
    }
    z
}

/// Result of one fast-mode run.
#[derive(Debug, Clone)]
pub struct FastOutcome {
    /// The simulated configuration.
    pub config: StackConfig,
    metrics: LinkMetrics,
    /// Per-packet records if requested in [`SimOptions::record_packets`].
    pub records: Option<Vec<PacketRecord>>,
    /// Final simulation clock (last arrival or departure, or the horizon).
    pub end_time: SimTime,
}

impl FastOutcome {
    /// The summary metrics of the run.
    pub fn metrics(&self) -> &LinkMetrics {
        &self.metrics
    }

    /// Consumes the outcome, returning the metrics.
    pub fn into_metrics(self) -> LinkMetrics {
        self.metrics
    }
}

/// A configured, runnable fast-mode simulation of one link.
///
/// ```
/// use wsn_link_sim::fast::FastLinkSimulation;
/// use wsn_link_sim::prelude::*;
/// use wsn_params::prelude::*;
///
/// let cfg = StackConfig::builder()
///     .distance_m(20.0)
///     .power_level(27)
///     .payload_bytes(50)
///     .build()?;
/// let m = FastLinkSimulation::new(cfg, SimOptions::quick(200)).run();
/// assert_eq!(m.metrics().generated, 200);
/// assert!(m.metrics().conserves_packets());
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastLinkSimulation {
    config: StackConfig,
    options: SimOptions,
    budgets: Option<Arc<LinkBudgetTable>>,
}

impl FastLinkSimulation {
    /// Creates a fast simulation of `config` under `options`.
    pub fn new(config: StackConfig, options: SimOptions) -> Self {
        FastLinkSimulation {
            config,
            options,
            budgets: None,
        }
    }

    /// Attaches a campaign-shared [`LinkBudgetTable`], consulted only when
    /// its environment matches [`SimOptions::channel`] (same contract as
    /// the golden path).
    pub fn with_budget_table(mut self, table: Arc<LinkBudgetTable>) -> Self {
        self.budgets = Some(table);
        self
    }

    /// Runs the simulation to completion and summarises it.
    pub fn run(self) -> FastOutcome {
        let channel = match &self.budgets {
            Some(table) if *table.config() == self.options.channel => {
                table.channel(self.config.power, self.config.distance)
            }
            _ => Channel::new(
                self.options.channel,
                self.config.power,
                self.config.distance,
            ),
        };
        let root = fast_seed(&self.config, self.options.seed);
        let run = FastRun::new(self.config, channel, &self.options, root);
        run.execute(self.config, &self.options)
    }
}

/// Outcome of serving one packet, composed arithmetically.
struct Served {
    /// Total MAC service time, µs.
    service_us: u64,
    /// Transmissions used.
    tries: u8,
    /// Sender saw an ACK.
    acked: bool,
    /// Copies the receiver accepted (≥ 2 means ACK-loss duplicates).
    copies: u32,
    /// Channel observation of the last attempt.
    last_rssi_dbm: f64,
    last_snr_db: f64,
    last_lqi: u8,
}

/// Mutable state of one fast run: channel, five RNG streams (same roles as
/// the golden engine's `StreamId`s) and the running counters the metrics
/// fold needs.
struct FastRun {
    cfg: StackConfig,
    channel: Channel,
    rng_fading: FastRng,
    rng_noise: FastRng,
    rng_delivery: FastRng,
    rng_backoff: FastRng,
    rng_traffic: FastRng,
    cca_prob: f64,
    // Deterministic per-packet timing, µs.
    spi_us: u64,
    frame_us: u64,
    turnaround_us: u64,
    ack_rx_us: u64,
    ack_timeout_us: u64,
    retry_us: u64,
    max_tries: u8,
    // Running counters, mirroring `LinkCore`.
    acc: MetricsAccumulator,
    attempts: u64,
    attempts_unacked: u64,
    snr_sum: f64,
    rssi_sum: f64,
    duplicates: u64,
    generated: u64,
    busy_us: u64,
    tx_us: u64,
    rx_us: u64,
    idle_us: u64,
    records: Option<Vec<PacketRecord>>,
}

impl FastRun {
    fn new(cfg: StackConfig, channel: Channel, options: &SimOptions, root: u64) -> Self {
        // Five independent streams, one per golden `StreamId` role, each
        // its own splitmix64 lane off the root seed.
        let mut lane = root;
        let mut next = || {
            lane = splitmix64(lane);
            FastRng::new(lane)
        };
        let cca_prob = channel.cca_busy_probability();
        FastRun {
            rng_fading: next(),
            rng_noise: next(),
            rng_delivery: next(),
            rng_backoff: next(),
            rng_traffic: next(),
            channel,
            cca_prob,
            spi_us: timing::spi_load(cfg.payload).as_micros(),
            frame_us: timing::frame_time(cfg.payload).as_micros(),
            turnaround_us: timing::TURNAROUND.as_micros(),
            ack_rx_us: timing::ACK_RECEIVE.as_micros(),
            ack_timeout_us: timing::ACK_TIMEOUT.as_micros(),
            retry_us: cfg.retry_delay.millis() as u64 * 1_000,
            max_tries: cfg.max_tries.get(),
            acc: MetricsAccumulator::with_packet_hint(options.packets),
            attempts: 0,
            attempts_unacked: 0,
            snr_sum: 0.0,
            rssi_sum: 0.0,
            duplicates: 0,
            generated: 0,
            busy_us: 0,
            tx_us: 0,
            rx_us: 0,
            idle_us: 0,
            records: options.record_packets.then(Vec::new),
            cfg,
        }
    }

    /// Serves one packet starting at absolute time `start_us`, replaying
    /// the CSMA-CA transaction's timing and draw structure arithmetically.
    /// Mirrors `wsn_mac::transaction::Transaction` phase by phase.
    fn serve(&mut self, start_us: u64) -> Served {
        let mut t: u64 = 0;
        let mut tries: u8 = 0;
        let mut copies: u32 = 0;
        let mut acked = false;
        // Assigned on every attempt; the loop body runs at least once.
        let mut last_rssi_dbm;
        let mut last_snr_db;
        let mut last_lqi;

        // SPI frame load: first attempt only, radio idle.
        self.idle_us += self.spi_us;
        t += self.spi_us;

        loop {
            // Initial (non-congestion) backoff, radio listening.
            let backoff = timing::draw_initial_backoff(&mut self.rng_backoff).as_micros();
            self.rx_us += backoff;
            t += backoff;

            // CCA: geometric busy loop with the transaction's retry budget.
            // A clear assessment costs no time; each busy one costs the
            // 128 µs assessment slot plus a congestion backoff. The golden
            // path draws only when the busy probability is non-zero, so the
            // fast path must too (draw-count parity per attempt).
            if self.cca_prob > 0.0 {
                let mut cca_retries = 0u32;
                while cca_retries < MAX_CCA_RETRIES && self.rng_backoff.gen::<f64>() < self.cca_prob
                {
                    cca_retries += 1;
                    self.rx_us += 128;
                    t += 128;
                    let congestion =
                        timing::draw_congestion_backoff(&mut self.rng_backoff).as_micros();
                    self.rx_us += congestion;
                    t += congestion;
                }
            }

            // RX→TX turnaround, then the frame airtime.
            self.rx_us += self.turnaround_us;
            t += self.turnaround_us;
            self.tx_us += self.frame_us;
            t += self.frame_us;

            // Channel observation at the moment the frame lands (golden
            // resolves motion at the same point: end of the frame wait).
            // The isolated medium contributes no co-channel interference.
            let obs = self
                .channel
                .observe(&mut self.rng_fading, &mut self.rng_noise);
            let delivered =
                self.channel
                    .data_success(&obs, self.cfg.payload, &mut self.rng_delivery);
            let ack_ok = delivered && self.channel.ack_success(&obs, &mut self.rng_delivery);
            tries += 1;
            self.attempts += 1;
            if !ack_ok {
                self.attempts_unacked += 1;
            }
            self.snr_sum += obs.snr_db;
            self.rssi_sum += obs.rssi_dbm;
            if delivered {
                copies += 1;
            }
            last_rssi_dbm = obs.rssi_dbm;
            last_snr_db = obs.snr_db;
            last_lqi = obs.lqi;

            if ack_ok {
                // Receive the ACK, then the transaction is delivered.
                self.rx_us += self.ack_rx_us;
                t += self.ack_rx_us;
                acked = true;
                break;
            }
            // No ACK: listen out the full timeout.
            self.rx_us += self.ack_timeout_us;
            t += self.ack_timeout_us;
            if tries >= self.max_tries {
                break;
            }
            // Retry delay with the radio idle, then back off again.
            self.idle_us += self.retry_us;
            t += self.retry_us;
        }
        let _ = start_us; // Reserved for motion profiles (see `execute`).
        Served {
            service_us: t,
            tries,
            acked,
            copies,
            last_rssi_dbm,
            last_snr_db,
            last_lqi,
        }
    }

    /// Re-points the channel for a moving sender at absolute time `t_us`.
    /// Matches the golden engine's retarget point: the moment a frame's
    /// airtime completes.
    fn retarget_at(&mut self, t_us: u64, options: &SimOptions) {
        if !options.trajectory.is_stationary() {
            let here = options
                .trajectory
                .distance_at(t_us as f64 * 1e-6, self.cfg.distance);
            self.channel.retarget(self.cfg.power, here);
        }
    }

    fn emit(&mut self, record: PacketRecord) {
        self.acc.observe(&record);
        if let Some(records) = self.records.as_mut() {
            records.push(record);
        }
    }

    fn emit_drop(&mut self, seq: u64, t_arrival_us: u64, depth: usize) {
        self.emit(PacketRecord {
            seq,
            t_arrival: SimTime::from_micros(t_arrival_us),
            t_service_start: None,
            t_done: None,
            tries: 0,
            queue_depth: depth,
            fate: PacketFate::QueueDropped,
            sender_acked: false,
            last_rssi_dbm: f64::NAN,
            last_snr_db: f64::NAN,
            last_lqi: 0,
        });
    }

    /// Serves an admitted packet and folds its record; returns the
    /// departure time, µs.
    fn serve_and_emit(
        &mut self,
        seq: u64,
        t_arrival_us: u64,
        start_us: u64,
        depth: usize,
        options: &SimOptions,
    ) -> u64 {
        // Motion: re-point the channel roughly where the service happens.
        // (Attempt-exact retargeting would need the service composed
        // incrementally; the first-frame point is within one service time
        // of golden's, far inside the trajectory's time scale.)
        self.retarget_at(start_us, options);
        let served = self.serve(start_us);
        let done_us = start_us + served.service_us;
        self.busy_us += served.service_us;
        self.duplicates += served.copies.saturating_sub(1) as u64;
        let fate = if served.copies > 0 {
            PacketFate::Delivered
        } else {
            PacketFate::RadioLost
        };
        self.emit(PacketRecord {
            seq,
            t_arrival: SimTime::from_micros(t_arrival_us),
            t_service_start: Some(SimTime::from_micros(start_us)),
            t_done: Some(SimTime::from_micros(done_us)),
            tries: served.tries,
            queue_depth: depth,
            fate,
            sender_acked: served.acked,
            last_rssi_dbm: served.last_rssi_dbm,
            last_snr_db: served.last_snr_db,
            last_lqi: served.last_lqi,
        });
        done_us
    }

    /// Runs the arrival/service loop and closes the books.
    fn execute(mut self, config: StackConfig, options: &SimOptions) -> FastOutcome {
        let horizon_us = options.horizon.map(|h| h.as_micros());
        let cap = self.cfg.queue_cap.get() as usize;
        let interval = SimDuration::from_millis(self.cfg.packet_interval.millis() as u64);
        let budget = options.packets;
        // Departure times of admitted-but-not-yet-departed packets; its
        // length is the queue occupancy (in-service packet included, as in
        // the golden queue where the served head keeps its `Qmax` slot).
        let mut departures: VecDeque<u64> = VecDeque::with_capacity(cap.min(64));
        let mut prev_dep_us: u64 = 0;
        let mut end_us: u64 = 0;
        let mut truncated = false;

        if options.traffic.is_saturating() {
            // The saturating source fills the queue at t = 0 and tops it up
            // on every completion, so service is back-to-back: each packet
            // starts when its predecessor departs. Admission depths follow
            // the golden pattern: 1..=cap for the initial fill, then `cap`
            // for every top-up (the queue is re-filled the instant a slot
            // frees).
            let mut admitted: u64 = 0;
            let mut waiting: VecDeque<(u64, u64, usize)> = VecDeque::new();
            while admitted < budget && waiting.len() < cap {
                self.generated += 1;
                waiting.push_back((admitted, 0, waiting.len() + 1));
                admitted += 1;
            }
            while let Some((seq, t_arr, depth)) = waiting.pop_front() {
                let start = t_arr.max(prev_dep_us);
                if let Some(h) = horizon_us {
                    if start >= h {
                        truncated = true;
                        break;
                    }
                }
                let dep = self.serve_and_emit(seq, t_arr, start, depth, options);
                prev_dep_us = dep;
                end_us = end_us.max(dep);
                if admitted < budget {
                    self.generated += 1;
                    waiting.push_back((admitted, dep, waiting.len() + 1));
                    admitted += 1;
                }
            }
        } else {
            let mut t_arrival_us: u64 = 0;
            for seq in 0..budget {
                if let Some(h) = horizon_us {
                    if t_arrival_us > h {
                        truncated = true;
                        break;
                    }
                }
                let t = t_arrival_us;
                end_us = end_us.max(t);
                // Packets that have already departed free their slots.
                while departures.front().is_some_and(|&d| d <= t) {
                    departures.pop_front();
                }
                self.generated += 1;
                if departures.len() >= cap {
                    self.emit_drop(seq, t, departures.len());
                } else {
                    let depth = departures.len() + 1;
                    let start = t.max(prev_dep_us);
                    if let Some(h) = horizon_us {
                        if start >= h {
                            // In-flight at the horizon: residual, like the
                            // golden run's unfinished transaction.
                            truncated = true;
                            continue;
                        }
                    }
                    let dep = self.serve_and_emit(seq, t, start, depth, options);
                    departures.push_back(dep);
                    prev_dep_us = dep;
                    end_us = end_us.max(dep);
                }
                if seq + 1 < budget {
                    let gap = options
                        .traffic
                        .next_gap(interval, &mut self.rng_traffic)
                        .expect("interval-based traffic always yields a gap");
                    t_arrival_us = t + gap.as_micros();
                }
            }
        }

        let duration_us = match horizon_us {
            Some(h) if truncated || end_us > h => h,
            _ => end_us,
        };
        let total = SimDuration::from_micros(duration_us);

        // Energy: one batched add per radio state, then the idle residual —
        // the same accounting identity `LinkCore::finalize` enforces.
        let mut energy = EnergyMeter::new();
        energy.add_tx(self.cfg.power, SimDuration::from_micros(self.tx_us));
        energy.add_rx(SimDuration::from_micros(self.rx_us));
        energy.add_idle(SimDuration::from_micros(self.idle_us));
        let accounted = energy.accounted_time();
        if total > accounted {
            energy.add_idle(total - accounted);
        }

        let totals = RunTotals {
            duration: total,
            generated: self.generated,
            attempts: self.attempts,
            attempts_unacked: self.attempts_unacked,
            duplicates: self.duplicates,
            snr_sum: self.snr_sum,
            rssi_sum: self.rssi_sum,
            busy: SimDuration::from_micros(self.busy_us),
            energy: energy.breakdown(),
            payload_bits: self.cfg.payload.bits(),
            offered_bps: self.cfg.offered_load_bps(),
            fallback_snr_db: self.channel.mean_snr_db(),
            fallback_rssi_dbm: self.channel.mean_rssi_dbm(),
        };
        let metrics = self.acc.finish(&totals);
        FastOutcome {
            config,
            metrics,
            records: self.records,
            end_time: SimTime::from_micros(duration_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;
    use wsn_radio::channel::ChannelConfig;

    fn cfg(power: u8, dist: f64) -> StackConfig {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(50)
            .build()
            .unwrap()
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let a = FastLinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200)).run();
        let b = FastLinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200)).run();
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FastLinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200)).run();
        let b = FastLinkSimulation::new(cfg(23, 35.0), SimOptions::quick(200).with_seed(99)).run();
        assert_ne!(a.metrics().goodput_bps, b.metrics().goodput_bps);
    }

    #[test]
    fn conserves_packets_across_link_qualities() {
        for (power, dist) in [(31u8, 10.0), (23, 35.0), (3, 35.0)] {
            let m = FastLinkSimulation::new(cfg(power, dist), SimOptions::quick(300)).run();
            assert_eq!(m.metrics().generated, 300);
            assert!(m.metrics().conserves_packets());
        }
    }

    #[test]
    fn good_link_delivers_nearly_everything() {
        let m = FastLinkSimulation::new(cfg(31, 10.0), SimOptions::quick(300)).run();
        assert!(
            m.metrics().plr_total() < 0.02,
            "plr={}",
            m.metrics().plr_total()
        );
        assert!(m.metrics().goodput_bps > 0.9 * m.metrics().offered_bps);
    }

    #[test]
    fn weak_link_loses_packets_over_radio() {
        let m = FastLinkSimulation::new(cfg(3, 35.0), SimOptions::quick(300)).run();
        assert!(
            m.metrics().plr_radio > 0.01,
            "plr_radio={}",
            m.metrics().plr_radio
        );
        assert!(
            m.metrics().mean_tries > 1.05,
            "tries={}",
            m.metrics().mean_tries
        );
    }

    #[test]
    fn fast_seed_is_config_dependent_and_stable() {
        let a = fast_seed(&cfg(23, 35.0), 1);
        assert_eq!(a, fast_seed(&cfg(23, 35.0), 1), "same inputs, same seed");
        assert_ne!(a, fast_seed(&cfg(23, 35.0), 2), "seed must matter");
        assert_ne!(a, fast_seed(&cfg(24, 35.0), 1), "config must matter");
        assert_ne!(a, fast_seed(&cfg(23, 20.0), 1), "distance must matter");
    }

    #[test]
    fn results_are_independent_of_any_grid_index() {
        // The fast engine seeds from (config, seed) only: the same config
        // simulated "at another position" (fresh object, same values)
        // yields identical numbers.
        let options = SimOptions::quick(150);
        let a = FastLinkSimulation::new(cfg(11, 20.0), options.clone()).run();
        let b = FastLinkSimulation::new(cfg(11, 20.0), options).run();
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn budget_table_run_is_bit_identical_to_direct_run() {
        let table = Arc::new(LinkBudgetTable::new(ChannelConfig::paper_hallway()));
        for (power, dist) in [(23u8, 35.0), (3, 35.0), (31, 10.0)] {
            let direct = FastLinkSimulation::new(cfg(power, dist), SimOptions::quick(200)).run();
            let memoized = FastLinkSimulation::new(cfg(power, dist), SimOptions::quick(200))
                .with_budget_table(Arc::clone(&table))
                .run();
            assert_eq!(direct.metrics(), memoized.metrics());
            assert_eq!(direct.records, memoized.records);
        }
        assert_eq!(table.len(), 3, "one memo entry per operating point");
    }

    #[test]
    fn saturating_traffic_keeps_link_busy() {
        let m = FastLinkSimulation::new(
            cfg(31, 10.0),
            SimOptions::quick(200).with_traffic(TrafficModel::Saturating),
        )
        .run();
        assert_eq!(m.metrics().generated, 200);
        assert!(m.metrics().conserves_packets());
        assert!(
            m.metrics().utilization > 0.95,
            "util={}",
            m.metrics().utilization
        );
    }

    #[test]
    fn poisson_traffic_runs_and_conserves() {
        let m = FastLinkSimulation::new(
            cfg(23, 35.0),
            SimOptions::quick(300).with_traffic(TrafficModel::Poisson),
        )
        .run();
        assert_eq!(m.metrics().generated, 300);
        assert!(m.metrics().conserves_packets());
    }

    #[test]
    fn queue_cap_one_drops_arrivals_during_service() {
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(3)
            .payload_bytes(110)
            .max_tries(8)
            .retry_delay_ms(30)
            .queue_cap(1)
            .packet_interval_ms(10)
            .build()
            .unwrap();
        let m = FastLinkSimulation::new(cfg, SimOptions::quick(300)).run();
        assert!(m.metrics().conserves_packets());
        assert!(
            m.metrics().plr_queue > 0.4,
            "plr_queue={}",
            m.metrics().plr_queue
        );
    }

    #[test]
    fn horizon_leaves_residual_packets() {
        let options = SimOptions {
            horizon: Some(SimDuration::from_millis(40)),
            ..SimOptions::quick(1000)
        };
        let m = FastLinkSimulation::new(cfg(23, 35.0), options).run();
        assert!(m.metrics().conserves_packets());
        assert!(m.metrics().generated < 1000);
        assert!(m.metrics().duration_s <= 0.040 + 1e-9);
    }

    #[test]
    fn records_match_aggregates() {
        let outcome = FastLinkSimulation::new(cfg(23, 35.0), SimOptions::quick(250)).run();
        let m = outcome.metrics().clone();
        let records = outcome.records.unwrap();
        let delivered = records
            .iter()
            .filter(|r| r.fate == PacketFate::Delivered)
            .count() as u64;
        assert_eq!(delivered, m.delivered);
        let tries: u64 = records.iter().map(|r| r.tries as u64).sum();
        assert_eq!(tries, m.attempts);
    }
}
