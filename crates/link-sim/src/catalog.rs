//! The built-in multi-link scenario catalog: the named shared-channel
//! topologies every front-end speaks — `repro scenario <id>`, the
//! `wsn-serve` query service's `scenario` op, and the experiment reports.
//!
//! The catalog lives here (rather than in the experiment harness, where it
//! started) so any consumer of the network simulator can resolve a
//! scenario id without pulling in report rendering; `wsn-experiments`
//! re-exports these functions for backwards compatibility.

use wsn_params::config::StackConfig;
use wsn_params::scenario::Scenario;
use wsn_params::timeline::{self, ScenarioTimeline};
use wsn_radio::channel::ChannelConfig;
use wsn_radio::interference::InterferenceModel;

use crate::network::scenario_from_interference;

fn link_config(power: u8, distance_m: f64, payload: u16) -> StackConfig {
    StackConfig::builder()
        .distance_m(distance_m)
        .power_level(power)
        .payload_bytes(payload)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants")
}

/// All builtin scenarios: `(id, description)` pairs.
pub fn all_scenarios() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "single",
            "one 35 m link — the N = 1 equivalence case (matches the single-link simulator bit-for-bit)",
        ),
        (
            "hidden-pair",
            "two senders 70 m apart, both receivers in the middle: CCA cannot see the rival, frames collide",
        ),
        (
            "exposed-pair",
            "the same two links side by side: senders carrier-sense each other and defer",
        ),
        (
            "parallel-4",
            "four 20 m links stacked 2 m apart — CCA-coupled contention without hidden terminals",
        ),
        (
            "interference",
            "a 20 m link plus a promoted in-network ZigBee interferer (10% duty) — the shared-channel form of the probabilistic model",
        ),
    ]
}

/// Builds a builtin scenario by id.
pub fn build_scenario(id: &str) -> Option<Scenario> {
    let contended = link_config(11, 35.0, 110);
    match id {
        "single" => Some(Scenario::single(contended)),
        "hidden-pair" => Some(Scenario::hidden_pair(contended)),
        "exposed-pair" => Some(Scenario::exposed_pair(contended)),
        "parallel-4" => {
            let c = link_config(31, 20.0, 50);
            Some(Scenario::parallel(&[c, c, c, c], 2.0))
        }
        "interference" => scenario_from_interference(
            link_config(31, 20.0, 110),
            &InterferenceModel::zigbee_neighbor(0.1),
            &ChannelConfig::paper_hallway(),
        ),
        _ => None,
    }
}

/// All builtin topology timelines: `(id, description)` pairs. Applied on
/// top of a scenario with `repro timeline <scenario> <timeline>` or the
/// serve `scenario` op's `timeline` field.
pub fn all_timelines() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "storm20",
            "failure storm: 20% of the links leave at t = 10 s and rejoin at t = 18 s (fixed seed)",
        ),
        (
            "waypoint",
            "random-waypoint mobility: every link pair wanders a 200 m square at 1.5 m/s, one Move per second for 30 s (fixed seed)",
        ),
    ]
}

/// Builds a builtin timeline by id, sized for `scenario`.
pub fn build_timeline(id: &str, scenario: &Scenario) -> Option<ScenarioTimeline> {
    match id {
        "storm20" => Some(timeline::failure_storm(
            scenario.len(),
            0.20,
            10.0,
            18.0,
            0x5702_0020,
        )),
        "waypoint" => Some(timeline::random_waypoint(
            scenario, 200.0, 1.5, 1.0, 30.0, 0x0A0_1234,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cataloged_id_builds() {
        for (id, _) in all_scenarios() {
            let scenario = build_scenario(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!scenario.is_empty(), "{id} has no links");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(build_scenario("nope").is_none());
    }

    #[test]
    fn every_cataloged_timeline_builds_and_validates() {
        let scenario = build_scenario("parallel-4").unwrap();
        for (id, _) in all_timelines() {
            let tl = build_timeline(id, &scenario).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!tl.is_empty(), "{id} has no events");
            tl.validate(scenario.len())
                .unwrap_or_else(|e| panic!("{id} invalid: {e}"));
            // Cataloged timelines are deterministic: same id, same digest.
            let again = build_timeline(id, &scenario).unwrap();
            assert_eq!(tl.digest(), again.digest(), "{id} must be reproducible");
        }
    }

    #[test]
    fn unknown_timeline_id_is_none() {
        let scenario = build_scenario("single").unwrap();
        assert!(build_timeline("nope", &scenario).is_none());
    }
}
