//! Trace analysis: link-dynamics statistics over per-packet records.
//!
//! The paper's Sec. III-A RSSI-variation observations imply that losses
//! are *bursty*, not independent — the property that makes single-packet
//! retransmission effective and long fades dangerous. This module
//! quantifies that from a [`PacketRecord`] trace with the standard
//! link-measurement statistics: PRR, windowed PRR, conditional delivery
//! probabilities, loss-burst run lengths, and the lag-k autocorrelation of
//! the delivery sequence.

use serde::{Deserialize, Serialize};

use crate::record::{PacketFate, PacketRecord};

/// The radio delivery sequence of a trace: `true` per delivered packet,
/// `false` per radio loss (queue drops never reached the radio and are
/// excluded).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliverySequence {
    outcomes: Vec<bool>,
}

impl DeliverySequence {
    /// Extracts the radio delivery sequence from a trace, in sequence
    /// order.
    pub fn from_records(records: &[PacketRecord]) -> Self {
        let mut ordered: Vec<&PacketRecord> = records
            .iter()
            .filter(|r| r.fate != PacketFate::QueueDropped)
            .collect();
        ordered.sort_by_key(|r| r.seq);
        DeliverySequence {
            outcomes: ordered
                .iter()
                .map(|r| r.fate == PacketFate::Delivered)
                .collect(),
        }
    }

    /// Builds a sequence directly from outcomes (for synthetic tests).
    pub fn from_outcomes(outcomes: Vec<bool>) -> Self {
        DeliverySequence { outcomes }
    }

    /// Number of packets in the sequence.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Packet reception ratio over the whole sequence.
    pub fn prr(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|&&x| x).count() as f64 / self.outcomes.len() as f64
    }

    /// PRR per non-overlapping window of `window` packets (the tail
    /// partial window is included).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn windowed_prr(&self, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be positive");
        self.outcomes
            .chunks(window)
            .map(|c| c.iter().filter(|&&x| x).count() as f64 / c.len() as f64)
            .collect()
    }

    /// `P(delivered | previous delivered)`; `None` without any such pair.
    pub fn prr_after_success(&self) -> Option<f64> {
        self.conditional(true)
    }

    /// `P(delivered | previous lost)`; `None` without any such pair.
    pub fn prr_after_loss(&self) -> Option<f64> {
        self.conditional(false)
    }

    fn conditional(&self, given_prev: bool) -> Option<f64> {
        let mut hits = 0usize;
        let mut total = 0usize;
        for pair in self.outcomes.windows(2) {
            if pair[0] == given_prev {
                total += 1;
                if pair[1] {
                    hits += 1;
                }
            }
        }
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Lengths of maximal consecutive-loss runs.
    pub fn loss_run_lengths(&self) -> Vec<usize> {
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &ok in &self.outcomes {
            if ok {
                if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        runs
    }

    /// Mean loss-burst length; 0.0 when no losses occurred.
    pub fn mean_loss_burst(&self) -> f64 {
        let runs = self.loss_run_lengths();
        if runs.is_empty() {
            0.0
        } else {
            runs.iter().sum::<usize>() as f64 / runs.len() as f64
        }
    }

    /// Lag-`k` autocorrelation of the delivery indicator; `None` when the
    /// sequence is too short or constant.
    pub fn autocorrelation(&self, lag: usize) -> Option<f64> {
        let n = self.outcomes.len();
        if lag == 0 || n <= lag + 1 {
            return None;
        }
        let xs: Vec<f64> = self.outcomes.iter().map(|&b| b as u8 as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        if var == 0.0 {
            return None;
        }
        let cov = (0..n - lag)
            .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
            .sum::<f64>()
            / (n - lag) as f64;
        Some(cov / var)
    }

    /// A simple burstiness score: how much likelier a loss is after a loss
    /// than unconditionally, `P(loss|loss) − P(loss)`. Zero for an
    /// independent (Bernoulli) loss process, positive for bursty links.
    pub fn burstiness(&self) -> Option<f64> {
        let p_loss = 1.0 - self.prr();
        self.prr_after_loss().map(|prr| (1.0 - prr) - p_loss)
    }
}

/// Little's-law check over a trace: compares the time-averaged number of
/// packets in the system (computed by sweeping arrival/departure events)
/// with `λ · W` (arrival rate × mean sojourn time of completed packets).
///
/// Returns `(L, lambda_times_w)`; for a stationary trace the two agree.
/// `None` when no packet completed or the trace spans zero time.
pub fn littles_law(records: &[PacketRecord]) -> Option<(f64, f64)> {
    // Only packets that entered the system (not queue-dropped) count.
    let entered: Vec<&PacketRecord> = records
        .iter()
        .filter(|r| r.fate != PacketFate::QueueDropped)
        .collect();
    if entered.is_empty() {
        return None;
    }
    let t_start = entered.iter().map(|r| r.t_arrival).min()?;
    let t_end = entered.iter().filter_map(|r| r.t_done).max()?;
    let span_s = (t_end - t_start).as_secs_f64();
    if span_s <= 0.0 {
        return None;
    }

    // L: integrate occupancy via +1 at arrival, −1 at completion.
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(entered.len() * 2);
    let mut completed = 0usize;
    let mut total_sojourn_s = 0.0;
    for r in &entered {
        events.push((r.t_arrival.as_micros(), 1));
        if let Some(done) = r.t_done {
            events.push((done.as_micros(), -1));
            completed += 1;
            total_sojourn_s += (done - r.t_arrival).as_secs_f64();
        }
    }
    if completed == 0 {
        return None;
    }
    events.sort_unstable();
    let mut occupancy = 0i64;
    let mut area = 0.0f64; // packet·seconds
    let mut prev_us = events[0].0;
    for (t_us, delta) in events {
        area += occupancy as f64 * (t_us - prev_us) as f64 / 1e6;
        occupancy += delta;
        prev_us = t_us;
    }
    let l = area / span_s;
    let lambda = completed as f64 / span_s;
    let w = total_sojourn_s / completed as f64;
    Some((l, lambda * w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(pattern: &str) -> DeliverySequence {
        DeliverySequence::from_outcomes(pattern.chars().map(|c| c == '1').collect())
    }

    #[test]
    fn prr_and_windows() {
        let s = seq("11101110");
        assert!((s.prr() - 0.75).abs() < 1e-12);
        let windows = s.windowed_prr(4);
        assert_eq!(windows, vec![0.75, 0.75]);
        assert_eq!(s.windowed_prr(3).len(), 3); // 3 + 3 + 2
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = seq("111").windowed_prr(0);
    }

    #[test]
    fn conditionals_on_alternating_sequence() {
        let s = seq("10101010");
        // After a success always a loss; after a loss always a success.
        assert_eq!(s.prr_after_success(), Some(0.0));
        assert_eq!(s.prr_after_loss(), Some(1.0));
        // Alternation is *anti*-bursty: negative burstiness.
        assert!(s.burstiness().unwrap() < 0.0);
        assert!(s.autocorrelation(1).unwrap() < -0.9);
    }

    #[test]
    fn bursty_sequence_statistics() {
        let s = seq("111000111000");
        assert_eq!(s.loss_run_lengths(), vec![3, 3]);
        assert!((s.mean_loss_burst() - 3.0).abs() < 1e-12);
        assert!(s.burstiness().unwrap() > 0.2);
        assert!(s.autocorrelation(1).unwrap() > 0.3);
    }

    #[test]
    fn perfect_sequence_degenerates_gracefully() {
        let s = seq("1111");
        assert_eq!(s.prr(), 1.0);
        assert!(s.loss_run_lengths().is_empty());
        assert_eq!(s.mean_loss_burst(), 0.0);
        assert_eq!(s.prr_after_loss(), None);
        assert_eq!(s.autocorrelation(1), None); // zero variance
        assert!(!s.is_empty());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn trailing_loss_run_is_counted() {
        let s = seq("11000");
        assert_eq!(s.loss_run_lengths(), vec![3]);
    }

    #[test]
    fn littles_law_on_a_hand_built_trace() {
        use wsn_sim_engine::time::SimTime;
        // Two packets: one in the system during [0, 10] ms, one during
        // [5, 15] ms. L = (5 + 5·2 + 5)·ms / 15 ms = 4/3;
        // λ = 2/15 ms⁻¹, W = 10 ms → λW = 4/3.
        let mk = |seq: u64, a_ms: u64, d_ms: u64| PacketRecord {
            seq,
            t_arrival: SimTime::from_millis(a_ms),
            t_service_start: Some(SimTime::from_millis(a_ms)),
            t_done: Some(SimTime::from_millis(d_ms)),
            tries: 1,
            queue_depth: 1,
            fate: PacketFate::Delivered,
            sender_acked: true,
            last_rssi_dbm: -80.0,
            last_snr_db: 15.0,
            last_lqi: 90,
        };
        let records = vec![mk(0, 0, 10), mk(1, 5, 15)];
        let (l, lw) = littles_law(&records).unwrap();
        assert!((l - 4.0 / 3.0).abs() < 1e-9, "L={l}");
        assert!((lw - 4.0 / 3.0).abs() < 1e-9, "λW={lw}");
    }

    #[test]
    fn littles_law_degenerate_traces() {
        assert!(littles_law(&[]).is_none());
    }

    #[test]
    fn from_records_orders_and_filters() {
        use wsn_sim_engine::time::SimTime;
        let mk = |seq: u64, fate: PacketFate| PacketRecord {
            seq,
            t_arrival: SimTime::from_millis(seq),
            t_service_start: None,
            t_done: None,
            tries: 1,
            queue_depth: 1,
            fate,
            sender_acked: fate == PacketFate::Delivered,
            last_rssi_dbm: -80.0,
            last_snr_db: 15.0,
            last_lqi: 90,
        };
        // Out of order, with a queue drop in the middle.
        let records = vec![
            mk(2, PacketFate::RadioLost),
            mk(0, PacketFate::Delivered),
            mk(1, PacketFate::QueueDropped),
            mk(3, PacketFate::Delivered),
        ];
        let s = DeliverySequence::from_records(&records);
        assert_eq!(s.len(), 3); // queue drop excluded
        assert!((s.prr() - 2.0 / 3.0).abs() < 1e-12);
    }
}
